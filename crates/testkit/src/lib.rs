//! Hermetic test and bench infrastructure for the secflow workspace.
//!
//! * [`prop_check!`] / [`prop_check`] — a minimal property-testing
//!   harness: N seeded random cases, shrink-by-halving on failure, and
//!   a printed replay recipe (`SECFLOW_PROP_SEED`/`SECFLOW_PROP_SCALE`).
//! * [`timing`] — a median-of-K wall-clock harness emitting one JSON
//!   line per measurement, used by the `flow_stages` bench.
//!
//! Unlike `proptest`, generation is imperative: the property closure
//! receives a [`Gen`] and draws whatever structure it needs. Each case
//! runs from its own deterministic sub-seed, so any failure is
//! replayable from the seed printed in the panic message alone.
//!
//! * [`fault`] — seeded generators of corrupt flow artifacts
//!   (truncated Verilog, unknown cells, combinational loops, bad
//!   technology constants, swapped rails) for fault-injection tests.

pub mod fault;
pub mod timing;

use std::panic::{catch_unwind, AssertUnwindSafe};

use secflow_rand::{RngExt, SeedableRng, SplitMix, StdRng};

/// Per-case random value source handed to property closures.
///
/// Wraps the workspace [`StdRng`] and adds a *scale* in `(0, 1]` that
/// the shrinker halves on failure: collection lengths drawn through
/// [`Gen::len_in`] contract toward their minimum while scalar draws
/// stay on the same stream, so a shrunk case is a structurally smaller
/// variant of the same failure.
pub struct Gen {
    rng: StdRng,
    scale: f64,
}

impl Gen {
    /// Builds a generator for one case. `scale` is clamped to `(0, 1]`.
    pub fn new(seed: u64, scale: f64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            scale: scale.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// The current shrink scale (1.0 on the first attempt).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws a uniform value of an inferred type.
    pub fn random<T: secflow_rand::Random>(&mut self) -> T {
        self.rng.random()
    }

    /// Draws uniformly from `start..end`.
    pub fn random_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        T: secflow_rand::SampleUniform + PartialOrd,
    {
        self.rng.random_range(range)
    }

    /// Returns `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// Draws a collection length from `range`, contracted toward
    /// `range.start` by the shrink scale.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn len_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range in len_in");
        let span = range.end - range.start;
        let scaled = ((span as f64 * self.scale).ceil() as usize).clamp(1, span);
        range.start + self.rng.random_range(0..scaled)
    }

    /// Builds a vector whose length is drawn via [`Gen::len_in`] and
    /// whose elements come from `f`.
    pub fn vec_with<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.len_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.rng.random_range(0..items.len())]
    }
}

/// Outcome of one property case; `Skip` means the drawn inputs did not
/// satisfy a precondition (the analogue of `prop_assume!`) and the
/// case is not counted as a failure.
pub enum CaseResult {
    /// Property held.
    Pass,
    /// Precondition unmet; draw another case.
    Skip,
}

/// Runs `cases` random executions of `property`, each from a
/// deterministic sub-seed of `seed`.
///
/// On a panic inside the property the harness re-runs the *same*
/// sub-seed with the generation scale halved (1 → 1/2 → 1/4 → …, eight
/// steps), keeps the smallest still-failing scale, and then panics
/// with a replay recipe:
///
/// ```text
/// property failed (seed 0xD6E9…, scale 0.125).
/// replay: SECFLOW_PROP_SEED=0xD6E9… SECFLOW_PROP_SCALE=0.125 cargo test -q <name>
/// ```
///
/// Setting `SECFLOW_PROP_SEED` (and optionally `SECFLOW_PROP_SCALE`)
/// in the environment re-runs exactly that case and nothing else.
///
/// # Panics
///
/// Panics if any case fails after shrinking, with the failing seed in
/// the message.
pub fn prop_check(cases: usize, seed: u64, mut property: impl FnMut(&mut Gen) -> CaseResult) {
    // Replay mode: one exact case.
    if let Ok(s) = std::env::var("SECFLOW_PROP_SEED") {
        let case_seed = parse_seed(&s);
        let scale = std::env::var("SECFLOW_PROP_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let mut g = Gen::new(case_seed, scale);
        property(&mut g);
        return;
    }

    let mut sub_seeds = SplitMix(seed);
    let mut executed = 0usize;
    let mut attempts = 0usize;
    // Allow a bounded number of Skips so a tight precondition cannot
    // spin forever.
    let max_attempts = cases.saturating_mul(16).max(64);
    while executed < cases {
        assert!(
            attempts < max_attempts,
            "property skipped too often: {executed}/{cases} cases ran in {attempts} attempts"
        );
        attempts += 1;
        let case_seed = sub_seeds.next();
        match run_case(&mut property, case_seed, 1.0) {
            Ok(CaseResult::Pass) => executed += 1,
            Ok(CaseResult::Skip) => {}
            Err(message) => {
                let (scale, message) = shrink(&mut property, case_seed, message);
                panic!(
                    "property failed (seed {case_seed:#018X}, scale {scale}): {message}\n\
                     replay: SECFLOW_PROP_SEED={case_seed:#018X} SECFLOW_PROP_SCALE={scale} \
                     cargo test -q -- <this test>"
                );
            }
        }
    }
}

/// Shrink-by-halving: re-run the failing seed at scales 1/2, 1/4, …
/// and keep the smallest scale that still fails.
fn shrink(
    property: &mut impl FnMut(&mut Gen) -> CaseResult,
    case_seed: u64,
    original: String,
) -> (f64, String) {
    let mut best = (1.0, original);
    let mut scale = 1.0;
    for _ in 0..8 {
        scale /= 2.0;
        match run_case(property, case_seed, scale) {
            // A Skip or Pass at this scale ends the descent: smaller
            // cases no longer reproduce the failure.
            Ok(_) => break,
            Err(message) => best = (scale, message),
        }
    }
    best
}

fn run_case(
    property: &mut impl FnMut(&mut Gen) -> CaseResult,
    seed: u64,
    scale: f64,
) -> Result<CaseResult, String> {
    let mut g = Gen::new(seed, scale);
    catch_unwind(AssertUnwindSafe(|| property(&mut g))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

fn parse_seed(s: &str) -> u64 {
    let t = s.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    parsed.unwrap_or_else(|_| panic!("unparsable SECFLOW_PROP_SEED `{s}`"))
}

/// Runs a property over `cases` seeded random inputs.
///
/// ```
/// secflow_testkit::prop_check!(cases: 64, seed: 0xD05E, |g| {
///     let n = g.random_range(1..10usize);
///     let v = g.vec_with(1..20, |g| g.random::<u16>());
///     assert!(v.len() < 20 && n < 10);
/// });
/// ```
///
/// The closure body may `return secflow_testkit::CaseResult::Skip;` to
/// reject inputs that miss a precondition; falling off the end counts
/// as a pass.
#[macro_export]
macro_rules! prop_check {
    (cases: $cases:expr, seed: $seed:expr, |$g:ident| $body:block) => {
        $crate::prop_check($cases, $seed, |$g: &mut $crate::Gen| {
            #[allow(unreachable_code)]
            {
                $body;
                $crate::CaseResult::Pass
            }
        })
    };
    (|$g:ident| $body:block) => {
        $crate::prop_check!(cases: 32, seed: 0x5EC0_F10E_7E57, |$g| $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        prop_check(16, 1, |g| {
            let _: u64 = g.random();
            count += 1;
            CaseResult::Pass
        });
        assert_eq!(count, 16);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            prop_check!(cases: 8, seed: 2, |g| {
                let v = g.random_range(0..100u32);
                assert!(v > 1000, "impossible");
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("SECFLOW_PROP_SEED="), "{msg}");
        assert!(msg.contains("scale"), "{msg}");
    }

    #[test]
    fn skip_rejects_inputs_without_failing() {
        let mut ran = 0;
        prop_check(8, 3, |g| {
            if g.random_bool(0.5) {
                return CaseResult::Skip;
            }
            ran += 1;
            CaseResult::Pass
        });
        assert_eq!(ran, 8);
    }

    #[test]
    fn shrinking_reduces_collection_lengths() {
        // A property that fails whenever the vector is non-trivial:
        // the shrinker should find a small failing scale.
        let err = catch_unwind(AssertUnwindSafe(|| {
            prop_check!(cases: 4, seed: 4, |g| {
                let v = g.vec_with(1..64, |g| g.random::<u8>());
                assert!(v.len() < 2, "len {}", v.len());
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        // At scale 1/64 the length range collapses to exactly 1 and
        // the property passes, so the reported scale must be small but
        // nonzero.
        assert!(
            msg.contains("scale 0.0"),
            "expected shrunk scale, got: {msg}"
        );
    }

    #[test]
    fn same_seed_same_cases() {
        let mut first = Vec::new();
        prop_check(8, 5, |g| {
            first.push(g.random::<u64>());
            CaseResult::Pass
        });
        let mut second = Vec::new();
        prop_check(8, 5, |g| {
            second.push(g.random::<u64>());
            CaseResult::Pass
        });
        assert_eq!(first, second);
    }

    #[test]
    fn len_in_scale_contracts_to_minimum() {
        let mut g = Gen::new(1, 1.0 / 1024.0);
        for _ in 0..100 {
            assert_eq!(g.len_in(3..40), 3);
        }
    }
}
