//! Median-of-K wall-clock timing with JSON-line output.
//!
//! A deliberately small replacement for criterion: each measurement
//! runs the closure K times, reports the median (robust against
//! scheduler noise), and prints one machine-parsable JSON line so
//! perf PRs can diff runs with a one-line `jq`.

use std::time::Instant;

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `"cell_substitution/2000"`.
    pub name: String,
    /// All K run durations, in nanoseconds, in execution order.
    pub runs_ns: Vec<u128>,
    /// Median of `runs_ns`.
    pub median_ns: u128,
    /// Fastest run.
    pub min_ns: u128,
    /// Slowest run.
    pub max_ns: u128,
}

impl Measurement {
    /// Renders the measurement as one JSON line.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"k\":{}}}",
            self.name,
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.runs_ns.len()
        )
    }
}

/// Times `f` over `k` runs (after one untimed warm-up run) and
/// returns the measurement.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn time_median<F: FnMut()>(name: &str, k: usize, mut f: F) -> Measurement {
    assert!(k > 0, "k must be positive");
    f(); // warm-up: page in code and data, fill caches
    let mut runs_ns: Vec<u128> = (0..k)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    let mut sorted = runs_ns.clone();
    sorted.sort_unstable();
    let median_ns = sorted[sorted.len() / 2];
    let min_ns = sorted[0];
    let max_ns = *sorted.last().expect("k > 0");
    runs_ns.shrink_to_fit();
    Measurement {
        name: name.to_string(),
        runs_ns,
        median_ns,
        min_ns,
        max_ns,
    }
}

/// Times `f` and prints the JSON line to stdout; returns the
/// measurement for further use.
pub fn bench<F: FnMut()>(name: &str, k: usize, f: F) -> Measurement {
    let m = time_median(name, k, f);
    println!("{}", m.json_line());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_runs_is_reported() {
        let mut n = 0u64;
        let m = time_median("spin", 5, || {
            for i in 0..10_000u64 {
                n = n.wrapping_add(i);
            }
        });
        assert_eq!(m.runs_ns.len(), 5);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.median_ns > 0);
    }

    #[test]
    fn json_line_is_well_formed() {
        let m = Measurement {
            name: "x/1".into(),
            runs_ns: vec![3, 1, 2],
            median_ns: 2,
            min_ns: 1,
            max_ns: 3,
        };
        assert_eq!(
            m.json_line(),
            "{\"bench\":\"x/1\",\"median_ns\":2,\"min_ns\":1,\"max_ns\":3,\"k\":3}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        time_median("bad", 0, || {});
    }
}
