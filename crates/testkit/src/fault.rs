//! Fault-injection helpers: deterministic generators of the corrupt
//! artifacts a secure flow must reject with a *typed* error rather
//! than a panic — truncated or byte-mangled Verilog, netlists with
//! unknown cells or combinational loops, degenerate placements,
//! non-physical technology constants, and differential netlists whose
//! rails have been swapped.
//!
//! All generators are seeded: the same `(input, seed)` always yields
//! the same fault, so a failing fault-injection test reproduces
//! byte-for-byte at any thread count.

use secflow_extract::Technology;
use secflow_netlist::{GateKind, Netlist};
use secflow_pnr::PlacedDesign;
use secflow_rand::SplitMix;

/// Truncates Verilog source at a seed-chosen byte offset strictly
/// before its final `endmodule`, snapped to a UTF-8 character
/// boundary — the parser must report a typed truncation error.
///
/// # Panics
///
/// Panics if `src` contains no `endmodule` (the fixture itself is
/// broken, not the code under test).
pub fn truncate_verilog(src: &str, seed: u64) -> String {
    let end = src.rfind("endmodule").expect("fixture has an endmodule");
    assert!(end > 0, "fixture starts with endmodule");
    let mut rng = SplitMix(seed);
    let mut cut = (rng.next() % end as u64) as usize;
    while !src.is_char_boundary(cut) {
        cut -= 1;
    }
    src[..cut].to_string()
}

/// Overwrites `mutations` seed-chosen bytes of Verilog source with
/// arbitrary printable junk. The result may or may not still parse;
/// the contract under test is that parsing *never panics* and any
/// rejection is a typed error.
pub fn garble_verilog(src: &str, seed: u64, mutations: usize) -> String {
    let mut bytes = src.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let mut rng = SplitMix(seed);
    for _ in 0..mutations {
        let pos = (rng.next() % bytes.len() as u64) as usize;
        // Printable ASCII junk keeps the input valid UTF-8 so the
        // fault exercises the parser, not `from_utf8`.
        bytes[pos] = b'!' + (rng.next() % 94) as u8;
    }
    String::from_utf8(bytes).expect("printable ASCII mutations preserve UTF-8")
}

/// A tiny netlist whose single gate names a cell no library maps:
/// stages that look cells up (placement, routing, substitution,
/// simulation) must fail with their unknown-cell variant.
pub fn unknown_cell_netlist() -> Netlist {
    let mut nl = Netlist::new("unknown_cell");
    let a = nl.add_input("a");
    let y = nl.add_net("y");
    nl.add_gate("u1", "NOT_A_CELL", GateKind::Comb, vec![a], vec![y]);
    nl.mark_output(y);
    nl
}

/// A two-inverter ring with no primary input driving it: structurally
/// well-formed per-gate, but combinationally cyclic — evaluation and
/// verification stages must report the cycle, not hang or overflow.
pub fn combinational_loop_netlist() -> Netlist {
    let mut nl = Netlist::new("comb_loop");
    let a = nl.add_net("a");
    let b = nl.add_net("b");
    nl.add_gate("g1", "INV", GateKind::Comb, vec![a], vec![b]);
    nl.add_gate("g2", "INV", GateKind::Comb, vec![b], vec![a]);
    nl.mark_output(a);
    nl
}

/// Shrinks a placement's die to a single site, leaving every placed
/// cell where it was: routing must reject the out-of-bounds pins with
/// a typed error instead of indexing outside its grid.
pub fn shrink_die(placed: &PlacedDesign) -> PlacedDesign {
    let mut d = placed.clone();
    d.width = 1;
    d.height = 1;
    d
}

/// A technology with a NaN capacitance and a negative resistance —
/// extraction must refuse it up front rather than propagate NaN into
/// every parasitic (and from there into traces and DPA statistics).
pub fn bad_technology() -> Technology {
    Technology {
        r_ohm_per_track: -1.0,
        c_ground_ff_per_track: f64::NAN,
        ..Technology::default()
    }
}

/// Rebuilds a netlist with the logic function of rail-driving gate
/// `victim` (an index clamped into the netlist's `AND2`/`OR2` gates)
/// swapped to its dual — on a WDDL differential netlist, whose true
/// and false rails are driven by dual positive primitives, this
/// mismatches one rail pair, so rail verification must fail with a
/// typed error. Both primitives are positive, so the precharge wave
/// still propagates: only complementarity breaks.
///
/// # Panics
///
/// Panics if the netlist has no `AND2` or `OR2` gate (not a WDDL
/// differential netlist — a broken fixture, not a flow fault).
pub fn mismatch_rail_function(nl: &Netlist, victim: usize) -> Netlist {
    let candidates: Vec<usize> = (0..nl.gate_count())
        .filter(|&i| matches!(nl.gates()[i].cell.as_str(), "AND2" | "OR2"))
        .collect();
    assert!(!candidates.is_empty(), "fixture has no AND2/OR2 primitive");
    let victim = candidates[victim % candidates.len()];

    let mut out = Netlist::new(format!("{}_railswap", nl.name));
    for id in nl.net_ids() {
        let name = nl.net(id).name.clone();
        if nl.inputs().contains(&id) {
            out.add_input(name);
        } else {
            out.add_net(name);
        }
    }
    for (i, g) in nl.gates().iter().enumerate() {
        let cell = if i != victim {
            g.cell.clone()
        } else if g.cell == "AND2" {
            "OR2".to_string()
        } else {
            "AND2".to_string()
        };
        out.add_gate(
            g.name.clone(),
            cell,
            g.kind,
            g.inputs.clone(),
            g.outputs.clone(),
        );
    }
    for &o in nl.outputs() {
        out.mark_output(o);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module m(a, y);\n  input a;\n  output y;\n  INV g1(.A(a), .Y(y));\nendmodule\n";

    #[test]
    fn truncation_always_loses_endmodule() {
        for seed in 0..64 {
            let t = truncate_verilog(SRC, seed);
            assert!(t.len() < SRC.rfind("endmodule").unwrap() + 1);
            assert!(!t.contains("endmodule"));
        }
    }

    #[test]
    fn garble_is_deterministic_and_utf8() {
        let a = garble_verilog(SRC, 7, 5);
        let b = garble_verilog(SRC, 7, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), SRC.len());
        assert_ne!(a, SRC);
    }

    #[test]
    fn loop_netlist_is_cyclic() {
        let nl = combinational_loop_netlist();
        assert!(secflow_netlist::topo_order(&nl).is_none());
    }

    #[test]
    fn rail_mismatch_swaps_exactly_one_dual() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.add_net("y_t");
        let f = nl.add_net("y_f");
        nl.add_gate("g_t", "AND2", GateKind::Comb, vec![a, b], vec![t]);
        nl.add_gate("g_f", "OR2", GateKind::Comb, vec![a, b], vec![f]);
        nl.mark_output(t);
        let broken = mismatch_rail_function(&nl, 0);
        assert_eq!(broken.gates()[0].cell, "OR2");
        assert_eq!(broken.gates()[1].cell, "OR2");
        assert_eq!(broken.gate_count(), nl.gate_count());
    }
}
