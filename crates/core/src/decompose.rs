//! Interconnect decomposition: the routed fat design is turned into
//! the differential design by duplicating and translating every fat
//! wire by one routing pitch and reducing the wire width (§2.3 and
//! Fig. 3 of the paper).
//!
//! Geometrically: fat grid coordinates are doubled (one fat unit = two
//! routing tracks), the true rail takes the doubled geometry, and the
//! false rail is the same polyline translated by `(+1, +1)` tracks.
//! A diagonal translation keeps the two rails exactly one track apart
//! on *both* legs of every bend, which is what makes their parasitics
//! match.

use std::collections::HashMap;
use std::fmt;

use secflow_netlist::NetId;
use secflow_pnr::{GridPitch, PlacedCell, PlacedDesign, Point, RoutedDesign, RoutedNet, Segment};

use crate::substitute::Substitution;

/// A failure of the interconnect decomposition stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// The input design was not routed on the fat grid.
    NotFatPitch,
    /// A routed fat net has no rail pair in the substitution.
    MissingRailPair {
        /// Name of the offending fat net.
        net: String,
    },
    /// The placement does not cover every fat gate of the
    /// substitution.
    CellCountMismatch {
        /// Cells in the placement.
        placed: usize,
        /// Gates in the fat netlist.
        fat_gates: usize,
    },
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::NotFatPitch => {
                write!(f, "decomposition applies to fat-routed designs")
            }
            DecomposeError::MissingRailPair { net } => {
                write!(f, "fat net `{net}` has no rail pair")
            }
            DecomposeError::CellCountMismatch { placed, fat_gates } => {
                write!(
                    f,
                    "placement has {placed} cells but the fat netlist has {fat_gates} gates"
                )
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// How the fat wires are decomposed — the paper's §2.2 security /
/// area trade-off knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecomposeStyle {
    /// One fat unit = two tracks; differential pairs abut (the paper's
    /// baseline).
    #[default]
    Dense,
    /// One fat unit = three tracks; one empty track between adjacent
    /// pairs ("increasing the distance between the different
    /// differential pairs reduces the effect \[of cross-talk\]. The
    /// tradeoff is an increase in silicon area").
    Spaced,
    /// One fat unit = three tracks; the extra track carries a grounded
    /// shield wire ("shielding the differential routes on either side
    /// with a power or ground line eliminates the cross-talk").
    Shielded,
}

impl DecomposeStyle {
    /// Tracks per fat grid unit under this style.
    pub fn scale(self) -> i32 {
        match self {
            DecomposeStyle::Dense => 2,
            DecomposeStyle::Spaced | DecomposeStyle::Shielded => 3,
        }
    }
}

/// Decomposes a routed fat design into the differential design with
/// the baseline [`DecomposeStyle::Dense`] geometry.
///
/// The returned [`RoutedDesign`] references the *differential*
/// netlist of `sub`: every fat net's geometry becomes two parallel
/// rail wires, every compound cell placement is inherited by its
/// primitive gates, and the grid pitch returns to
/// [`GridPitch::Normal`].
///
/// # Errors
///
/// Returns [`DecomposeError`] if `fat_routed` was not routed at
/// [`GridPitch::Fat`], or routes a net that has no rail pair in `sub`.
pub fn decompose(
    fat_routed: &RoutedDesign,
    sub: &Substitution,
) -> Result<RoutedDesign, DecomposeError> {
    decompose_styled(fat_routed, sub, DecomposeStyle::Dense)
}

/// Decomposes a routed fat design with an explicit geometry style.
///
/// # Errors
///
/// Fails under the same conditions as [`decompose`].
pub fn decompose_styled(
    fat_routed: &RoutedDesign,
    sub: &Substitution,
    style: DecomposeStyle,
) -> Result<RoutedDesign, DecomposeError> {
    if fat_routed.placed.pitch != GridPitch::Fat {
        return Err(DecomposeError::NotFatPitch);
    }
    let pair_of: HashMap<NetId, (NetId, NetId)> =
        sub.pairs.iter().map(|p| (p.fat, (p.t, p.f))).collect();

    let fp = &fat_routed.placed;
    if fp.cells.len() != sub.fat.gate_count() {
        return Err(DecomposeError::CellCountMismatch {
            placed: fp.cells.len(),
            fat_gates: sub.fat.gate_count(),
        });
    }
    // Every pad net must split into a rail pair below; check up front
    // so a degenerate placement cannot panic the indexing.
    for &(net, _) in fp.input_pads.iter().chain(fp.output_pads.iter()) {
        if !pair_of.contains_key(&net) {
            return Err(DecomposeError::MissingRailPair {
                net: if net.index() < sub.fat.net_count() {
                    sub.fat.net(net).name.clone()
                } else {
                    format!("{net}")
                },
            });
        }
    }
    let k = style.scale();
    let scale = |v: i32| v * k;
    let scale_point = |p: Point| Point::new(p.layer, scale(p.x), scale(p.y));
    let shift_point = |p: Point| Point::new(p.layer, scale(p.x) + 1, scale(p.y) + 1);
    // Shields go on *either side* of the pair (offsets -1 and +2); a
    // shield track shared with the neighbouring pair is deduplicated.
    let shield_points = |p: Point| {
        [
            Point::new(p.layer, scale(p.x) - 1, scale(p.y) - 1),
            Point::new(p.layer, scale(p.x) + 2, scale(p.y) + 2),
        ]
    };

    // Placement: each differential primitive inherits its compound's
    // (doubled) origin; exact in-compound offsets are irrelevant to
    // wire extraction, which uses explicit geometry.
    let cells: Vec<PlacedCell> = sub
        .diff_gate_fat
        .iter()
        .map(|&fg| {
            let c = fp.cells[fg.index()];
            PlacedCell {
                x: scale(c.x),
                row: c.row,
            }
        })
        .collect();

    let map_pads = |pads: &[(NetId, i32)]| -> Vec<(NetId, i32)> {
        pads.iter()
            .flat_map(|&(fat_net, y)| {
                let (t, f) = pair_of[&fat_net];
                [(t, scale(y)), (f, scale(y) + 1)]
            })
            .collect()
    };

    let placed = PlacedDesign {
        name: sub.differential.name.clone(),
        width: scale(fp.width),
        height: scale(fp.height),
        row_height: scale(fp.row_height),
        pitch: GridPitch::Normal,
        cells,
        input_pads: map_pads(&fp.input_pads),
        output_pads: map_pads(&fp.output_pads),
    };

    let mut nets = Vec::with_capacity(fat_routed.nets.len() * 2);
    let mut shield_segments: Vec<Segment> = Vec::new();
    let mut shield_seen: std::collections::HashSet<(u8, i32, i32, i32, i32)> =
        std::collections::HashSet::new();
    for rn in &fat_routed.nets {
        let (t, f) = *pair_of
            .get(&rn.net)
            .ok_or_else(|| DecomposeError::MissingRailPair {
                // The routed net id may not even exist in the fat
                // netlist; fall back to its raw id.
                net: if rn.net.index() < sub.fat.net_count() {
                    sub.fat.net(rn.net).name.clone()
                } else {
                    format!("{}", rn.net)
                },
            })?;
        let seg_t: Vec<Segment> = rn
            .segments
            .iter()
            .map(|s| Segment::new(scale_point(s.a), scale_point(s.b)))
            .collect();
        let seg_f: Vec<Segment> = rn
            .segments
            .iter()
            .map(|s| Segment::new(shift_point(s.a), shift_point(s.b)))
            .collect();
        nets.push(RoutedNet {
            net: t,
            segments: seg_t,
        });
        nets.push(RoutedNet {
            net: f,
            segments: seg_f,
        });
        if style == DecomposeStyle::Shielded {
            // Grounded guard wires along both sides of the pair; vias
            // are skipped (the shield lives per layer) and tracks
            // shared with a neighbouring pair are emitted once.
            for s in rn.segments.iter().filter(|s| !s.is_via()) {
                for i in 0..2 {
                    let a = shield_points(s.a)[i];
                    let b = shield_points(s.b)[i];
                    let key = (a.layer, a.x, a.y, b.x, b.y);
                    if shield_seen.insert(key) {
                        shield_segments.push(Segment::new(a, b));
                    }
                }
            }
        }
    }
    if !shield_segments.is_empty() {
        nets.push(RoutedNet {
            net: sub.shield,
            segments: shield_segments,
        });
    }

    secflow_obs::add(secflow_obs::Counter::DecomposeRails, nets.len() as u64);
    Ok(RoutedDesign { placed, nets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_cells::Library;
    use secflow_netlist::{GateKind, Netlist};
    use secflow_pnr::{LAYER_H, LAYER_V};

    fn fixture() -> (Substitution, RoutedDesign) {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        let sub = crate::substitute::substitute(&nl, &Library::lib180()).unwrap();

        let fat_y = sub.fat.net_by_name("y").unwrap();
        let fat_a = sub.fat.net_by_name("a").unwrap();
        let placed = PlacedDesign {
            name: "d_fat".into(),
            width: 30,
            height: 16,
            row_height: 8,
            pitch: GridPitch::Fat,
            cells: vec![PlacedCell { x: 4, row: 0 }],
            input_pads: vec![(fat_a, 2)],
            output_pads: vec![(fat_y, 3)],
        };
        let routed = RoutedDesign {
            placed,
            nets: vec![RoutedNet {
                net: fat_y,
                segments: vec![
                    Segment::new(Point::new(LAYER_H, 5, 4), Point::new(LAYER_H, 12, 4)),
                    Segment::new(Point::new(LAYER_H, 12, 4), Point::new(LAYER_V, 12, 4)),
                    Segment::new(Point::new(LAYER_V, 12, 4), Point::new(LAYER_V, 12, 9)),
                ],
            }],
        };
        (sub, routed)
    }

    #[test]
    fn rails_are_translated_copies() {
        let (sub, routed) = fixture();
        let d = decompose(&routed, &sub).unwrap();
        assert_eq!(d.placed.pitch, GridPitch::Normal);
        assert_eq!(d.nets.len(), 2);
        let t = &d.nets[0];
        let f = &d.nets[1];
        assert_eq!(t.segments.len(), f.segments.len());
        for (st, sf) in t.segments.iter().zip(&f.segments) {
            assert_eq!(sf.a.x - st.a.x, 1);
            assert_eq!(sf.a.y - st.a.y, 1);
            assert_eq!(sf.b.x - st.b.x, 1);
            assert_eq!(sf.b.y - st.b.y, 1);
            assert_eq!(st.a.layer, sf.a.layer);
        }
        // Same length on both rails — matched resistance.
        assert_eq!(t.wirelength(), f.wirelength());
    }

    #[test]
    fn geometry_is_doubled() {
        let (sub, routed) = fixture();
        let d = decompose(&routed, &sub).unwrap();
        let t = &d.nets[0];
        // Fat wire length 7 + 5 = 12 fat units -> 24 tracks.
        assert_eq!(t.wirelength(), 2 * routed.nets[0].wirelength());
        assert_eq!(d.placed.width, 60);
        assert_eq!(d.placed.height, 32);
    }

    #[test]
    fn pads_split_into_rail_pads() {
        let (sub, routed) = fixture();
        let d = decompose(&routed, &sub).unwrap();
        assert_eq!(d.placed.input_pads.len(), 2);
        let ys: Vec<i32> = d.placed.input_pads.iter().map(|&(_, y)| y).collect();
        assert_eq!(ys, vec![4, 5]);
    }

    #[test]
    fn rejects_normal_pitch_input() {
        let (sub, mut routed) = fixture();
        routed.placed.pitch = GridPitch::Normal;
        assert_eq!(
            decompose(&routed, &sub).unwrap_err(),
            DecomposeError::NotFatPitch
        );
    }

    #[test]
    fn foreign_net_is_typed_error() {
        let (sub, mut routed) = fixture();
        // Route a net id that does not exist in the fat netlist at
        // all — e.g. read from a corrupt DEF.
        routed.nets[0].net = NetId(9999);
        assert!(matches!(
            decompose(&routed, &sub).unwrap_err(),
            DecomposeError::MissingRailPair { .. }
        ));
    }

    #[test]
    fn decomposed_pair_extracts_with_zero_mismatch() {
        // End-to-end: decomposition + extraction => matched caps.
        let (sub, routed) = fixture();
        let d = decompose(&routed, &sub).unwrap();
        let tech = secflow_extract::Technology::default();
        let par = secflow_extract::extract(&d, &sub.differential, &tech);
        let pairs: Vec<(NetId, NetId)> = d.nets.chunks(2).map(|c| (c[0].net, c[1].net)).collect();
        let reports = secflow_extract::pair_mismatch(&par, &pairs);
        for r in reports {
            assert!(r.relative < 1e-9, "mismatch {}", r.relative);
        }
    }
}
