//! Flow orchestration: the regular digital design flow and the secure
//! digital design flow of Fig. 1, end to end.

use std::time::Instant;

use secflow_cells::{Library, TRACK_UM};
use secflow_extract::{pair_mismatch, try_extract, Parasitics, Technology};
use secflow_lec::{check_equiv_random_with_parity, check_equiv_with_parity};
use secflow_netlist::{Netlist, NetlistStats};
use secflow_pnr::{
    build_clock_tree, place_best_of, route, ClockOptions, ClockReport, GridPitch, PlaceOptions,
    RoutedDesign,
};
use secflow_sim::SimBackend;
use secflow_synth::{map_design, Design, MapOptions};

use crate::checks::{verify_precharge_wave, verify_rail_complementarity};
use crate::decompose::{decompose_styled, DecomposeStyle};
use crate::error::FlowError;
use crate::substitute::{substitute, Substitution};

/// Configuration shared by both flows.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Technology-mapping options (the synthesis `script`).
    pub map: MapOptions,
    /// Row fill factor (paper: 0.8).
    pub fill_factor: f64,
    /// Die aspect ratio (paper: 1.0).
    pub aspect_ratio: f64,
    /// Placement-annealing effort (moves per gate).
    pub anneal_moves_per_gate: usize,
    /// Independent placement-annealing restarts; the lowest-HPWL
    /// result wins. Restarts run in parallel and `1` is a single
    /// plain placement.
    pub place_restarts: usize,
    /// Seed for the stochastic placement refinement.
    pub seed: u64,
    /// Router options.
    pub route: secflow_pnr::RouteOptions,
    /// Extraction technology.
    pub tech: Technology,
    /// Differential-pair geometry produced by the decomposition (the
    /// paper's §2.2 security / area knob).
    pub decompose_style: DecomposeStyle,
    /// Run the verification steps (equivalence check, precharge wave,
    /// rail complementarity).
    pub verify: bool,
    /// Gate count above which the equivalence check falls back from
    /// BDDs to random simulation.
    pub bdd_gate_limit: usize,
    /// Simulation kernel for downstream trace campaigns run against
    /// this flow's netlists (`--sim-backend` on the CLI and the
    /// experiment binaries). Both backends are byte-identical; see
    /// `secflow_sim::SimBackend`.
    pub sim_backend: SimBackend,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            map: MapOptions::default(),
            fill_factor: 0.8,
            aspect_ratio: 1.0,
            anneal_moves_per_gate: 100,
            place_restarts: 1,
            seed: 1,
            route: secflow_pnr::RouteOptions::default(),
            tech: Technology::default(),
            decompose_style: DecomposeStyle::Dense,
            verify: true,
            bdd_gate_limit: 1500,
            sim_backend: SimBackend::default(),
        }
    }
}

/// Metrics and timing breakdown of one flow run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Statistics of the (single-ended or differential) final netlist.
    pub stats: NetlistStats,
    /// Die area in µm².
    pub die_area_um2: f64,
    /// Total standard cell area in µm².
    pub cell_area_um2: f64,
    /// Total routed wirelength in physical tracks.
    pub wirelength_tracks: i64,
    /// Total via count.
    pub vias: usize,
    /// Wall-clock milliseconds per stage.
    pub synth_ms: f64,
    /// Cell substitution time (secure flow only).
    pub substitute_ms: f64,
    /// Placement time.
    pub place_ms: f64,
    /// Routing time.
    pub route_ms: f64,
    /// Interconnect decomposition time (secure flow only).
    pub decompose_ms: f64,
    /// Extraction time.
    pub extract_ms: f64,
    /// Verification time.
    pub verify_ms: f64,
    /// Worst combinational arrival time with layout parasitics, in ps
    /// (the WDDL evaluation wave must fit in the evaluation phase).
    pub critical_path_ps: f64,
    /// Clock distribution statistics (None for purely combinational
    /// designs).
    pub clock: Option<ClockReport>,
    /// Result of the equivalence check, if run.
    pub lec_equivalent: Option<bool>,
    /// Mean relative capacitance mismatch over all differential pairs
    /// (secure flow only).
    pub mean_pair_mismatch: Option<f64>,
    /// Worst relative capacitance mismatch (secure flow only).
    pub max_pair_mismatch: Option<f64>,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn cell_area(nl: &Netlist, lib: &Library) -> f64 {
    nl.gates()
        .iter()
        .map(|g| lib.by_name(&g.cell).map(|c| c.area_um2()).unwrap_or(0.0))
        .sum()
}

/// The output of the regular (reference) flow.
#[derive(Debug)]
pub struct RegularFlowResult {
    /// The mapped single-ended netlist.
    pub netlist: Netlist,
    /// The placed-and-routed design.
    pub routed: RoutedDesign,
    /// Extracted parasitics.
    pub parasitics: Parasitics,
    /// Metrics.
    pub report: FlowReport,
}

/// The output of the secure flow.
#[derive(Debug)]
pub struct SecureFlowResult {
    /// The mapped single-ended netlist (input to substitution).
    pub mapped: Netlist,
    /// Cell substitution artifacts (fat + differential netlists,
    /// libraries, rail pairs).
    pub substitution: Substitution,
    /// The routed fat design (`fat.def`).
    pub fat_routed: RoutedDesign,
    /// The decomposed differential design (`diff.def`).
    pub decomposed: RoutedDesign,
    /// Extracted parasitics of the differential design.
    pub parasitics: Parasitics,
    /// Metrics.
    pub report: FlowReport,
}

/// Runs the regular synchronous standard cell flow: synthesis, place &
/// route, extraction.
///
/// # Errors
///
/// Returns [`FlowError`] if any stage fails.
pub fn run_regular_flow(
    design: &Design,
    lib: &Library,
    opts: &FlowOptions,
) -> Result<RegularFlowResult, FlowError> {
    let _flow = secflow_obs::span("flow.regular");
    let t = Instant::now();
    let netlist = {
        let _s = secflow_obs::span("synth");
        map_design(design, lib, &opts.map)?
    };
    let synth_ms = ms(t);
    run_regular_backend(netlist, lib, opts, synth_ms)
}

/// The backend half of the regular flow: place & route, extraction and
/// reporting, starting from an already-mapped netlist (the paper's
/// `rtl.v` entry point).
///
/// # Errors
///
/// Returns [`FlowError`] if routing fails.
pub fn run_regular_backend(
    netlist: Netlist,
    lib: &Library,
    opts: &FlowOptions,
    synth_ms: f64,
) -> Result<RegularFlowResult, FlowError> {
    // The backend's entry contract is the CLI's `rtl.v` netlist; the
    // structural sanity check is the flow's Parse stage.
    {
        let _s = secflow_obs::span("parse");
        netlist.validate().map_err(FlowError::Parse)?;
    }
    let t = Instant::now();
    let placed = {
        let _s = secflow_obs::span("place");
        place_best_of(
            &netlist,
            lib,
            &PlaceOptions {
                fill_factor: opts.fill_factor,
                aspect_ratio: opts.aspect_ratio,
                anneal_moves_per_gate: opts.anneal_moves_per_gate,
                seed: opts.seed,
                pitch: GridPitch::Normal,
            },
            opts.place_restarts,
        )?
    };
    let place_ms = ms(t);

    let t = Instant::now();
    let routed = {
        let _s = secflow_obs::span("route");
        route(&netlist, lib, &placed, &opts.route)?
    };
    let route_ms = ms(t);

    let t = Instant::now();
    let parasitics = {
        let _s = secflow_obs::span("extract");
        try_extract(&routed, &netlist, &opts.tech)?
    };
    let extract_ms = ms(t);

    let _sim_span = secflow_obs::span("sim");
    let timing = secflow_sim::sta::analyze(&netlist, lib, Some(&parasitics))?;
    let clock = build_clock_tree(&netlist, lib, &placed, &ClockOptions::default())
        .map(|t| t.report(&ClockOptions::default()));
    drop(_sim_span);
    let report = FlowReport {
        stats: NetlistStats::of(&netlist),
        die_area_um2: f64::from(placed.width) * TRACK_UM * f64::from(placed.height) * TRACK_UM,
        cell_area_um2: cell_area(&netlist, lib),
        wirelength_tracks: routed.total_wirelength(),
        vias: routed.total_vias(),
        synth_ms,
        substitute_ms: 0.0,
        place_ms,
        route_ms,
        decompose_ms: 0.0,
        extract_ms,
        verify_ms: 0.0,
        critical_path_ps: timing.critical_path_ps,
        clock,
        lec_equivalent: None,
        mean_pair_mismatch: None,
        max_pair_mismatch: None,
    };

    Ok(RegularFlowResult {
        netlist,
        routed,
        parasitics,
        report,
    })
}

/// Runs the secure digital design flow of Fig. 1: synthesis, cell
/// substitution, fat place & route, interconnect decomposition,
/// extraction and verification.
///
/// # Errors
///
/// Returns [`FlowError`] if any stage fails or (with
/// [`FlowOptions::verify`]) a verification step refutes correctness.
pub fn run_secure_flow(
    design: &Design,
    lib: &Library,
    opts: &FlowOptions,
) -> Result<SecureFlowResult, FlowError> {
    let _flow = secflow_obs::span("flow.secure");
    let t = Instant::now();
    let mapped = {
        let _s = secflow_obs::span("synth");
        map_design(design, lib, &opts.map)?
    };
    let synth_ms = ms(t);
    run_secure_backend(mapped, lib, opts, synth_ms)
}

/// The backend half of the secure flow (Fig. 1 below the synthesis
/// box): cell substitution, fat place & route, interconnect
/// decomposition, extraction and verification, starting from an
/// already-mapped netlist (`rtl.v`).
///
/// # Errors
///
/// Returns [`FlowError`] if any stage fails or verification refutes
/// correctness.
pub fn run_secure_backend(
    mapped: Netlist,
    lib: &Library,
    opts: &FlowOptions,
    synth_ms: f64,
) -> Result<SecureFlowResult, FlowError> {
    // The backend's entry contract is the CLI's `rtl.v` netlist; the
    // structural sanity check is the flow's Parse stage.
    {
        let _s = secflow_obs::span("parse");
        mapped.validate().map_err(FlowError::Parse)?;
    }
    let t = Instant::now();
    let substitution = {
        let _s = secflow_obs::span("substitute");
        substitute(&mapped, lib)?
    };
    let substitute_ms = ms(t);

    let t = Instant::now();
    let fat_placed = {
        let _s = secflow_obs::span("place");
        place_best_of(
            &substitution.fat,
            &substitution.fat_lib,
            &PlaceOptions {
                fill_factor: opts.fill_factor,
                aspect_ratio: opts.aspect_ratio,
                anneal_moves_per_gate: opts.anneal_moves_per_gate,
                seed: opts.seed,
                pitch: GridPitch::Fat,
            },
            opts.place_restarts,
        )?
    };
    let place_ms = ms(t);

    let t = Instant::now();
    let fat_routed = {
        let _s = secflow_obs::span("route");
        route(
            &substitution.fat,
            &substitution.fat_lib,
            &fat_placed,
            &opts.route,
        )?
    };
    let route_ms = ms(t);

    let t = Instant::now();
    let decomposed = {
        let _s = secflow_obs::span("decompose");
        decompose_styled(&fat_routed, &substitution, opts.decompose_style)?
    };
    let decompose_ms = ms(t);

    let t = Instant::now();
    let parasitics = {
        let _s = secflow_obs::span("extract");
        try_extract(&decomposed, &substitution.differential, &opts.tech)?
    };
    let extract_ms = ms(t);

    let t = Instant::now();
    let mut lec_equivalent = None;
    if opts.verify {
        // Fat netlist vs original netlist (Formality step).
        let report = {
            let _s = secflow_obs::span("lec");
            if mapped.gate_count() <= opts.bdd_gate_limit {
                check_equiv_with_parity(
                    &mapped,
                    lib,
                    &substitution.fat,
                    &substitution.fat_lib,
                    Some(&substitution.fat_output_parity),
                    Some(&substitution.fat_register_parity),
                )?
            } else {
                check_equiv_random_with_parity(
                    &mapped,
                    lib,
                    &substitution.fat,
                    &substitution.fat_lib,
                    Some(&substitution.fat_output_parity),
                    Some(&substitution.fat_register_parity),
                    8,
                    opts.seed,
                )?
            }
        };
        lec_equivalent = Some(report.equivalent);
        // WDDL invariants on the differential netlist.
        {
            let _s = secflow_obs::span("railcheck");
            verify_precharge_wave(&substitution)?;
            verify_rail_complementarity(&mapped, lib, &substitution, 32, opts.seed)?;
        }
    }
    let verify_ms = ms(t);

    // Pair mismatch report (the security figure of merit of §2.2).
    let pair_list: Vec<_> = substitution.pairs.iter().map(|p| (p.t, p.f)).collect();
    let mismatches = pair_mismatch(&parasitics, &pair_list);
    let routed_pairs: Vec<&secflow_extract::PairMismatch> = mismatches
        .iter()
        .filter(|m| m.cap_t_ff + m.cap_f_ff > 0.0)
        .collect();
    let (mean_mm, max_mm) = if routed_pairs.is_empty() {
        (0.0, 0.0)
    } else {
        (
            routed_pairs.iter().map(|m| m.relative).sum::<f64>() / routed_pairs.len() as f64,
            routed_pairs.iter().map(|m| m.relative).fold(0.0, f64::max),
        )
    };

    // Physical dimensions follow the decomposition style's pitch.
    let scale = opts.decompose_style.scale();
    let w_tracks = f64::from(fat_placed.width * scale);
    let h_tracks = f64::from(fat_placed.height * scale);

    let _sim_span = secflow_obs::span("sim");
    let timing = secflow_sim::sta::analyze(
        &substitution.differential,
        &substitution.diff_lib,
        Some(&parasitics),
    )?;
    // Clock tree over the fat registers (the WDDL register pair is one
    // fat cell with a doubled clock-pin load).
    let clock_opts = ClockOptions {
        sink_cap_ff: 2.0 * ClockOptions::default().sink_cap_ff,
        ..Default::default()
    };
    let clock = build_clock_tree(
        &substitution.fat,
        &substitution.fat_lib,
        &fat_placed,
        &clock_opts,
    )
    .map(|t| t.report(&clock_opts));
    drop(_sim_span);
    let report = FlowReport {
        stats: NetlistStats::of(&substitution.differential),
        die_area_um2: w_tracks * TRACK_UM * h_tracks * TRACK_UM,
        cell_area_um2: cell_area(&substitution.differential, &substitution.diff_lib),
        wirelength_tracks: decomposed.total_wirelength(),
        vias: decomposed.total_vias(),
        synth_ms,
        substitute_ms,
        place_ms,
        route_ms,
        decompose_ms,
        extract_ms,
        verify_ms,
        critical_path_ps: timing.critical_path_ps,
        clock,
        lec_equivalent,
        mean_pair_mismatch: Some(mean_mm),
        max_pair_mismatch: Some(max_mm),
    };

    Ok(SecureFlowResult {
        mapped,
        substitution,
        fat_routed,
        decomposed,
        parasitics,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_design() -> Design {
        let mut d = Design::new("toy");
        let a = d.input("a");
        let b = d.input("b");
        let c = d.input("c");
        let q = d.register("q");
        let x = d.aig.xor(a, b);
        let y = d.aig.mux(c, x, q);
        d.set_next(q, y);
        d.output("y", y);
        d.output("nx", x.not());
        d
    }

    #[test]
    fn regular_flow_completes() {
        let lib = Library::lib180();
        let r = run_regular_flow(&toy_design(), &lib, &FlowOptions::default()).unwrap();
        assert!(r.report.die_area_um2 > 0.0);
        assert!(r.report.wirelength_tracks > 0);
        assert!(r.netlist.validate().is_ok());
    }

    #[test]
    fn secure_flow_completes_and_verifies() {
        let lib = Library::lib180();
        let r = run_secure_flow(&toy_design(), &lib, &FlowOptions::default()).unwrap();
        assert_eq!(r.report.lec_equivalent, Some(true));
        assert!(r.report.die_area_um2 > 0.0);
        assert!(r.substitution.differential.validate().is_ok());
        assert!(r.substitution.fat.validate().is_ok());
    }

    #[test]
    fn secure_design_is_larger_than_reference() {
        let lib = Library::lib180();
        let opts = FlowOptions::default();
        let reg = run_regular_flow(&toy_design(), &lib, &opts).unwrap();
        let sec = run_secure_flow(&toy_design(), &lib, &opts).unwrap();
        let ratio = sec.report.die_area_um2 / reg.report.die_area_um2;
        assert!(
            ratio > 1.5 && ratio < 12.0,
            "area ratio {ratio} out of plausible band"
        );
    }

    #[test]
    fn decomposed_pairs_have_low_mismatch() {
        let lib = Library::lib180();
        let sec = run_secure_flow(&toy_design(), &lib, &FlowOptions::default()).unwrap();
        let mean = sec.report.mean_pair_mismatch.unwrap();
        assert!(mean < 0.25, "mean pair mismatch {mean}");
    }
}
