//! WDDL-specific verification: the precharge wave and dual-rail
//! complementarity of the differential netlist.

use std::fmt;

use secflow_cells::{CellFunction, Library};
use secflow_netlist::{GateKind, NetId, Netlist};
use secflow_rand::SplitMix;

use crate::substitute::Substitution;
use crate::wddl::WDDL_REGISTER;

/// Violations of the WDDL invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RailCheckError {
    /// During precharge (all sources 0) some net stayed high.
    PrechargeLeak {
        /// Name of the offending net.
        net: String,
    },
    /// In the evaluation phase the two rails of a pair were not
    /// complementary.
    NotComplementary {
        /// True-rail net name.
        t: String,
        /// False-rail net name.
        f: String,
    },
    /// A differential output pair disagrees with the original
    /// netlist's output.
    OutputMismatch {
        /// Index of the original primary output.
        index: usize,
    },
    /// A netlist under check has a combinational cycle.
    Cyclic {
        /// Name of the cyclic netlist.
        netlist: String,
    },
    /// A gate references a cell missing from the library under check.
    UnknownCell {
        /// Gate instance name.
        gate: String,
        /// Unresolved cell name.
        cell: String,
    },
    /// The original and differential netlists disagree on register
    /// count, so no rail correspondence exists.
    RegisterCountMismatch {
        /// Registers in the original netlist.
        original: usize,
        /// WDDL registers in the differential netlist.
        differential: usize,
    },
}

impl fmt::Display for RailCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RailCheckError::PrechargeLeak { net } => {
                write!(f, "net `{net}` stays high during precharge")
            }
            RailCheckError::NotComplementary { t, f: fr } => {
                write!(f, "rails `{t}`/`{fr}` are not complementary")
            }
            RailCheckError::OutputMismatch { index } => {
                write!(f, "differential output {index} disagrees with the original")
            }
            RailCheckError::Cyclic { netlist } => {
                write!(f, "netlist `{netlist}` has a combinational cycle")
            }
            RailCheckError::UnknownCell { gate, cell } => {
                write!(f, "gate `{gate}` references unknown cell `{cell}`")
            }
            RailCheckError::RegisterCountMismatch {
                original,
                differential,
            } => {
                write!(
                    f,
                    "register count mismatch: {original} original vs {differential} WDDL"
                )
            }
        }
    }
}

impl std::error::Error for RailCheckError {}

/// Zero-delay evaluation of a netlist's combinational portion with
/// forced source values; tie outputs are forced to `tie_value`
/// when given (the precharge check models constants as precharged).
fn eval(
    nl: &Netlist,
    lib: &Library,
    forced: &[(NetId, bool)],
    tie_override: Option<bool>,
) -> Result<Vec<bool>, RailCheckError> {
    let mut values = vec![false; nl.net_count()];
    for &(n, v) in forced {
        values[n.index()] = v;
    }
    let order = secflow_netlist::topo_order(nl).ok_or_else(|| RailCheckError::Cyclic {
        netlist: nl.name.clone(),
    })?;
    for gid in order {
        let g = nl.gate(gid);
        if g.kind == GateKind::Seq {
            continue;
        }
        let cell = lib.by_name(&g.cell).ok_or_else(|| RailCheckError::UnknownCell {
            gate: g.name.clone(),
            cell: g.cell.clone(),
        })?;
        match cell.function() {
            CellFunction::Comb(tt) => {
                let mut idx = 0u32;
                for (i, &inp) in g.inputs.iter().enumerate() {
                    if values[inp.index()] {
                        idx |= 1 << i;
                    }
                }
                values[g.outputs[0].index()] = tt.eval(idx);
            }
            CellFunction::Tie(v) => {
                values[g.outputs[0].index()] = tie_override.unwrap_or(*v);
            }
            CellFunction::Dff | CellFunction::WddlDff => {}
        }
    }
    Ok(values)
}

/// Verifies the pre-discharge wave: with every primary-input rail and
/// register output at 0 (and constants treated as precharged), every
/// net of the differential netlist must evaluate to 0 — the WDDL
/// networks are positive-monotone, so the 0-wave traverses the whole
/// combinational logic.
///
/// # Errors
///
/// Returns [`RailCheckError::PrechargeLeak`] naming the first net that
/// stays high.
pub fn verify_precharge_wave(sub: &Substitution) -> Result<(), RailCheckError> {
    let nl = &sub.differential;
    let values = eval(nl, &sub.diff_lib, &[], Some(false))?;
    for id in nl.net_ids() {
        if values[id.index()] {
            return Err(RailCheckError::PrechargeLeak {
                net: nl.net(id).name.clone(),
            });
        }
    }
    Ok(())
}

/// Verifies dual-rail complementarity and output correctness of the
/// differential netlist against the original single-ended netlist on
/// `rounds` random source assignments (sources: primary inputs and
/// register values).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_rail_complementarity(
    original: &Netlist,
    base_lib: &Library,
    sub: &Substitution,
    rounds: usize,
    seed: u64,
) -> Result<(), RailCheckError> {
    let diff = &sub.differential;
    let mut rng = SplitMix(seed);

    // Register correspondences: original DFFs in order vs WDDL
    // registers in order.
    let orig_regs: Vec<(NetId, NetId)> = original
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Seq)
        .map(|g| (g.inputs[0], g.outputs[0]))
        .collect();
    let diff_regs: Vec<(NetId, NetId, NetId, NetId)> = diff
        .gates()
        .iter()
        .filter(|g| g.cell == WDDL_REGISTER)
        .map(|g| (g.inputs[0], g.inputs[1], g.outputs[0], g.outputs[1]))
        .collect();
    if orig_regs.len() != diff_regs.len() {
        return Err(RailCheckError::RegisterCountMismatch {
            original: orig_regs.len(),
            differential: diff_regs.len(),
        });
    }

    for _ in 0..rounds {
        // Random source assignment.
        let pi_vals: Vec<bool> = original
            .inputs()
            .iter()
            .map(|_| rng.next() & 1 == 1)
            .collect();
        let reg_vals: Vec<bool> = orig_regs.iter().map(|_| rng.next() & 1 == 1).collect();

        let mut orig_forced: Vec<(NetId, bool)> = original
            .inputs()
            .iter()
            .copied()
            .zip(pi_vals.iter().copied())
            .collect();
        for ((_, q), &v) in orig_regs.iter().zip(&reg_vals) {
            orig_forced.push((*q, v));
        }
        let orig_values = eval(original, base_lib, &orig_forced, None)?;

        let mut diff_forced: Vec<(NetId, bool)> = Vec::new();
        for (&(t, f), &v) in sub.input_pairs.iter().zip(&pi_vals) {
            diff_forced.push((t, v));
            diff_forced.push((f, !v));
        }
        for ((_, _, qt, qf), &v) in diff_regs.iter().zip(&reg_vals) {
            diff_forced.push((*qt, v));
            diff_forced.push((*qf, !v));
        }
        let diff_values = eval(diff, &sub.diff_lib, &diff_forced, None)?;

        // Every rail pair complementary.
        for p in &sub.pairs {
            if diff_values[p.t.index()] == diff_values[p.f.index()] {
                return Err(RailCheckError::NotComplementary {
                    t: diff.net(p.t).name.clone(),
                    f: diff.net(p.f).name.clone(),
                });
            }
        }
        // Output pairs reproduce the original outputs.
        for (i, (&po, &(t, _))) in original.outputs().iter().zip(&sub.output_pairs).enumerate() {
            if orig_values[po.index()] != diff_values[t.index()] {
                return Err(RailCheckError::OutputMismatch { index: i });
            }
        }
        // Register D pairs store the original D value.
        for (i, ((d, _), (dt, _, _, _))) in orig_regs.iter().zip(&diff_regs).enumerate() {
            if orig_values[d.index()] != diff_values[dt.index()] {
                return Err(RailCheckError::OutputMismatch {
                    index: original.outputs().len() + i,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substitute::substitute;
    use secflow_cells::Library;

    fn sample() -> (Netlist, Library) {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let na = nl.add_net("na");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate("i0", "INV", GateKind::Comb, vec![a], vec![na]);
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![na, b], vec![x]);
        nl.add_gate("g1", "AOI21", GateKind::Comb, vec![x, c, q], vec![y]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![x], vec![q]);
        nl.mark_output(y);
        (nl, Library::lib180())
    }

    #[test]
    fn precharge_wave_reaches_everything() {
        let (nl, lib) = sample();
        let sub = substitute(&nl, &lib).unwrap();
        verify_precharge_wave(&sub).unwrap();
    }

    #[test]
    fn rails_complementary_and_outputs_match() {
        let (nl, lib) = sample();
        let sub = substitute(&nl, &lib).unwrap();
        verify_rail_complementarity(&nl, &lib, &sub, 64, 7).unwrap();
    }

    #[test]
    fn sabotage_is_detected() {
        let (nl, lib) = sample();
        let mut sub = substitute(&nl, &lib).unwrap();
        // Swap a pair's rails in the pair table: complementarity still
        // holds, but output checks catch a swapped OUTPUT pair.
        let o = sub.output_pairs[0];
        sub.output_pairs[0] = (o.1, o.0);
        assert!(matches!(
            verify_rail_complementarity(&nl, &lib, &sub, 32, 3),
            Err(RailCheckError::OutputMismatch { .. })
        ));
    }
}
