//! Wave Dynamic Differential Logic compound-gate generation.
//!
//! A WDDL compound gate for a single-ended function `f` consists of
//! two positive (AND/OR-only) networks:
//!
//! * the **true** network computes `f` with every negated literal
//!   replaced by the corresponding *false* rail;
//! * the **false** network computes `¬f` the same way.
//!
//! Both networks are monotone in the rail inputs, so the all-zero
//! precharge state propagates as a 0-wave, and in the evaluation
//! phase exactly one of the two outputs rises — one switching event
//! per compound per cycle, the basis of the constant power signature.
//!
//! Covers are derived with the Minato–Morreale ISOP procedure from the
//! cell's truth table, then realized as trees of the base library's
//! `AND2..AND4` / `OR2..OR4` gates — exactly the "secure compound
//! standard cells" built from an existing library that the paper
//! describes (Fig. 2 shows the AOI32 instance).

use std::collections::HashMap;

use secflow_cells::{isop, CellFunction, LefMacro, LibCell, Library, Sop, TruthTable};

/// Cell name of the dual-rail register in the differential netlist.
pub const WDDL_REGISTER: &str = "WDDLDFF";

/// Cell name of the register abstraction in the fat netlist.
pub const WDDL_DFF_FAT: &str = "W_DFF";

/// Cell name of the *inverting* register abstraction in the fat
/// netlist, used when an absorbed inverter leaves the stored value
/// complemented (physically: the differential register's input rails
/// are swapped — no extra hardware).
pub const WDDL_DFFN_FAT: &str = "W_DFFN";

/// One input source of a primitive gate inside a compound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrimSrc {
    /// A rail of compound input `input`: the true rail when
    /// `complement` is false, the false rail otherwise.
    Rail {
        /// Compound input index.
        input: u8,
        /// Use the false rail.
        complement: bool,
    },
    /// The output of primitive gate `0..idx` within the same network.
    Node(usize),
}

/// A primitive gate inside a compound network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PrimGate {
    /// Base library cell name (`AND2..4`, `OR2..4`, `BUF`, `TIELO`,
    /// `TIEHI`).
    pub cell: String,
    /// Input sources in pin order.
    pub inputs: Vec<PrimSrc>,
}

/// One rail network of a compound: a list of primitive gates, the last
/// of which drives the rail output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CoverNet {
    pub gates: Vec<PrimGate>,
}

impl CoverNet {
    /// Index of the output-driving gate.
    pub fn out(&self) -> usize {
        self.gates.len() - 1
    }
}

/// Builds a balanced tree of `kind`2/3/4 gates over the sources.
fn build_tree(kind: &str, mut srcs: Vec<PrimSrc>, gates: &mut Vec<PrimGate>) -> PrimSrc {
    while srcs.len() > 1 {
        let take = srcs.len().min(4);
        let ins: Vec<PrimSrc> = srcs.drain(..take).collect();
        gates.push(PrimGate {
            cell: format!("{kind}{}", ins.len()),
            inputs: ins,
        });
        srcs.push(PrimSrc::Node(gates.len() - 1));
    }
    srcs.pop().expect("tree over at least one source")
}

/// Realizes a positive cover as a network of AND/OR primitives whose
/// last gate drives the output.
fn build_cover(cover: &Sop) -> CoverNet {
    let mut gates: Vec<PrimGate> = Vec::new();
    if cover.cubes().is_empty() {
        gates.push(PrimGate {
            cell: "TIELO".into(),
            inputs: vec![],
        });
        return CoverNet { gates };
    }
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        gates.push(PrimGate {
            cell: "TIEHI".into(),
            inputs: vec![],
        });
        return CoverNet { gates };
    }
    let mut cube_srcs = Vec::new();
    for cube in cover.cubes() {
        let mut lits = Vec::new();
        for v in 0..8u8 {
            if cube.pos_mask() >> v & 1 == 1 {
                lits.push(PrimSrc::Rail {
                    input: v,
                    complement: false,
                });
            }
            if cube.neg_mask() >> v & 1 == 1 {
                lits.push(PrimSrc::Rail {
                    input: v,
                    complement: true,
                });
            }
        }
        cube_srcs.push(build_tree("AND", lits, &mut gates));
    }
    let out = build_tree("OR", cube_srcs, &mut gates);
    // Guarantee the output is driven by a gate of this network (a
    // single one-literal cube would otherwise be a bare rail).
    match out {
        PrimSrc::Node(i) if i == gates.len() - 1 => {}
        src => gates.push(PrimGate {
            cell: "BUF".into(),
            inputs: vec![src],
        }),
    }
    CoverNet { gates }
}

/// A WDDL compound standard cell derived for one single-ended
/// function.
#[derive(Debug, Clone)]
pub struct WddlCompound {
    /// Fat-netlist cell name (`W<vars>_<tt bits in hex>`).
    pub fat_name: String,
    /// The single-ended function the compound realizes.
    pub tt: TruthTable,
    /// Positive network of the true rail.
    pub(crate) true_net: CoverNet,
    /// Positive network of the false rail.
    pub(crate) false_net: CoverNet,
    /// Total width of all primitive gates, in routing tracks.
    pub diff_width_tracks: u32,
    /// Total cell area of the compound in µm².
    pub diff_area_um2: f64,
    /// Number of primitive gates in the compound.
    pub primitive_count: usize,
}

/// The WDDL library: compounds derived on demand from a base standard
/// cell library, plus the fat and differential library views used by
/// place & route and simulation.
#[derive(Debug, Clone)]
pub struct WddlLibrary {
    base: Library,
    index: HashMap<(u8, u64), usize>,
    compounds: Vec<WddlCompound>,
}

impl WddlLibrary {
    /// Creates an empty WDDL library over `base`.
    ///
    /// # Panics
    ///
    /// Panics if the base library lacks the primitive cells compounds
    /// are built from (`AND2..4`, `OR2..4`, `BUF`, `TIELO`, `TIEHI`,
    /// `DFF`).
    pub fn new(base: &Library) -> Self {
        for cell in [
            "AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "BUF", "TIELO", "TIEHI", "DFF",
        ] {
            assert!(
                base.by_name(cell).is_some(),
                "base library lacks `{cell}` needed for WDDL compounds"
            );
        }
        WddlLibrary {
            base: base.clone(),
            index: HashMap::new(),
            compounds: Vec::new(),
        }
    }

    /// Number of compound cells derived so far.
    pub fn len(&self) -> usize {
        self.compounds.len()
    }

    /// True if no compound has been derived yet.
    pub fn is_empty(&self) -> bool {
        self.compounds.is_empty()
    }

    /// The compound at `idx`.
    pub fn compound(&self, idx: usize) -> &WddlCompound {
        &self.compounds[idx]
    }

    /// All derived compounds.
    pub fn compounds(&self) -> &[WddlCompound] {
        &self.compounds
    }

    /// Returns the compound realizing `tt`, deriving it if necessary.
    pub fn compound_for(&mut self, tt: &TruthTable) -> usize {
        let key = (tt.vars(), tt.bits());
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let true_net = build_cover(&isop(tt));
        let false_net = build_cover(&isop(&tt.not()));
        let mut width = 0u32;
        let mut area = 0.0f64;
        let mut count = 0usize;
        for net in [&true_net, &false_net] {
            for g in &net.gates {
                let cell = self
                    .base
                    .by_name(&g.cell)
                    .unwrap_or_else(|| panic!("missing primitive `{}`", g.cell));
                width += cell.physical().width_tracks;
                area += cell.area_um2();
                count += 1;
            }
        }
        let compound = WddlCompound {
            fat_name: format!("W{}_{:X}", tt.vars(), tt.bits()),
            tt: *tt,
            true_net,
            false_net,
            diff_width_tracks: width,
            diff_area_um2: area,
            primitive_count: count,
        };
        self.compounds.push(compound);
        self.index.insert(key, self.compounds.len() - 1);
        self.compounds.len() - 1
    }

    /// Derives a compound for every combinational cell of the base
    /// library — the paper's pre-assembled WDDL cell library (it
    /// reports 128 cells for its vendor library). Returns the number
    /// of compounds in the library afterwards.
    pub fn derive_base_cells(&mut self) -> usize {
        let tts: Vec<TruthTable> = self.base.comb_cells().map(|(_, tt)| *tt).collect();
        for tt in tts {
            self.compound_for(&tt);
        }
        self.len()
    }

    /// The fat-netlist library view: one single-output cell per
    /// derived compound (function preserved for equivalence checking,
    /// footprint in *fat grid units*, i.e. double-pitch tracks), plus
    /// the fat register [`WDDL_DFF_FAT`].
    pub fn fat_library(&self) -> Library {
        let mut cells = Vec::new();
        for c in &self.compounds {
            let n = c.tt.vars() as usize;
            // Fat unit = 2 tracks; every pin needs its own fat track.
            let width = (c.diff_width_tracks.div_ceil(2)).max(n as u32 + 1);
            cells.push(LibCell::new(
                c.fat_name.clone(),
                CellFunction::Comb(c.tt),
                vec![2.5; n],
                4.0,
                40.0 + 25.0 * c.primitive_count as f64,
                LefMacro::evenly_spread(width, n, 1),
            ));
        }
        let dff_width = self
            .base
            .by_name("DFF")
            .expect("DFF checked at construction")
            .physical()
            .width_tracks;
        for name in [WDDL_DFF_FAT, WDDL_DFFN_FAT] {
            cells.push(LibCell::new(
                name,
                CellFunction::Dff,
                vec![2.8],
                4.0,
                120.0,
                LefMacro::evenly_spread(dff_width, 1, 1),
            ));
        }
        Library::new(cells)
    }

    /// The differential-netlist library view: the base library plus
    /// the dual-rail register [`WDDL_REGISTER`].
    pub fn diff_library(&self) -> Library {
        let mut cells = self.base.cells().to_vec();
        let dff_width = self
            .base
            .by_name("DFF")
            .expect("DFF checked at construction")
            .physical()
            .width_tracks;
        cells.push(LibCell::new(
            WDDL_REGISTER,
            CellFunction::WddlDff,
            vec![2.8, 2.8],
            1.8,
            70.0,
            LefMacro::evenly_spread(2 * dff_width, 2, 2),
        ));
        Library::new(cells)
    }

    /// The base library this WDDL library was derived from.
    pub fn base(&self) -> &Library {
        &self.base
    }
}

/// Evaluates a cover network on a rail assignment (for tests and the
/// substitution engine's own verification).
#[cfg(test)]
pub(crate) fn eval_cover(net: &CoverNet, rails_t: u32, rails_f: u32) -> bool {
    let mut values = Vec::with_capacity(net.gates.len());
    for g in &net.gates {
        let read = |s: &PrimSrc, values: &[bool]| match *s {
            PrimSrc::Rail { input, complement } => {
                if complement {
                    rails_f >> input & 1 == 1
                } else {
                    rails_t >> input & 1 == 1
                }
            }
            PrimSrc::Node(i) => values[i],
        };
        let v = match g.cell.as_str() {
            "TIELO" => false,
            "TIEHI" => true,
            "BUF" => read(&g.inputs[0], &values),
            c if c.starts_with("AND") => g.inputs.iter().all(|s| read(s, &values)),
            c if c.starts_with("OR") => g.inputs.iter().any(|s| read(s, &values)),
            other => panic!("unexpected primitive `{other}`"),
        };
        values.push(v);
    }
    *values.last().expect("non-empty network")
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_testkit::CaseResult;

    fn lib() -> WddlLibrary {
        WddlLibrary::new(&Library::lib180())
    }

    #[test]
    fn and2_compound_is_and_plus_or() {
        let mut w = lib();
        let i = w.compound_for(&TruthTable::and2());
        let c = w.compound(i);
        // True net: single AND2; false net: single OR2 (De Morgan).
        assert_eq!(c.true_net.gates.len(), 1);
        assert_eq!(c.true_net.gates[0].cell, "AND2");
        assert_eq!(c.false_net.gates.len(), 1);
        assert_eq!(c.false_net.gates[0].cell, "OR2");
        assert_eq!(c.primitive_count, 2);
    }

    #[test]
    fn aoi32_compound_matches_fig2() {
        // Fig. 2: the WDDL AOI32 compound. True rail = ¬(abc + de)
        // over rails; both networks positive.
        let lib180 = Library::lib180();
        let tt = *lib180.by_name("AOI32").unwrap().truth_table().unwrap();
        let mut w = lib();
        let i = w.compound_for(&tt);
        let c = w.compound(i);
        // Exhaustive functional check of both rails.
        for v in 0..32u32 {
            let rails_t = v;
            let rails_f = !v & 31;
            assert_eq!(eval_cover(&c.true_net, rails_t, rails_f), tt.eval(v));
            assert_eq!(eval_cover(&c.false_net, rails_t, rails_f), !tt.eval(v));
        }
    }

    #[test]
    fn inverter_compound_is_rail_swap_with_buffers() {
        let inv = TruthTable::from_fn(1, |x| x == 0);
        let mut w = lib();
        let i = w.compound_for(&inv);
        let c = w.compound(i);
        // True rail of ¬a = false rail of a, through a buffer.
        assert_eq!(c.true_net.gates.len(), 1);
        assert_eq!(c.true_net.gates[0].cell, "BUF");
        assert_eq!(
            c.true_net.gates[0].inputs[0],
            PrimSrc::Rail {
                input: 0,
                complement: true
            }
        );
    }

    #[test]
    fn compound_reuse_is_cached() {
        let mut w = lib();
        let a = w.compound_for(&TruthTable::and2());
        let b = w.compound_for(&TruthTable::and2());
        assert_eq!(a, b);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn derive_base_cells_covers_library() {
        let mut w = lib();
        let n = w.derive_base_cells();
        // One compound per distinct combinational function.
        assert!(n >= 20, "only {n} compounds");
        let fat = w.fat_library();
        assert!(fat.by_name(WDDL_DFF_FAT).is_some());
        assert!(fat.by_name(WDDL_DFFN_FAT).is_some());
        assert_eq!(fat.cells().len(), n + 2);
        let diff = w.diff_library();
        assert!(diff.by_name(WDDL_REGISTER).is_some());
    }

    #[test]
    fn compound_area_exceeds_single_ended() {
        let lib180 = Library::lib180();
        let mut w = lib();
        for (cell, tt) in lib180.comb_cells() {
            let i = w.compound_for(tt);
            assert!(
                w.compound(i).diff_area_um2 > cell.area_um2(),
                "{} compound not larger",
                cell.name()
            );
        }
    }

    /// Dual-rail correctness for arbitrary functions: with
    /// complementary rails, the true net computes f and the false
    /// net ¬f; with all-zero rails both nets are 0 (precharge).
    #[test]
    fn compound_is_correct_and_precharges() {
        secflow_testkit::prop_check!(cases: 48, seed: 0x0DD1_000A, |g| {
            let n = g.random_range(1..6u8);
            let tt = TruthTable::from_bits(n, g.random());
            if tt.support().is_empty() {
                return CaseResult::Skip;
            }
            let mut w = lib();
            let i = w.compound_for(&tt);
            let c = w.compound(i);
            let mask = (1u32 << n) - 1;
            for v in 0..=mask {
                assert_eq!(eval_cover(&c.true_net, v, !v & mask), tt.eval(v));
                assert_eq!(eval_cover(&c.false_net, v, !v & mask), !tt.eval(v));
            }
            // Precharge: all rails zero -> both outputs zero.
            assert!(!eval_cover(&c.true_net, 0, 0) || tt == TruthTable::one(n));
            assert!(!eval_cover(&c.false_net, 0, 0) || tt == TruthTable::zero(n));
        });
    }

    /// Exactly one rail rises in the evaluation phase.
    #[test]
    fn exactly_one_rail_active() {
        secflow_testkit::prop_check!(cases: 48, seed: 0x0DD1_000B, |g| {
            let n = g.random_range(1..5u8);
            let tt = TruthTable::from_bits(n, g.random());
            if tt.support().is_empty() {
                return CaseResult::Skip;
            }
            let v = g.random_range(0..16u32) & ((1 << n) - 1);
            let mut w = lib();
            let i = w.compound_for(&tt);
            let c = w.compound(i);
            let mask = (1u32 << n) - 1;
            let t = eval_cover(&c.true_net, v, !v & mask);
            let f = eval_cover(&c.false_net, v, !v & mask);
            assert_ne!(t, f);
        });
    }
}
