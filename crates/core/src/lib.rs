//! The secure digital design flow of Tiri & Verbauwhede (DATE 2005):
//! a few backend insertions that turn a regular synchronous standard
//! cell flow into one producing DPA-resistant layouts.
//!
//! The two insertions (Fig. 1 of the paper) are implemented here:
//!
//! * [`substitute`] — **cell substitution**: transforms a mapped
//!   single-ended netlist into (a) a *differential* WDDL netlist
//!   (every gate replaced by its dual-rail compound of positive
//!   AND/OR gates, inverters removed by swapping rails) and (b) a
//!   *fat* netlist in which each differential pair is abstracted as a
//!   single fat wire and each compound as a single fat cell, used for
//!   place & route;
//! * [`decompose`] — **interconnect decomposition**: edits the routed
//!   fat design, duplicating and translating every fat wire by one
//!   routing pitch and reducing the width, so the two rails of every
//!   pair are parallel, same-layer, same-length wires with matched
//!   parasitics.
//!
//! [`WddlLibrary`] derives the WDDL compound cells from any base
//! standard cell library (the paper derives 128 cells from a 0.18 µm
//! vendor library). [`run_regular_flow`] and [`run_secure_flow`]
//! orchestrate the full paths of Fig. 1 — synthesis, substitution,
//! floorplan, placement, (fat) routing, decomposition, extraction and
//! equivalence verification — and produce comparable reports.
//!
//! # Example
//!
//! ```
//! use secflow_cells::Library;
//! use secflow_core::{run_secure_flow, FlowOptions};
//! use secflow_synth::Design;
//!
//! let mut d = Design::new("toy");
//! let a = d.input("a");
//! let b = d.input("b");
//! let y = d.aig.and(a, b);
//! d.output("y", y);
//! let lib = Library::lib180();
//! let secure = run_secure_flow(&d, &lib, &FlowOptions::default())?;
//! assert!(secure.report.die_area_um2 > 0.0);
//! # Ok::<(), secflow_core::FlowError>(())
//! ```

mod checks;
mod decompose;
mod error;
mod flow;
mod substitute;
mod wddl;

pub use checks::{verify_precharge_wave, verify_rail_complementarity, RailCheckError};
pub use decompose::{decompose, decompose_styled, DecomposeError, DecomposeStyle};
pub use error::{FlowError, Stage};
pub use flow::{
    run_regular_backend, run_regular_flow, run_secure_backend, run_secure_flow, FlowOptions,
    FlowReport, RegularFlowResult, SecureFlowResult,
};
pub use substitute::{substitute, FatPair, SubstituteError, Substitution};
pub use wddl::{WddlCompound, WddlLibrary, WDDL_DFFN_FAT, WDDL_DFF_FAT, WDDL_REGISTER};
