//! Cell substitution: single-ended netlist → differential WDDL
//! netlist + fat netlist (the paper's `rtl.v → {fat.v, diff}` step).
//!
//! Inverters are removed and their inversions absorbed: each net is
//! resolved to a *root* signal and a *parity*; consumers fold the
//! parity into their gate function (a negated pin simply reads the
//! other rail inside the compound, which is what "implementing
//! inversions by switching the nets" means physically). Registers
//! store the actual D signal — a negative-parity D swaps the register's
//! input rails, recorded in [`Substitution::fat_register_parity`] for
//! the fat-netlist equivalence check.

use std::collections::HashMap;
use std::fmt;

use secflow_cells::{CellFunction, Library, TruthTable};
use secflow_netlist::{GateId, GateKind, NetId, Netlist};

use crate::wddl::{CoverNet, PrimSrc, WddlLibrary, WDDL_DFFN_FAT, WDDL_DFF_FAT, WDDL_REGISTER};

/// Errors from cell substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstituteError {
    /// A gate references a cell missing from the base library.
    UnknownCell {
        /// The missing cell name.
        cell: String,
    },
    /// The input netlist has a combinational cycle.
    Cyclic {
        /// Netlist name.
        netlist: String,
    },
}

impl fmt::Display for SubstituteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstituteError::UnknownCell { cell } => write!(f, "unknown cell `{cell}`"),
            SubstituteError::Cyclic { netlist } => {
                write!(f, "netlist `{netlist}` has a combinational cycle")
            }
        }
    }
}

impl std::error::Error for SubstituteError {}

/// The correspondence between one fat wire and its two differential
/// rails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatPair {
    /// Net in the fat netlist.
    pub fat: NetId,
    /// True rail in the differential netlist.
    pub t: NetId,
    /// False rail in the differential netlist.
    pub f: NetId,
}

/// The result of cell substitution.
#[derive(Debug, Clone)]
pub struct Substitution {
    /// The fat netlist (`fat.v`): one fat cell per original gate, one
    /// fat wire per differential pair. Routed by the fat place & route.
    pub fat: Netlist,
    /// The differential netlist: WDDL compounds expanded into positive
    /// primitive gates plus dual-rail registers. Used for verification
    /// and power simulation.
    pub differential: Netlist,
    /// Library for the fat netlist (cell functions preserved,
    /// footprints in fat grid units).
    pub fat_lib: Library,
    /// Library for the differential netlist (base cells plus
    /// [`WDDL_REGISTER`]).
    pub diff_lib: Library,
    /// The WDDL compound library accumulated during substitution.
    pub wddl: WddlLibrary,
    /// Differential input rail pair per original primary input, in
    /// original order.
    pub input_pairs: Vec<(NetId, NetId)>,
    /// Differential output rail pair per original primary output
    /// (polarity already resolved: `.0` carries the original output's
    /// true value).
    pub output_pairs: Vec<(NetId, NetId)>,
    /// Per fat primary output: true if the fat net carries the
    /// *complement* of the original output (inversion absorbed into a
    /// rail swap).
    pub fat_output_parity: Vec<bool>,
    /// Per register (in order): true if the fat register is the
    /// inverting [`WDDL_DFFN_FAT`] (the differential register's input
    /// rails are swapped).
    pub fat_register_parity: Vec<bool>,
    /// Fat-wire ↔ rail-pair correspondence for every fat net.
    pub pairs: Vec<FatPair>,
    /// For every differential gate, the fat gate it belongs to.
    pub diff_gate_fat: Vec<GateId>,
    /// The grounded shield net used by
    /// [`crate::DecomposeStyle::Shielded`] geometry.
    pub shield: NetId,
    /// Number of inverters removed by rail swapping.
    pub removed_inverters: usize,
}

/// True if the cell function is a one-input inverter.
fn is_inverter(f: &CellFunction) -> bool {
    match f {
        CellFunction::Comb(tt) => tt.vars() == 1 && tt.bits() & 0b11 == 0b01,
        _ => false,
    }
}

/// Runs cell substitution over `nl` with compounds derived from
/// `base`.
///
/// # Errors
///
/// Returns [`SubstituteError`] for unknown cells or combinational
/// cycles.
pub fn substitute(nl: &Netlist, base: &Library) -> Result<Substitution, SubstituteError> {
    let order = secflow_netlist::topo_order(nl).ok_or_else(|| SubstituteError::Cyclic {
        netlist: nl.name.clone(),
    })?;
    let cell_of = |g: GateId| -> Result<&secflow_cells::LibCell, SubstituteError> {
        base.by_name(&nl.gate(g).cell)
            .ok_or_else(|| SubstituteError::UnknownCell {
                cell: nl.gate(g).cell.clone(),
            })
    };

    // ---- Polarity sweep: resolve every net to (root, parity). ----
    let mut root: Vec<NetId> = nl.net_ids().collect();
    let mut parity = vec![false; nl.net_count()];
    let mut inverter_gates = vec![false; nl.gate_count()];
    let mut removed_inverters = 0;
    for &gid in &order {
        let g = nl.gate(gid);
        if g.kind != GateKind::Comb {
            continue;
        }
        if is_inverter(cell_of(gid)?.function()) {
            let inp = g.inputs[0];
            let out = g.outputs[0];
            root[out.index()] = root[inp.index()];
            parity[out.index()] = !parity[inp.index()];
            inverter_gates[gid.index()] = true;
            removed_inverters += 1;
        }
    }
    let resolve = |n: NetId| (root[n.index()], parity[n.index()]);

    let mut wddl = WddlLibrary::new(base);
    let mut fat = Netlist::new(format!("{}_fat", nl.name));
    let mut diff = Netlist::new(format!("{}_diff", nl.name));
    let shield = diff.add_net("VSS_SHIELD");

    // ---- Root nets in both views. ----
    let mut fat_net: HashMap<NetId, NetId> = HashMap::new();
    let mut rails: HashMap<NetId, (NetId, NetId)> = HashMap::new();
    let mut input_pairs = Vec::new();
    for &pi in nl.inputs() {
        let name = nl.net(pi).name.clone();
        fat_net.insert(pi, fat.add_input(name.clone()));
        let t = diff.add_input(format!("{name}_t"));
        let f = diff.add_input(format!("{name}_f"));
        rails.insert(pi, (t, f));
        input_pairs.push((t, f));
    }
    // Every other root is a gate output; create its nets up front so
    // consumers can connect regardless of processing order.
    for gid in nl.gate_ids() {
        if inverter_gates[gid.index()] {
            continue;
        }
        for &out in &nl.gate(gid).outputs {
            let name = nl.net(out).name.clone();
            fat_net.insert(out, fat.add_net(name.clone()));
            let t = diff.add_net(format!("{name}_t"));
            let f = diff.add_net(format!("{name}_f"));
            rails.insert(out, (t, f));
        }
    }

    // ---- Gate substitution. ----
    let mut diff_gate_fat: Vec<GateId> = Vec::new();
    let mut fat_register_parity = Vec::new();
    for gid in nl.gate_ids() {
        if inverter_gates[gid.index()] {
            continue;
        }
        let g = nl.gate(gid);
        let cell = cell_of(gid)?;
        match cell.function() {
            CellFunction::Dff => {
                let (d_root, d_par) = resolve(g.inputs[0]);
                let q = g.outputs[0];
                let fat_cell = if d_par { WDDL_DFFN_FAT } else { WDDL_DFF_FAT };
                let fat_gid = fat.add_gate(
                    g.name.clone(),
                    fat_cell,
                    GateKind::Seq,
                    vec![fat_net[&d_root]],
                    vec![fat_net[&q]],
                );
                fat_register_parity.push(d_par);
                let (dt, df) = rails[&d_root];
                let (dt, df) = if d_par { (df, dt) } else { (dt, df) };
                let (qt, qf) = rails[&q];
                diff.add_gate(
                    g.name.clone(),
                    WDDL_REGISTER,
                    GateKind::Seq,
                    vec![dt, df],
                    vec![qt, qf],
                );
                diff_gate_fat.push(fat_gid);
            }
            CellFunction::WddlDff => {
                // Substituting an already-differential netlist is not
                // meaningful; treat as unknown.
                return Err(SubstituteError::UnknownCell {
                    cell: g.cell.clone(),
                });
            }
            CellFunction::Comb(tt) => {
                // Fold input parities into the gate function.
                let mut mask = 0u32;
                let mut in_roots = Vec::with_capacity(g.inputs.len());
                for (i, &inp) in g.inputs.iter().enumerate() {
                    let (r, p) = resolve(inp);
                    if p {
                        mask |= 1 << i;
                    }
                    in_roots.push(r);
                }
                let f_eff = tt.phase(mask);
                let y = g.outputs[0];
                let idx = wddl.compound_for(&f_eff);
                let fat_name = wddl.compound(idx).fat_name.clone();
                let fat_gid = fat.add_gate(
                    g.name.clone(),
                    fat_name,
                    GateKind::Comb,
                    in_roots.iter().map(|r| fat_net[r]).collect(),
                    vec![fat_net[&y]],
                );
                let (yt, yf) = rails[&y];
                let (true_net, false_net) = {
                    let c = wddl.compound(idx);
                    (c.true_net.clone(), c.false_net.clone())
                };
                expand_cover(
                    &mut diff,
                    &true_net,
                    &g.name,
                    "t",
                    &in_roots,
                    &rails,
                    yt,
                    fat_gid,
                    &mut diff_gate_fat,
                );
                expand_cover(
                    &mut diff,
                    &false_net,
                    &g.name,
                    "f",
                    &in_roots,
                    &rails,
                    yf,
                    fat_gid,
                    &mut diff_gate_fat,
                );
            }
            CellFunction::Tie(v) => {
                let y = g.outputs[0];
                let tt0 = TruthTable::from_bits(0, u64::from(*v));
                let idx = wddl.compound_for(&tt0);
                let fat_name = wddl.compound(idx).fat_name.clone();
                let fat_gid = fat.add_gate(
                    g.name.clone(),
                    fat_name,
                    GateKind::Tie,
                    vec![],
                    vec![fat_net[&y]],
                );
                let (yt, yf) = rails[&y];
                let (t_cell, f_cell) = if *v {
                    ("TIEHI", "TIELO")
                } else {
                    ("TIELO", "TIEHI")
                };
                diff.add_gate(
                    format!("{}_t", g.name),
                    t_cell,
                    GateKind::Tie,
                    vec![],
                    vec![yt],
                );
                diff_gate_fat.push(fat_gid);
                diff.add_gate(
                    format!("{}_f", g.name),
                    f_cell,
                    GateKind::Tie,
                    vec![],
                    vec![yf],
                );
                diff_gate_fat.push(fat_gid);
            }
        }
    }

    // ---- Primary outputs. ----
    let mut output_pairs = Vec::new();
    let mut fat_output_parity = Vec::new();
    for &po in nl.outputs() {
        let (r, p) = resolve(po);
        fat.mark_output(fat_net[&r]);
        fat_output_parity.push(p);
        let (t, f) = rails[&r];
        let (t, f) = if p { (f, t) } else { (t, f) };
        diff.mark_output(t);
        diff.mark_output(f);
        output_pairs.push((t, f));
    }

    // ---- Pair table for decomposition. ----
    let mut pairs = Vec::new();
    for (orig, fat_id) in &fat_net {
        let (t, f) = rails[orig];
        pairs.push(FatPair { fat: *fat_id, t, f });
    }
    pairs.sort_by_key(|p| p.fat);

    let fat_lib = wddl.fat_library();
    let diff_lib = wddl.diff_library();
    secflow_obs::add(
        secflow_obs::Counter::SubstituteGates,
        nl.gate_count() as u64,
    );
    Ok(Substitution {
        fat,
        differential: diff,
        fat_lib,
        diff_lib,
        wddl,
        input_pairs,
        output_pairs,
        fat_output_parity,
        fat_register_parity,
        pairs,
        diff_gate_fat,
        shield,
        removed_inverters,
    })
}

/// Expands one rail network of a compound into primitive gates of the
/// differential netlist; the last gate drives `out`.
#[allow(clippy::too_many_arguments)]
fn expand_cover(
    diff: &mut Netlist,
    net: &CoverNet,
    gate_name: &str,
    rail: &str,
    in_roots: &[NetId],
    rails: &HashMap<NetId, (NetId, NetId)>,
    out: NetId,
    fat_gid: GateId,
    diff_gate_fat: &mut Vec<GateId>,
) {
    let mut node_nets: Vec<NetId> = Vec::with_capacity(net.gates.len());
    for (i, pg) in net.gates.iter().enumerate() {
        let is_last = i == net.out();
        let out_net = if is_last {
            out
        } else {
            diff.fresh_net(&format!("{gate_name}_{rail}{i}"))
        };
        let inputs: Vec<NetId> = pg
            .inputs
            .iter()
            .map(|src| match *src {
                PrimSrc::Rail { input, complement } => {
                    let (t, f) = rails[&in_roots[input as usize]];
                    if complement {
                        f
                    } else {
                        t
                    }
                }
                PrimSrc::Node(j) => node_nets[j],
            })
            .collect();
        let kind = if pg.cell.starts_with("TIE") {
            GateKind::Tie
        } else {
            GateKind::Comb
        };
        diff.add_gate(
            format!("{gate_name}_{rail}g{i}"),
            pg.cell.clone(),
            kind,
            inputs,
            vec![out_net],
        );
        diff_gate_fat.push(fat_gid);
        node_nets.push(out_net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_cells::Library;
    use secflow_netlist::GateKind;

    /// A small netlist with inverters, XOR, a register and a tie.
    fn sample() -> Netlist {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let na = nl.add_net("na");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        let k = nl.add_net("k");
        nl.add_gate("i0", "INV", GateKind::Comb, vec![a], vec![na]);
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![na, b], vec![x]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![x], vec![q]);
        nl.add_gate("t0", "TIEHI", GateKind::Tie, vec![], vec![k]);
        nl.mark_output(q);
        nl.mark_output(na);
        nl.mark_output(k);
        nl
    }

    #[test]
    fn inverters_are_removed() {
        let nl = sample();
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert_eq!(sub.removed_inverters, 1);
        assert!(!sub.fat.gates().iter().any(|g| g.cell.contains("INV")));
        // Output `na` is `¬a`: fat output is net `a` with parity.
        assert_eq!(sub.fat_output_parity, vec![false, true, false]);
    }

    #[test]
    fn netlists_are_structurally_valid() {
        let nl = sample();
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert!(sub.fat.validate().is_ok(), "{:?}", sub.fat.validate());
        assert!(
            sub.differential.validate().is_ok(),
            "{:?}",
            sub.differential.validate()
        );
    }

    #[test]
    fn fat_gate_count_matches_original_minus_inverters() {
        let nl = sample();
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert_eq!(sub.fat.gate_count(), nl.gate_count() - 1);
    }

    #[test]
    fn differential_has_two_rails_per_fat_net() {
        let nl = sample();
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert_eq!(sub.pairs.len(), sub.fat.net_count());
        // Rails are distinct nets.
        for p in &sub.pairs {
            assert_ne!(p.t, p.f);
        }
    }

    #[test]
    fn register_parity_recorded() {
        // Register fed by an inverted signal.
        let mut nl = Netlist::new("rp");
        let a = nl.add_input("a");
        let na = nl.add_net("na");
        let q = nl.add_net("q");
        nl.add_gate("i", "INV", GateKind::Comb, vec![a], vec![na]);
        nl.add_gate("r", "DFF", GateKind::Seq, vec![na], vec![q]);
        nl.mark_output(q);
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert_eq!(sub.fat_register_parity, vec![true]);
        // The differential register reads swapped rails of `a`.
        let reg = sub
            .differential
            .gates()
            .iter()
            .find(|g| g.cell == WDDL_REGISTER)
            .unwrap();
        let at = sub.differential.net_by_name("a_t").unwrap();
        let af = sub.differential.net_by_name("a_f").unwrap();
        assert_eq!(reg.inputs, vec![af, at]);
    }

    #[test]
    fn diff_gate_mapping_covers_all_gates() {
        let nl = sample();
        let sub = substitute(&nl, &Library::lib180()).unwrap();
        assert_eq!(sub.diff_gate_fat.len(), sub.differential.gate_count());
        for &f in &sub.diff_gate_fat {
            assert!(f.index() < sub.fat.gate_count());
        }
    }

    #[test]
    fn fat_netlist_is_equivalent_to_original() {
        let nl = sample();
        let lib = Library::lib180();
        let sub = substitute(&nl, &lib).unwrap();
        let report = secflow_lec::check_equiv_with_parity(
            &nl,
            &lib,
            &sub.fat,
            &sub.fat_lib,
            Some(&sub.fat_output_parity),
            Some(&sub.fat_register_parity),
        )
        .unwrap();
        assert!(report.equivalent, "{report:?}");
    }

    #[test]
    fn unknown_cell_is_reported() {
        let mut nl = Netlist::new("u");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g", "MYSTERY", GateKind::Comb, vec![a], vec![y]);
        assert!(matches!(
            substitute(&nl, &Library::lib180()),
            Err(SubstituteError::UnknownCell { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use secflow_cells::Library;
    use secflow_synth::{map_design, Design, MapOptions};

    /// Substituting any random mapped design yields an equivalent
    /// fat netlist and a correct, precharging differential netlist.
    #[test]
    fn substitution_is_correct_on_random_designs() {
        secflow_testkit::prop_check!(cases: 16, seed: 0x5AB5_0001, |g| {
            let n_inputs = g.random_range(2..6usize);
            let n_regs = g.random_range(0..4usize);
            let steps = g.vec_with(1..24, |g| {
                (
                    g.random::<u8>(),
                    g.random::<u16>(),
                    g.random::<u16>(),
                    g.random::<bool>(),
                )
            });
            let mut d = Design::new("rand");
            let mut pool: Vec<secflow_synth::Lit> = (0..n_inputs)
                .map(|i| d.input(format!("i{i}")))
                .collect();
            let regs: Vec<_> = (0..n_regs)
                .map(|i| d.register(format!("q{i}")))
                .collect();
            pool.extend(regs.iter().copied());
            for (op, a, b, neg) in &steps {
                let pa = pool[*a as usize % pool.len()];
                let pb = pool[*b as usize % pool.len()];
                let mut l = match op % 4 {
                    0 => d.aig.and(pa, pb),
                    1 => d.aig.or(pa, pb),
                    2 => d.aig.xor(pa, pb),
                    _ => d.aig.and(pa, pb.not()),
                };
                if *neg {
                    l = l.not();
                }
                pool.push(l);
            }
            for (i, &q) in regs.iter().enumerate() {
                let src = pool[pool.len() - 1 - (i % pool.len().min(8))];
                d.set_next(q, src);
            }
            d.output("y", *pool.last().expect("non-empty"));

            let lib = Library::lib180();
            let mapped = map_design(&d, &lib, &MapOptions::default()).expect("map");
            let sub = substitute(&mapped, &lib).expect("substitute");

            assert!(sub.fat.validate().is_ok());
            assert!(sub.differential.validate().is_ok());

            let lec = secflow_lec::check_equiv_with_parity(
                &mapped,
                &lib,
                &sub.fat,
                &sub.fat_lib,
                Some(&sub.fat_output_parity),
                Some(&sub.fat_register_parity),
            )
            .expect("lec runs");
            assert!(lec.equivalent, "{lec:?}");

            crate::checks::verify_precharge_wave(&sub).expect("precharge");
            crate::checks::verify_rail_complementarity(&mapped, &lib, &sub, 16, 3)
                .expect("rails");
        });
    }
}
