//! The flow-wide error taxonomy: every stage of the secure design
//! flow reports failures as a typed [`FlowError`] carrying the
//! [`Stage`] it came from, so one corrupt input fails its stage — with
//! a structured, machine-readable report — instead of panicking the
//! process.

use std::fmt;

use secflow_extract::ExtractError;
use secflow_lec::LecError;
use secflow_netlist::NetlistError;
use secflow_pnr::{PlaceError, RouteError};
use secflow_sim::SimError;
use secflow_synth::MapError;

use crate::checks::RailCheckError;
use crate::decompose::DecomposeError;
use crate::substitute::SubstituteError;

/// The flow stage a [`FlowError`] originated from.
///
/// Each stage owns a distinct process exit code (10–19) so scripts can
/// tell *where* a run failed without parsing the error text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Structural Verilog (or DEF) parsing.
    Parse,
    /// Synthesis / technology mapping.
    Synth,
    /// WDDL cell substitution.
    Substitute,
    /// Placement.
    Place,
    /// Routing.
    Route,
    /// Interconnect decomposition.
    Decompose,
    /// Parasitic extraction.
    Extract,
    /// Logic equivalence checking.
    Lec,
    /// WDDL rail invariant checks.
    RailCheck,
    /// Simulation / timing analysis.
    Sim,
}

impl Stage {
    /// Stable lowercase stage name used in structured error output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Synth => "synth",
            Stage::Substitute => "substitute",
            Stage::Place => "place",
            Stage::Route => "route",
            Stage::Decompose => "decompose",
            Stage::Extract => "extract",
            Stage::Lec => "lec",
            Stage::RailCheck => "railcheck",
            Stage::Sim => "sim",
        }
    }

    /// Process exit code for a failure in this stage (10–19; 0 is
    /// success and 1/2 stay reserved for usage errors).
    pub fn exit_code(self) -> i32 {
        match self {
            Stage::Parse => 10,
            Stage::Synth => 11,
            Stage::Substitute => 12,
            Stage::Place => 13,
            Stage::Route => 14,
            Stage::Decompose => 15,
            Stage::Extract => 16,
            Stage::Lec => 17,
            Stage::RailCheck => 18,
            Stage::Sim => 19,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failure in one of the flow stages.
#[derive(Debug)]
pub enum FlowError {
    /// Netlist parsing or validation failed.
    Parse(NetlistError),
    /// Technology mapping failed.
    Map(MapError),
    /// Cell substitution failed.
    Substitute(SubstituteError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed.
    Route(RouteError),
    /// Interconnect decomposition failed.
    Decompose(DecomposeError),
    /// Parasitic extraction failed.
    Extract(ExtractError),
    /// The equivalence check could not run.
    Lec(LecError),
    /// A WDDL invariant was violated.
    RailCheck(RailCheckError),
    /// Simulation or timing analysis failed.
    Sim(SimError),
}

impl FlowError {
    /// The stage this error originated from.
    pub fn stage(&self) -> Stage {
        match self {
            FlowError::Parse(_) => Stage::Parse,
            FlowError::Map(_) => Stage::Synth,
            FlowError::Substitute(_) => Stage::Substitute,
            FlowError::Place(_) => Stage::Place,
            FlowError::Route(_) => Stage::Route,
            FlowError::Decompose(_) => Stage::Decompose,
            FlowError::Extract(_) => Stage::Extract,
            FlowError::Lec(_) => Stage::Lec,
            FlowError::RailCheck(_) => Stage::RailCheck,
            FlowError::Sim(_) => Stage::Sim,
        }
    }

    /// The inner error's variant name (e.g. `UnknownCell`), taken from
    /// its `Debug` representation.
    pub fn kind(&self) -> String {
        let repr = match self {
            FlowError::Parse(e) => format!("{e:?}"),
            FlowError::Map(e) => format!("{e:?}"),
            FlowError::Substitute(e) => format!("{e:?}"),
            FlowError::Place(e) => format!("{e:?}"),
            FlowError::Route(e) => format!("{e:?}"),
            FlowError::Decompose(e) => format!("{e:?}"),
            FlowError::Extract(e) => format!("{e:?}"),
            FlowError::Lec(e) => format!("{e:?}"),
            FlowError::RailCheck(e) => format!("{e:?}"),
            FlowError::Sim(e) => format!("{e:?}"),
        };
        repr.split(|c: char| c == ' ' || c == '(' || c == '{')
            .next()
            .unwrap_or("Unknown")
            .to_string()
    }

    /// Process exit code: the originating stage's code.
    pub fn exit_code(&self) -> i32 {
        self.stage().exit_code()
    }

    /// Structured single-line JSON report,
    /// `{"error":{"stage":...,"kind":...,"detail":...}}`, suitable for
    /// stderr. Emitted through the workspace's shared escaping-safe
    /// writer (`secflow_obs::json`) — the workspace has no serde.
    pub fn to_json(&self) -> String {
        let mut inner = secflow_obs::json::Obj::new();
        inner
            .str("stage", self.stage().name())
            .str("kind", &self.kind())
            .str("detail", &self.to_string());
        let mut outer = secflow_obs::json::Obj::new();
        outer.raw("error", &inner.build());
        outer.build()
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "parsing failed: {e}"),
            FlowError::Map(e) => write!(f, "mapping failed: {e}"),
            FlowError::Substitute(e) => write!(f, "substitution failed: {e}"),
            FlowError::Place(e) => write!(f, "placement failed: {e}"),
            FlowError::Route(e) => write!(f, "routing failed: {e}"),
            FlowError::Decompose(e) => write!(f, "decomposition failed: {e}"),
            FlowError::Extract(e) => write!(f, "extraction failed: {e}"),
            FlowError::Lec(e) => write!(f, "equivalence check failed: {e}"),
            FlowError::RailCheck(e) => write!(f, "WDDL invariant violated: {e}"),
            FlowError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Parse(e)
    }
}
impl From<MapError> for FlowError {
    fn from(e: MapError) -> Self {
        FlowError::Map(e)
    }
}
impl From<SubstituteError> for FlowError {
    fn from(e: SubstituteError) -> Self {
        FlowError::Substitute(e)
    }
}
impl From<PlaceError> for FlowError {
    fn from(e: PlaceError) -> Self {
        FlowError::Place(e)
    }
}
impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> Self {
        FlowError::Route(e)
    }
}
impl From<DecomposeError> for FlowError {
    fn from(e: DecomposeError) -> Self {
        FlowError::Decompose(e)
    }
}
impl From<ExtractError> for FlowError {
    fn from(e: ExtractError) -> Self {
        FlowError::Extract(e)
    }
}
impl From<LecError> for FlowError {
    fn from(e: LecError) -> Self {
        FlowError::Lec(e)
    }
}
impl From<RailCheckError> for FlowError {
    fn from(e: RailCheckError) -> Self {
        FlowError::RailCheck(e)
    }
}
impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_exit_codes_are_distinct() {
        let stages = [
            Stage::Parse,
            Stage::Synth,
            Stage::Substitute,
            Stage::Place,
            Stage::Route,
            Stage::Decompose,
            Stage::Extract,
            Stage::Lec,
            Stage::RailCheck,
            Stage::Sim,
        ];
        let mut codes: Vec<i32> = stages.iter().map(|s| s.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), stages.len());
        assert!(codes.iter().all(|&c| (10..=19).contains(&c)));
    }

    #[test]
    fn to_json_reports_stage_kind_detail() {
        let e = FlowError::Place(PlaceError::UnknownCell {
            gate: "g0".into(),
            cell: "BOGUS".into(),
        });
        assert_eq!(e.stage(), Stage::Place);
        assert_eq!(e.kind(), "UnknownCell");
        assert_eq!(e.exit_code(), 13);
        let j = e.to_json();
        assert!(j.starts_with(r#"{"error":{"stage":"place","kind":"UnknownCell","#));
        assert!(j.contains("BOGUS"));
    }

    #[test]
    fn json_escape_handles_specials() {
        // The shared writer (one escaping implementation for errors,
        // run-info lines, and metrics exports).
        assert_eq!(secflow_obs::json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(secflow_obs::json::escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_errors_map_to_parse_stage() {
        let e: FlowError = NetlistError::Parse {
            line: 3,
            message: "bad".into(),
        }
        .into();
        assert_eq!(e.stage(), Stage::Parse);
        assert_eq!(e.kind(), "Parse");
        assert_eq!(e.exit_code(), 10);
    }
}
