//! Correlation Power Analysis — the stronger attacker of the paper's
//! §3 discussion ("the more powerful an attacker is, the better his
//! results may be").
//!
//! Instead of Kocher's single-bit partitioning, CPA correlates the
//! trace at every sample with a multi-bit power *model* (here the
//! Hamming weight of the predicted S-box output) across all traces,
//! per key guess. It typically needs fewer traces than single-bit DPA
//! against unprotected implementations, making it the natural
//! escalation for evaluating the secure flow's margin.
//!
//! Parallel over key guesses (`secflow-exec`): the trace-only moments
//! (Σt, Σt²) are shared and computed once serially, then each guess
//! accumulates its hypothesis moments independently, walking the
//! traces in input order — byte-identical at any thread count.

use secflow_exec::par_map_range;

/// Per-key-guess CPA statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaKeyResult {
    /// The key guess.
    pub key: u8,
    /// Maximum absolute Pearson correlation over all samples.
    pub peak_corr: f64,
}

/// The outcome of a CPA over all key guesses.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaResult {
    /// Statistics per key guess, indexed by key.
    pub guesses: Vec<CpaKeyResult>,
    /// The key with the largest |correlation| peak.
    pub best_key: u8,
    /// Best peak divided by the second-best peak.
    pub margin: f64,
}

/// Trace-only moments Σt, Σt² per sample, shared across key guesses.
struct TraceSums {
    n: f64,
    st: Vec<f64>,
    stt: Vec<f64>,
}

impl TraceSums {
    /// Accumulates the first `upto` traces in input order.
    fn over(traces: &[Vec<f64>], samples: usize, upto: usize) -> Self {
        let mut st = vec![0.0; samples];
        let mut stt = vec![0.0; samples];
        for t in &traces[..upto] {
            assert_eq!(t.len(), samples, "inconsistent trace lengths");
            for (s, &v) in t.iter().enumerate() {
                st[s] += v;
                stt[s] += v * v;
            }
        }
        TraceSums {
            n: upto as f64,
            st,
            stt,
        }
    }
}

/// Hypothesis moments of one key guess: Σh, Σh², and Σh·t per sample.
struct KeySums {
    samples: usize,
    sh: f64,
    shh: f64,
    sht: Vec<f64>,
}

impl KeySums {
    fn new(samples: usize) -> Self {
        KeySums {
            samples,
            sh: 0.0,
            shh: 0.0,
            sht: vec![0.0; samples],
        }
    }

    fn add(&mut self, trace: &[f64], h: f64) {
        debug_assert_eq!(trace.len(), self.samples);
        self.sh += h;
        self.shh += h * h;
        for (acc, &t) in self.sht.iter_mut().zip(trace) {
            *acc += h * t;
        }
    }

    /// Peak |Pearson r| over all samples against the given trace
    /// moments.
    fn peak(&self, ts: &TraceSums) -> f64 {
        let n = ts.n;
        let var_h = self.shh - self.sh * self.sh / n;
        let mut peak = 0.0f64;
        if var_h > 1e-12 {
            for s in 0..self.samples {
                let var_t = ts.stt[s] - ts.st[s] * ts.st[s] / n;
                if var_t <= 1e-12 {
                    continue;
                }
                let cov = self.sht[s] - self.sh * ts.st[s] / n;
                let r = cov / (var_h * var_t).sqrt();
                peak = peak.max(r.abs());
            }
        }
        peak
    }
}

/// Best key and margin over a full set of guesses (an empty guess set
/// degenerates to key 0 with zero margin rather than panicking).
fn finalize(guesses: Vec<CpaKeyResult>) -> CpaResult {
    let (best_key, best_corr) = guesses
        .iter()
        .max_by(|a, b| a.peak_corr.total_cmp(&b.peak_corr))
        .map_or((0, 0.0), |g| (g.key, g.peak_corr));
    let second = guesses
        .iter()
        .filter(|g| g.key != best_key)
        .map(|g| g.peak_corr)
        .fold(0.0f64, f64::max);
    CpaResult {
        guesses,
        best_key,
        margin: if second > 0.0 {
            best_corr / second
        } else {
            f64::INFINITY
        },
    }
}

/// Runs a CPA: `model(key, trace_index)` is the hypothetical power
/// (e.g. a Hamming weight) predicted for that trace under the key
/// guess.
///
/// # Panics
///
/// Panics if `n_keys == 0` or traces have inconsistent lengths.
pub fn cpa_attack(
    traces: &[Vec<f64>],
    n_keys: usize,
    model: impl Fn(u8, usize) -> f64 + Sync,
) -> CpaResult {
    assert!(n_keys > 0);
    let _span = secflow_obs::span("dpa.cpa");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let samples = traces.first().map_or(0, Vec::len);
    let ts = TraceSums::over(traces, samples, traces.len());
    let guesses = par_map_range(n_keys, |k| {
        let mut sums = KeySums::new(samples);
        for (i, t) in traces.iter().enumerate() {
            sums.add(t, model(k as u8, i));
        }
        CpaKeyResult {
            key: k as u8,
            peak_corr: sums.peak(&ts),
        }
    });
    finalize(guesses)
}

/// One point of a CPA MTD scan.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaMtdPoint {
    /// Traces used.
    pub traces: usize,
    /// Correct key is the unique best guess.
    pub disclosed: bool,
    /// Peak |r| of the correct key.
    pub correct_corr: f64,
    /// Best peak |r| among wrong keys.
    pub best_wrong_corr: f64,
}

/// CPA disclosure as a function of trace count; same semantics as
/// [`crate::attack::mtd_scan`].
pub fn cpa_mtd_scan(
    traces: &[Vec<f64>],
    n_keys: usize,
    correct_key: u8,
    step: usize,
    model: impl Fn(u8, usize) -> f64 + Sync,
) -> (Vec<CpaMtdPoint>, Option<usize>) {
    assert!(step > 0 && n_keys > 0);
    let _span = secflow_obs::span("dpa.cpa_mtd_scan");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let samples = traces.first().map_or(0, Vec::len);
    let checkpoints: Vec<usize> = (1..=traces.len())
        .filter(|&n| n % step == 0 || n == traces.len())
        .collect();
    // Trace-only moments snapshotted serially at every checkpoint,
    // then shared by all key guesses.
    let trace_snaps: Vec<TraceSums> = {
        let mut snaps = Vec::with_capacity(checkpoints.len());
        let mut running = TraceSums {
            n: 0.0,
            st: vec![0.0; samples],
            stt: vec![0.0; samples],
        };
        let mut next = 0;
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.len(), samples, "inconsistent trace lengths");
            for (s, &v) in t.iter().enumerate() {
                running.st[s] += v;
                running.stt[s] += v * v;
            }
            running.n += 1.0;
            if next < checkpoints.len() && checkpoints[next] == i + 1 {
                snaps.push(TraceSums {
                    n: running.n,
                    st: running.st.clone(),
                    stt: running.stt.clone(),
                });
                next += 1;
            }
        }
        snaps
    };
    let corrs_per_key: Vec<Vec<f64>> = par_map_range(n_keys, |k| {
        let mut sums = KeySums::new(samples);
        let mut corrs = Vec::with_capacity(checkpoints.len());
        let mut next = 0;
        for (i, t) in traces.iter().enumerate() {
            sums.add(t, model(k as u8, i));
            if next < checkpoints.len() && checkpoints[next] == i + 1 {
                corrs.push(sums.peak(&trace_snaps[next]));
                next += 1;
            }
        }
        corrs
    });
    let mut points = Vec::with_capacity(checkpoints.len());
    for (c, &n) in checkpoints.iter().enumerate() {
        let correct = corrs_per_key[correct_key as usize][c];
        let wrong = corrs_per_key
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != correct_key as usize)
            .map(|(_, corrs)| corrs[c])
            .fold(0.0f64, f64::max);
        points.push(CpaMtdPoint {
            traces: n,
            // Strictly beating every wrong key implies being the
            // argmax, matching the old condition.
            disclosed: correct > wrong,
            correct_corr: correct,
            best_wrong_corr: wrong,
        });
    }
    let mut mtd = None;
    for p in points.iter().rev() {
        if p.disclosed {
            mtd = Some(p.traces);
        } else {
            break;
        }
    }
    (points, mtd)
}

/// The Hamming-weight CPA model for the Fig. 4 module: the weight of
/// the predicted S-box output `S1(CR ⊕ K)`.
pub fn sbox_hamming_model(key: u8, cl: u8, cr: u8) -> f64 {
    let _ = cl;
    f64::from(secflow_crypto::des::sbox(0, cr ^ key).count_ones())
}

/// The Hamming-distance CPA model: CMOS power follows *transitions*,
/// so the right hypothesis for consecutive encryptions is the distance
/// between the S-box outputs of this and the previous cycle,
/// `HW(S1(CRᵢ ⊕ K) ⊕ S1(CRᵢ₋₁ ⊕ K))`.
pub fn sbox_hd_model(key: u8, cr_prev: u8, cr: u8) -> f64 {
    let a = secflow_crypto::des::sbox(0, cr ^ key);
    let b = secflow_crypto::des::sbox(0, cr_prev ^ key);
    f64::from((a ^ b).count_ones())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Traces whose sample 2 carries the Hamming weight of the S-box
    /// output under key 21.
    fn leaky_traces(n: usize, leak: f64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut crs = Vec::new();
        let mut state = 7u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let cr = ((state >> 33) & 0x3f) as u8;
            crs.push(cr);
            let hw = f64::from(secflow_crypto::des::sbox(0, cr ^ 21).count_ones());
            let mut t = vec![1.0; 6];
            t[2] += leak * hw;
            t[4] += ((state >> 11) & 15) as f64 * 0.02; // pseudo-noise
            traces.push(t);
        }
        (traces, crs)
    }

    #[test]
    fn cpa_recovers_key() {
        let (traces, crs) = leaky_traces(200, 0.3);
        let r = cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i]));
        assert_eq!(r.best_key, 21);
        assert!(r.margin > 1.3, "margin {}", r.margin);
        assert!(r.guesses[21].peak_corr > 0.9);
    }

    #[test]
    fn cpa_fails_without_leak() {
        let (traces, crs) = leaky_traces(200, 0.0);
        let r = cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i]));
        assert!(r.guesses[21].peak_corr < 0.5);
        assert!(r.margin < 2.0);
    }

    #[test]
    fn cpa_mtd_scan_discloses_early() {
        let (traces, crs) = leaky_traces(400, 0.3);
        let (points, mtd) =
            cpa_mtd_scan(&traces, 64, 21, 40, |k, i| sbox_hamming_model(k, 0, crs[i]));
        let m = mtd.expect("disclosed");
        assert!(m <= 200, "CPA too slow: {m}");
        assert!(points.iter().any(|p| p.disclosed));
    }

    #[test]
    fn constant_model_yields_zero_correlation() {
        let (traces, _) = leaky_traces(50, 0.3);
        let r = cpa_attack(&traces, 4, |_, _| 1.0);
        assert!(r.guesses.iter().all(|g| g.peak_corr == 0.0));
    }
}
