//! Correlation Power Analysis — the stronger attacker of the paper's
//! §3 discussion ("the more powerful an attacker is, the better his
//! results may be").
//!
//! Instead of Kocher's single-bit partitioning, CPA correlates the
//! trace at every sample with a multi-bit power *model* (here the
//! Hamming weight of the predicted S-box output) across all traces,
//! per key guess. It typically needs fewer traces than single-bit DPA
//! against unprotected implementations, making it the natural
//! escalation for evaluating the secure flow's margin.
//!
//! The batch entry points are thin wrappers over
//! [`crate::streaming::CpaStream`]: the trace-only moments (Σt, Σt²)
//! advance serially once, each guess accumulates its hypothesis
//! moments independently in input order (parallel over guesses via
//! `secflow-exec`), and MTD checkpoints read the single running
//! moment accumulator in place — no per-checkpoint snapshots —
//! byte-identical at any thread count.

use crate::error::AnalysisError;
use crate::streaming::CpaStream;

/// Per-key-guess CPA statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaKeyResult {
    /// The key guess.
    pub key: u8,
    /// Maximum absolute Pearson correlation over all samples.
    pub peak_corr: f64,
}

/// The outcome of a CPA over all key guesses.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaResult {
    /// Statistics per key guess, indexed by key.
    pub guesses: Vec<CpaKeyResult>,
    /// The key with the largest |correlation| peak.
    pub best_key: u8,
    /// Best peak divided by the second-best peak.
    pub margin: f64,
}

/// Best key and margin over a full set of guesses (an empty guess set
/// degenerates to key 0 with zero margin rather than panicking).
pub(crate) fn finalize(guesses: Vec<CpaKeyResult>) -> CpaResult {
    let (best_key, best_corr) = guesses
        .iter()
        .max_by(|a, b| a.peak_corr.total_cmp(&b.peak_corr))
        .map_or((0, 0.0), |g| (g.key, g.peak_corr));
    let second = guesses
        .iter()
        .filter(|g| g.key != best_key)
        .map(|g| g.peak_corr)
        .fold(0.0f64, f64::max);
    CpaResult {
        guesses,
        best_key,
        margin: if second > 0.0 {
            best_corr / second
        } else {
            f64::INFINITY
        },
    }
}

/// Runs a CPA: `model(key, trace_index)` is the hypothetical power
/// (e.g. a Hamming weight) predicted for that trace under the key
/// guess.
///
/// # Errors
///
/// [`AnalysisError::NoKeyGuesses`] if `n_keys == 0`;
/// [`AnalysisError::InconsistentTraceLength`] if traces have unequal
/// lengths.
pub fn cpa_attack(
    traces: &[Vec<f64>],
    n_keys: usize,
    model: impl Fn(u8, usize) -> f64 + Sync,
) -> Result<CpaResult, AnalysisError> {
    let _span = secflow_obs::span("dpa.cpa");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let mut stream = CpaStream::new(n_keys)?;
    stream.push_block(traces, |k, i| model(k, i))?;
    Ok(stream.result())
}

/// One point of a CPA MTD scan.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaMtdPoint {
    /// Traces used.
    pub traces: usize,
    /// Correct key is the unique best guess.
    pub disclosed: bool,
    /// Peak |r| of the correct key.
    pub correct_corr: f64,
    /// Best peak |r| among wrong keys.
    pub best_wrong_corr: f64,
}

/// CPA disclosure as a function of trace count; same semantics as
/// [`crate::attack::mtd_scan`].
///
/// # Errors
///
/// [`AnalysisError::ZeroStep`] if `step == 0`, plus the
/// [`cpa_attack`] input errors.
pub fn cpa_mtd_scan(
    traces: &[Vec<f64>],
    n_keys: usize,
    correct_key: u8,
    step: usize,
    model: impl Fn(u8, usize) -> f64 + Sync,
) -> Result<(Vec<CpaMtdPoint>, Option<usize>), AnalysisError> {
    let _span = secflow_obs::span("dpa.cpa_mtd_scan");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let mut stream = CpaStream::with_step(n_keys, step)?;
    stream.push_block(traces, |k, i| model(k, i))?;
    Ok(stream.mtd(correct_key))
}

/// The Hamming-weight CPA model for the Fig. 4 module: the weight of
/// the predicted S-box output `S1(CR ⊕ K)`.
pub fn sbox_hamming_model(key: u8, cl: u8, cr: u8) -> f64 {
    let _ = cl;
    f64::from(secflow_crypto::des::sbox(0, cr ^ key).count_ones())
}

/// The Hamming-distance CPA model: CMOS power follows *transitions*,
/// so the right hypothesis for consecutive encryptions is the distance
/// between the S-box outputs of this and the previous cycle,
/// `HW(S1(CRᵢ ⊕ K) ⊕ S1(CRᵢ₋₁ ⊕ K))`.
pub fn sbox_hd_model(key: u8, cr_prev: u8, cr: u8) -> f64 {
    let a = secflow_crypto::des::sbox(0, cr ^ key);
    let b = secflow_crypto::des::sbox(0, cr_prev ^ key);
    f64::from((a ^ b).count_ones())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Traces whose sample 2 carries the Hamming weight of the S-box
    /// output under key 21.
    fn leaky_traces(n: usize, leak: f64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut crs = Vec::new();
        let mut state = 7u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let cr = ((state >> 33) & 0x3f) as u8;
            crs.push(cr);
            let hw = f64::from(secflow_crypto::des::sbox(0, cr ^ 21).count_ones());
            let mut t = vec![1.0; 6];
            t[2] += leak * hw;
            t[4] += ((state >> 11) & 15) as f64 * 0.02; // pseudo-noise
            traces.push(t);
        }
        (traces, crs)
    }

    #[test]
    fn cpa_recovers_key() {
        let (traces, crs) = leaky_traces(200, 0.3);
        let r = cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i])).unwrap();
        assert_eq!(r.best_key, 21);
        assert!(r.margin > 1.3, "margin {}", r.margin);
        assert!(r.guesses[21].peak_corr > 0.9);
    }

    #[test]
    fn cpa_fails_without_leak() {
        let (traces, crs) = leaky_traces(200, 0.0);
        let r = cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, crs[i])).unwrap();
        assert!(r.guesses[21].peak_corr < 0.5);
        assert!(r.margin < 2.0);
    }

    #[test]
    fn cpa_mtd_scan_discloses_early() {
        let (traces, crs) = leaky_traces(400, 0.3);
        let (points, mtd) = cpa_mtd_scan(&traces, 64, 21, 40, |k, i| {
            sbox_hamming_model(k, 0, crs[i])
        })
        .unwrap();
        let m = mtd.expect("disclosed");
        assert!(m <= 200, "CPA too slow: {m}");
        assert!(points.iter().any(|p| p.disclosed));
    }

    #[test]
    fn constant_model_yields_zero_correlation() {
        let (traces, _) = leaky_traces(50, 0.3);
        let r = cpa_attack(&traces, 4, |_, _| 1.0).unwrap();
        assert!(r.guesses.iter().all(|g| g.peak_corr == 0.0));
    }

    #[test]
    fn bad_input_yields_typed_errors() {
        let (traces, crs) = leaky_traces(10, 0.3);
        assert_eq!(
            cpa_attack(&traces, 0, |k, i| sbox_hamming_model(k, 0, crs[i])).err(),
            Some(AnalysisError::NoKeyGuesses)
        );
        assert_eq!(
            cpa_mtd_scan(&traces, 64, 21, 0, |k, i| sbox_hamming_model(k, 0, crs[i])).err(),
            Some(AnalysisError::ZeroStep)
        );
        let mut ragged = traces.clone();
        ragged[7] = vec![0.0; 2];
        assert_eq!(
            cpa_attack(&ragged, 64, |k, i| sbox_hamming_model(k, 0, crs[i])).err(),
            Some(AnalysisError::InconsistentTraceLength {
                index: 7,
                got: 2,
                expect: 6
            })
        );
    }
}
