//! One-pass streaming accumulators for the DPA/CPA/MTD statistics.
//!
//! The batch attacks in [`crate::attack`] and [`crate::cpa`] walk a
//! materialized `&[Vec<f64>]` once per key guess. These streams keep
//! the same per-guess partition sums and moment sums, but accept the
//! traces block by block, so a campaign can feed simulator output
//! straight into the statistics and never hold more than one block of
//! traces at a time: O(points × guesses) state, not O(traces × points).
//!
//! # Determinism contract
//!
//! The batch attacks parallelize over *key guesses*; each guess
//! left-folds the traces serially in input order. A stream replays
//! exactly that fold — per guess, `add` runs over the same traces in
//! the same order regardless of how the caller chunks them into
//! blocks — so every statistic is byte-identical (`f64::to_bits`) to
//! the batch path at any thread count and any block size. Guesses are
//! sharded across workers with [`secflow_exec::par_for_each_mut`]; no
//! floating-point value crosses a worker boundary mid-fold, so there
//! is nothing to merge and nothing to reorder. The shared CPA trace
//! moments advance serially on the caller thread, bracketed at
//! checkpoint boundaries, before any per-guess work touches them.
//!
//! MTD checkpoints are incremental snapshots: peaks are evaluated
//! against the *running* accumulator state at every multiple of
//! `step` (plus a final point at the end of the stream), never by
//! cloning sums or re-scanning earlier traces.

use crate::attack::{DpaResult, KeyGuessResult, MtdPoint, MtdScan};
use crate::cpa::{CpaKeyResult, CpaMtdPoint, CpaResult};
use crate::error::AnalysisError;
use secflow_exec::par_for_each_mut;

/// Partition sums of one DPA key guess: sums of traces with selection
/// bit 1 / 0, walked in input order.
pub(crate) struct DpaKeySums {
    key: u8,
    samples: usize,
    sum1: Vec<f64>,
    sum0: Vec<f64>,
    n1: usize,
    n0: usize,
}

impl DpaKeySums {
    pub(crate) fn new(key: u8, samples: usize) -> Self {
        DpaKeySums {
            key,
            samples,
            sum1: vec![0.0; samples],
            sum0: vec![0.0; samples],
            n1: 0,
            n0: 0,
        }
    }

    pub(crate) fn add(&mut self, trace: &[f64], bit: bool) {
        debug_assert_eq!(trace.len(), self.samples);
        if bit {
            for (a, &t) in self.sum1.iter_mut().zip(trace) {
                *a += t;
            }
            self.n1 += 1;
        } else {
            for (a, &t) in self.sum0.iter_mut().zip(trace) {
                *a += t;
            }
            self.n0 += 1;
        }
    }

    /// Statistics of the differential trace in the current state.
    pub(crate) fn guess(&self) -> KeyGuessResult {
        let (mut peak, mut lo, mut hi) = (0.0f64, f64::INFINITY, f64::NEG_INFINITY);
        if self.n1 > 0 && self.n0 > 0 {
            for s in 0..self.samples {
                let d = self.sum1[s] / self.n1 as f64 - self.sum0[s] / self.n0 as f64;
                peak = peak.max(d.abs());
                lo = lo.min(d);
                hi = hi.max(d);
            }
        } else {
            lo = 0.0;
            hi = 0.0;
        }
        KeyGuessResult {
            key: self.key,
            peak,
            p2p: hi - lo,
        }
    }
}

/// Trace-only moments Σt, Σt² per sample, shared across CPA key
/// guesses. Advanced serially in input order; integer-valued `n`
/// increments stay exact (traces ≪ 2⁵³).
pub(crate) struct TraceSums {
    pub(crate) n: f64,
    pub(crate) st: Vec<f64>,
    pub(crate) stt: Vec<f64>,
}

impl TraceSums {
    pub(crate) fn new(samples: usize) -> Self {
        TraceSums {
            n: 0.0,
            st: vec![0.0; samples],
            stt: vec![0.0; samples],
        }
    }

    pub(crate) fn add(&mut self, trace: &[f64]) {
        for (s, &v) in trace.iter().enumerate() {
            self.st[s] += v;
            self.stt[s] += v * v;
        }
        self.n += 1.0;
    }
}

/// Hypothesis moments of one CPA key guess: Σh, Σh², and Σh·t per
/// sample.
pub(crate) struct CpaKeySums {
    samples: usize,
    sh: f64,
    shh: f64,
    sht: Vec<f64>,
}

impl CpaKeySums {
    pub(crate) fn new(samples: usize) -> Self {
        CpaKeySums {
            samples,
            sh: 0.0,
            shh: 0.0,
            sht: vec![0.0; samples],
        }
    }

    pub(crate) fn add(&mut self, trace: &[f64], h: f64) {
        debug_assert_eq!(trace.len(), self.samples);
        self.sh += h;
        self.shh += h * h;
        for (acc, &t) in self.sht.iter_mut().zip(trace) {
            *acc += h * t;
        }
    }

    /// Peak |Pearson r| over all samples against the given trace
    /// moments.
    pub(crate) fn peak(&self, ts: &TraceSums) -> f64 {
        let n = ts.n;
        let var_h = self.shh - self.sh * self.sh / n;
        let mut peak = 0.0f64;
        if var_h > 1e-12 {
            for s in 0..self.samples {
                let var_t = ts.stt[s] - ts.st[s] * ts.st[s] / n;
                if var_t <= 1e-12 {
                    continue;
                }
                let cov = self.sht[s] - self.sh * ts.st[s] / n;
                let r = cov / (var_h * var_t).sqrt();
                peak = peak.max(r.abs());
            }
        }
        peak
    }
}

struct DpaLane {
    sums: DpaKeySums,
    /// Differential peak recorded at each checkpoint, in order.
    peaks: Vec<f64>,
}

/// A streaming DPA (and, with [`DpaStream::with_step`], MTD scan).
///
/// Push traces in blocks of any size; read the attack result or the
/// MTD scan at any point. State is O(samples × n_keys) plus one peak
/// per key per checkpoint.
pub struct DpaStream {
    n_keys: usize,
    step: Option<usize>,
    n: usize,
    samples: Option<usize>,
    lanes: Vec<DpaLane>,
    checkpoint_counts: Vec<usize>,
}

impl DpaStream {
    /// A stream without MTD checkpoints (plain attack statistics).
    pub fn new(n_keys: usize) -> Result<Self, AnalysisError> {
        if n_keys == 0 {
            return Err(AnalysisError::NoKeyGuesses);
        }
        Ok(DpaStream {
            n_keys,
            step: None,
            n: 0,
            samples: None,
            lanes: Vec::new(),
            checkpoint_counts: Vec::new(),
        })
    }

    /// A stream that records an MTD checkpoint every `step` traces
    /// (plus a final one at the end of the stream, matching the batch
    /// scan's checkpoint grid).
    pub fn with_step(n_keys: usize, step: usize) -> Result<Self, AnalysisError> {
        if step == 0 {
            return Err(AnalysisError::ZeroStep);
        }
        let mut s = DpaStream::new(n_keys)?;
        s.step = Some(step);
        Ok(s)
    }

    /// Traces consumed so far.
    pub fn traces_seen(&self) -> usize {
        self.n
    }

    /// Validates a block and establishes `samples`/lanes from the
    /// first trace ever seen. On error the stream is unchanged.
    fn admit<T: AsRef<[f64]>>(&mut self, traces: &[T]) -> Result<(), AnalysisError> {
        let first = match traces.first() {
            Some(t) => t.as_ref().len(),
            None => return Ok(()),
        };
        let expect = self.samples.unwrap_or(first);
        for (j, t) in traces.iter().enumerate() {
            let got = t.as_ref().len();
            if got != expect {
                return Err(AnalysisError::InconsistentTraceLength {
                    index: self.n + j,
                    got,
                    expect,
                });
            }
        }
        if self.samples.is_none() {
            self.samples = Some(expect);
            self.lanes = (0..self.n_keys)
                .map(|k| DpaLane {
                    sums: DpaKeySums::new(k as u8, expect),
                    peaks: Vec::new(),
                })
                .collect();
        }
        Ok(())
    }

    /// Folds a block of traces into every key guess's partition sums.
    ///
    /// `select(key, j)` is the predicted selection bit for the block's
    /// `j`-th trace (block-local index) under that key guess.
    pub fn push_block<T: AsRef<[f64]> + Sync>(
        &mut self,
        traces: &[T],
        select: impl Fn(u8, usize) -> bool + Sync,
    ) -> Result<(), AnalysisError> {
        self.admit(traces)?;
        let base = self.n;
        let step = self.step;
        par_for_each_mut(&mut self.lanes, |k, lane| {
            for (j, t) in traces.iter().enumerate() {
                lane.sums.add(t.as_ref(), select(k as u8, j));
                if let Some(step) = step {
                    if (base + j + 1) % step == 0 {
                        lane.peaks.push(lane.sums.guess().peak);
                    }
                }
            }
        });
        let mut checkpoints = 0u64;
        if let Some(step) = step {
            for j in 0..traces.len() {
                if (base + j + 1) % step == 0 {
                    self.checkpoint_counts.push(base + j + 1);
                    checkpoints += 1;
                }
            }
        }
        self.n += traces.len();
        secflow_obs::add(secflow_obs::Counter::DpaStreamBlocks, 1);
        secflow_obs::add(secflow_obs::Counter::DpaStreamTraces, traces.len() as u64);
        secflow_obs::add(secflow_obs::Counter::DpaStreamCheckpoints, checkpoints);
        Ok(())
    }

    /// Attack statistics over everything streamed so far. Bitwise
    /// equal to [`crate::attack::dpa_attack`] over the same traces.
    pub fn result(&self) -> DpaResult {
        let guesses = if self.lanes.is_empty() {
            // No traces yet: the batch path's zero-sample, zero-count
            // sums degenerate to peak 0 / p2p 0 per key.
            (0..self.n_keys)
                .map(|k| KeyGuessResult {
                    key: k as u8,
                    peak: 0.0,
                    p2p: 0.0,
                })
                .collect()
        } else {
            self.lanes.iter().map(|l| l.sums.guess()).collect()
        };
        crate::attack::finalize(guesses)
    }

    /// The MTD scan over everything streamed so far. Records the
    /// final checkpoint (at the current trace count) on first call;
    /// idempotent afterwards. Bitwise equal to
    /// [`crate::attack::mtd_scan`] over the same traces and step.
    pub fn mtd(&mut self, correct_key: u8) -> MtdScan {
        if self.n > 0 && self.checkpoint_counts.last() != Some(&self.n) {
            for lane in &mut self.lanes {
                lane.peaks.push(lane.sums.guess().peak);
            }
            self.checkpoint_counts.push(self.n);
            secflow_obs::add(secflow_obs::Counter::DpaStreamCheckpoints, 1);
        }
        let mut points = Vec::with_capacity(self.checkpoint_counts.len());
        for (c, &n) in self.checkpoint_counts.iter().enumerate() {
            let correct_peak = self.lanes[correct_key as usize].peaks[c];
            let best_wrong_peak = self
                .lanes
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != correct_key as usize)
                .map(|(_, l)| l.peaks[c])
                .fold(0.0f64, f64::max);
            points.push(MtdPoint {
                traces: n,
                disclosed: correct_peak > best_wrong_peak,
                correct_peak,
                best_wrong_peak,
            });
        }
        let mut mtd = None;
        for p in points.iter().rev() {
            if p.disclosed {
                mtd = Some(p.traces);
            } else {
                break;
            }
        }
        MtdScan { points, mtd }
    }
}

struct CpaLane {
    sums: CpaKeySums,
    /// Peak |r| recorded at each checkpoint, in order.
    corrs: Vec<f64>,
}

/// A streaming CPA (and, with [`CpaStream::with_step`], MTD scan).
///
/// The shared trace moments are one running accumulator, advanced
/// serially and read in place at every checkpoint — no per-checkpoint
/// snapshots (O(points) transient memory however dense the grid).
pub struct CpaStream {
    n_keys: usize,
    step: Option<usize>,
    n: usize,
    samples: Option<usize>,
    ts: TraceSums,
    lanes: Vec<CpaLane>,
    checkpoint_counts: Vec<usize>,
}

impl CpaStream {
    /// A stream without MTD checkpoints (plain attack statistics).
    pub fn new(n_keys: usize) -> Result<Self, AnalysisError> {
        if n_keys == 0 {
            return Err(AnalysisError::NoKeyGuesses);
        }
        Ok(CpaStream {
            n_keys,
            step: None,
            n: 0,
            samples: None,
            ts: TraceSums::new(0),
            lanes: Vec::new(),
            checkpoint_counts: Vec::new(),
        })
    }

    /// A stream that records an MTD checkpoint every `step` traces
    /// (plus a final one at the end of the stream).
    pub fn with_step(n_keys: usize, step: usize) -> Result<Self, AnalysisError> {
        if step == 0 {
            return Err(AnalysisError::ZeroStep);
        }
        let mut s = CpaStream::new(n_keys)?;
        s.step = Some(step);
        Ok(s)
    }

    /// Traces consumed so far.
    pub fn traces_seen(&self) -> usize {
        self.n
    }

    fn admit<T: AsRef<[f64]>>(&mut self, traces: &[T]) -> Result<(), AnalysisError> {
        let first = match traces.first() {
            Some(t) => t.as_ref().len(),
            None => return Ok(()),
        };
        let expect = self.samples.unwrap_or(first);
        for (j, t) in traces.iter().enumerate() {
            let got = t.as_ref().len();
            if got != expect {
                return Err(AnalysisError::InconsistentTraceLength {
                    index: self.n + j,
                    got,
                    expect,
                });
            }
        }
        if self.samples.is_none() {
            self.samples = Some(expect);
            self.ts = TraceSums::new(expect);
            self.lanes = (0..self.n_keys)
                .map(|_| CpaLane {
                    sums: CpaKeySums::new(expect),
                    corrs: Vec::new(),
                })
                .collect();
        }
        Ok(())
    }

    /// Folds a block of traces into the shared trace moments and every
    /// key guess's hypothesis moments.
    ///
    /// `model(key, j)` is the hypothetical power for the block's
    /// `j`-th trace (block-local index) under that key guess. Blocks
    /// are split internally at checkpoint boundaries so the shared
    /// moments are read only when they hold exactly the checkpoint's
    /// trace count.
    pub fn push_block<T: AsRef<[f64]> + Sync>(
        &mut self,
        traces: &[T],
        model: impl Fn(u8, usize) -> f64 + Sync,
    ) -> Result<(), AnalysisError> {
        self.admit(traces)?;
        let base = self.n;
        let m = traces.len();
        let mut checkpoints = 0u64;
        let mut start = 0;
        while start < m {
            let end = match self.step {
                // Next multiple of `step` past `base + start`, clamped
                // to the block.
                Some(step) => ((base + start) / step * step + step - base).min(m),
                None => m,
            };
            // Shared moments advance serially in input order before
            // any per-guess work reads them — the batch fold's order.
            for t in &traces[start..end] {
                self.ts.add(t.as_ref());
            }
            let at_checkpoint = self.step.is_some_and(|s| (base + end) % s == 0);
            let seg = &traces[start..end];
            let ts = &self.ts;
            par_for_each_mut(&mut self.lanes, |k, lane| {
                for (j, t) in seg.iter().enumerate() {
                    lane.sums.add(t.as_ref(), model(k as u8, start + j));
                }
                if at_checkpoint {
                    lane.corrs.push(lane.sums.peak(ts));
                }
            });
            if at_checkpoint {
                self.checkpoint_counts.push(base + end);
                checkpoints += 1;
            }
            start = end;
        }
        self.n += m;
        secflow_obs::add(secflow_obs::Counter::DpaStreamBlocks, 1);
        secflow_obs::add(secflow_obs::Counter::DpaStreamTraces, m as u64);
        secflow_obs::add(secflow_obs::Counter::DpaStreamCheckpoints, checkpoints);
        Ok(())
    }

    /// Attack statistics over everything streamed so far. Bitwise
    /// equal to [`crate::cpa::cpa_attack`] over the same traces.
    pub fn result(&self) -> CpaResult {
        let guesses = if self.lanes.is_empty() {
            // No traces: n = 0 makes every variance NaN, so the batch
            // path reports zero correlation for every key.
            (0..self.n_keys)
                .map(|k| CpaKeyResult {
                    key: k as u8,
                    peak_corr: 0.0,
                })
                .collect()
        } else {
            self.lanes
                .iter()
                .enumerate()
                .map(|(k, l)| CpaKeyResult {
                    key: k as u8,
                    peak_corr: l.sums.peak(&self.ts),
                })
                .collect()
        };
        crate::cpa::finalize(guesses)
    }

    /// The MTD scan over everything streamed so far; same final-
    /// checkpoint and idempotence behavior as [`DpaStream::mtd`].
    /// Bitwise equal to [`crate::cpa::cpa_mtd_scan`].
    pub fn mtd(&mut self, correct_key: u8) -> (Vec<CpaMtdPoint>, Option<usize>) {
        if self.n > 0 && self.checkpoint_counts.last() != Some(&self.n) {
            let ts = &self.ts;
            for lane in &mut self.lanes {
                lane.corrs.push(lane.sums.peak(ts));
            }
            self.checkpoint_counts.push(self.n);
            secflow_obs::add(secflow_obs::Counter::DpaStreamCheckpoints, 1);
        }
        let mut points = Vec::with_capacity(self.checkpoint_counts.len());
        for (c, &n) in self.checkpoint_counts.iter().enumerate() {
            let correct = self.lanes[correct_key as usize].corrs[c];
            let wrong = self
                .lanes
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != correct_key as usize)
                .map(|(_, l)| l.corrs[c])
                .fold(0.0f64, f64::max);
            points.push(CpaMtdPoint {
                traces: n,
                disclosed: correct > wrong,
                correct_corr: correct,
                best_wrong_corr: wrong,
            });
        }
        let mut mtd = None;
        for p in points.iter().rev() {
            if p.disclosed {
                mtd = Some(p.traces);
            } else {
                break;
            }
        }
        (points, mtd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::dpa_attack;
    use crate::cpa::{cpa_attack, sbox_hamming_model};

    fn traces_and_data(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut data = Vec::new();
        let mut state = 31u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let c = ((state >> 33) & 0x3f) as u8;
            data.push(c);
            let hw = f64::from(secflow_crypto::des::sbox(0, c ^ 9).count_ones());
            let mut t = vec![1.0; 7];
            t[2] += 0.2 * hw;
            t[5] += ((state >> 13) & 7) as f64 * 0.03;
            traces.push(t);
        }
        (traces, data)
    }

    fn sel(key: u8, c: u8) -> bool {
        secflow_crypto::des::sbox(0, (c ^ key) & 63) & 1 == 1
    }

    fn bits(r: &DpaResult) -> Vec<(u64, u64)> {
        r.guesses
            .iter()
            .map(|g| (g.peak.to_bits(), g.p2p.to_bits()))
            .collect()
    }

    #[test]
    fn dpa_stream_matches_batch_across_chunkings() {
        let (traces, data) = traces_and_data(157);
        let batch = dpa_attack(&traces, 16, |k, i| sel(k, data[i])).unwrap();
        for chunk in [1, 63, 64, 65, 157] {
            let mut s = DpaStream::new(16).unwrap();
            for block in traces.chunks(chunk) {
                let base = s.traces_seen();
                s.push_block(block, |k, j| sel(k, data[base + j])).unwrap();
            }
            let got = s.result();
            assert_eq!(bits(&got), bits(&batch), "chunk {chunk}");
            assert_eq!(got.best_key, batch.best_key);
            assert_eq!(got.margin.to_bits(), batch.margin.to_bits());
        }
    }

    #[test]
    fn dpa_stream_mtd_matches_batch_scan() {
        let (traces, data) = traces_and_data(130);
        let batch = crate::attack::mtd_scan(&traces, 16, 9, 25, |k, i| sel(k, data[i])).unwrap();
        for chunk in [1, 63, 64, 65] {
            let mut s = DpaStream::with_step(16, 25).unwrap();
            for block in traces.chunks(chunk) {
                let base = s.traces_seen();
                s.push_block(block, |k, j| sel(k, data[base + j])).unwrap();
            }
            let scan = s.mtd(9);
            assert_eq!(scan, batch, "chunk {chunk}");
            // Idempotent: a second read returns the same scan.
            assert_eq!(s.mtd(9), batch);
        }
    }

    #[test]
    fn cpa_stream_matches_batch_across_chunkings() {
        let (traces, data) = traces_and_data(149);
        let batch = cpa_attack(&traces, 64, |k, i| sbox_hamming_model(k, 0, data[i])).unwrap();
        for chunk in [1, 63, 64, 65, 149] {
            let mut s = CpaStream::new(64).unwrap();
            for block in traces.chunks(chunk) {
                let base = s.traces_seen();
                s.push_block(block, |k, j| sbox_hamming_model(k, 0, data[base + j]))
                    .unwrap();
            }
            let got = s.result();
            let a: Vec<u64> = got.guesses.iter().map(|g| g.peak_corr.to_bits()).collect();
            let b: Vec<u64> = batch
                .guesses
                .iter()
                .map(|g| g.peak_corr.to_bits())
                .collect();
            assert_eq!(a, b, "chunk {chunk}");
            assert_eq!(got.best_key, batch.best_key);
        }
    }

    #[test]
    fn cpa_stream_mtd_matches_batch_scan() {
        let (traces, data) = traces_and_data(123);
        let (bpoints, bmtd) =
            crate::cpa::cpa_mtd_scan(&traces, 64, 9, 30, |k, i| sbox_hamming_model(k, 0, data[i]))
                .unwrap();
        for chunk in [1, 64, 65] {
            let mut s = CpaStream::with_step(64, 30).unwrap();
            for block in traces.chunks(chunk) {
                let base = s.traces_seen();
                s.push_block(block, |k, j| sbox_hamming_model(k, 0, data[base + j]))
                    .unwrap();
            }
            let (points, mtd) = s.mtd(9);
            assert_eq!(points, bpoints, "chunk {chunk}");
            assert_eq!(mtd, bmtd);
        }
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert_eq!(
            DpaStream::new(0).err(),
            Some(AnalysisError::NoKeyGuesses)
        );
        assert_eq!(
            DpaStream::with_step(16, 0).err(),
            Some(AnalysisError::ZeroStep)
        );
        assert_eq!(CpaStream::new(0).err(), Some(AnalysisError::NoKeyGuesses));
        assert_eq!(
            CpaStream::with_step(64, 0).err(),
            Some(AnalysisError::ZeroStep)
        );
    }

    #[test]
    fn ragged_trace_is_reported_with_global_index() {
        let mut s = DpaStream::new(4).unwrap();
        s.push_block(&[vec![1.0; 5], vec![2.0; 5]], |_, _| true)
            .unwrap();
        let err = s
            .push_block(&[vec![3.0; 5], vec![4.0; 6]], |_, _| true)
            .unwrap_err();
        assert_eq!(
            err,
            AnalysisError::InconsistentTraceLength {
                index: 3,
                got: 6,
                expect: 5
            }
        );
        // The failed block left the stream untouched.
        assert_eq!(s.traces_seen(), 2);
    }

    #[test]
    fn empty_stream_degenerates_like_batch() {
        let empty: Vec<Vec<f64>> = Vec::new();
        let batch = dpa_attack(&empty, 8, |_, _| true).unwrap();
        let s = DpaStream::new(8).unwrap();
        assert_eq!(s.result(), batch);
        let cbatch = cpa_attack(&empty, 8, |_, _| 1.0).unwrap();
        let cs = CpaStream::new(8).unwrap();
        assert_eq!(cs.result(), cbatch);
        let mut ms = DpaStream::with_step(8, 10).unwrap();
        let scan = ms.mtd(0);
        assert!(scan.points.is_empty() && scan.mtd.is_none());
    }
}
