//! Out-of-core chunked trace store.
//!
//! The streaming campaign engine never needs the full trace matrix in
//! memory, but some workloads still want *replay* — re-attacking a
//! recorded campaign with a different model, or auditing individual
//! traces. The store appends each campaign block as one chunk file
//! and writes a small index at the end, so a 10⁶-trace campaign on
//! disk costs O(block) memory to write and to read back.
//!
//! # On-disk format (version 1)
//!
//! A store is a directory:
//!
//! * `index.bin` — magic `SECFTRC1`, then `u32` samples-per-trace,
//!   `u32` chunk count, then one `u32` trace count per chunk (all
//!   little-endian).
//! * `chunk-NNNNN.bin` — `u32` trace count, then per trace:
//!   `samples × f64` energy samples, `u8` CL, `u8` CR, `f64` total
//!   energy (all little-endian).
//!
//! Chunks replay in index order, so a replayed stream sees traces in
//! the exact order the campaign produced them — the determinism
//! contract of [`crate::streaming`] carries over to replays.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"SECFTRC1";

/// One contiguous block of campaign output: per-trace energy samples,
/// the observed ciphertext bytes `(CL, CR)`, and the total energy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceBlock {
    /// Per-trace energy-per-cycle samples, equal lengths.
    pub traces: Vec<Vec<f64>>,
    /// Per-trace observed ciphertext `(CL, CR)`.
    pub ciphertexts: Vec<(u8, u8)>,
    /// Per-trace total switching energy.
    pub energies: Vec<f64>,
}

impl TraceBlock {
    /// Number of traces in the block.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when the block holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

/// A typed trace-store failure (never a panic: store paths come from
/// user input).
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure on `path` during `op`.
    Io {
        path: PathBuf,
        op: &'static str,
        source: io::Error,
    },
    /// The on-disk bytes do not form a valid store.
    Corrupt { path: PathBuf, detail: String },
    /// An appended block violates the store's shape (ragged trace,
    /// mismatched ciphertext/energy counts).
    Shape { detail: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, source } => {
                write!(f, "trace store: {op} {} failed: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "trace store: {} is corrupt: {detail}", path.display())
            }
            StoreError::Shape { detail } => write!(f, "trace store: bad block shape: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, op: &'static str, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

fn chunk_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("chunk-{i:05}.bin"))
}

/// Append-only writer; call [`StoreWriter::finish`] to commit the
/// index (a store without an index does not open).
pub struct StoreWriter {
    dir: PathBuf,
    samples: usize,
    chunk_counts: Vec<u32>,
}

impl StoreWriter {
    /// Creates (or re-creates) a store directory for traces of
    /// `samples` samples each.
    pub fn create(dir: &Path, samples: usize) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create", e))?;
        // Drop a stale index so a crash mid-write can't pair the old
        // index with new chunks.
        let index = dir.join("index.bin");
        match fs::remove_file(&index) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&index, "remove", e)),
        }
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            samples,
            chunk_counts: Vec::new(),
        })
    }

    /// Appends one block as a new chunk file.
    pub fn append_block(&mut self, block: &TraceBlock) -> Result<(), StoreError> {
        let n = block.traces.len();
        if block.ciphertexts.len() != n || block.energies.len() != n {
            return Err(StoreError::Shape {
                detail: format!(
                    "{n} traces but {} ciphertexts / {} energies",
                    block.ciphertexts.len(),
                    block.energies.len()
                ),
            });
        }
        let mut buf = Vec::with_capacity(4 + n * (self.samples * 8 + 10));
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        for (i, t) in block.traces.iter().enumerate() {
            if t.len() != self.samples {
                return Err(StoreError::Shape {
                    detail: format!(
                        "trace {i} has {} samples, store expects {}",
                        t.len(),
                        self.samples
                    ),
                });
            }
            for &v in t {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            let (cl, cr) = block.ciphertexts[i];
            buf.push(cl);
            buf.push(cr);
            buf.extend_from_slice(&block.energies[i].to_le_bytes());
        }
        let path = chunk_path(&self.dir, self.chunk_counts.len());
        let mut f = fs::File::create(&path).map_err(|e| io_err(&path, "create", e))?;
        f.write_all(&buf).map_err(|e| io_err(&path, "write", e))?;
        self.chunk_counts.push(n as u32);
        Ok(())
    }

    /// Traces appended so far.
    pub fn n_traces(&self) -> usize {
        self.chunk_counts.iter().map(|&c| c as usize).sum()
    }

    /// Writes the index, committing the store.
    pub fn finish(self) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(16 + self.chunk_counts.len() * 4);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.samples as u32).to_le_bytes());
        buf.extend_from_slice(&(self.chunk_counts.len() as u32).to_le_bytes());
        for &c in &self.chunk_counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        let path = self.dir.join("index.bin");
        let mut f = fs::File::create(&path).map_err(|e| io_err(&path, "create", e))?;
        f.write_all(&buf).map_err(|e| io_err(&path, "write", e))?;
        Ok(())
    }
}

/// A committed store opened for replay.
pub struct TraceStore {
    dir: PathBuf,
    samples: usize,
    chunk_counts: Vec<u32>,
}

impl TraceStore {
    /// Opens a store directory written by [`StoreWriter`].
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join("index.bin");
        let mut f = fs::File::open(&path).map_err(|e| io_err(&path, "open", e))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).map_err(|e| io_err(&path, "read", e))?;
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.clone(),
            detail,
        };
        if buf.len() < 16 {
            return Err(corrupt(format!("index is {} bytes, need >= 16", buf.len())));
        }
        if &buf[..8] != MAGIC {
            return Err(corrupt("bad magic (not a secflow trace store)".into()));
        }
        let samples = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        let n_chunks = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
        if buf.len() != 16 + n_chunks * 4 {
            return Err(corrupt(format!(
                "index lists {n_chunks} chunks but is {} bytes",
                buf.len()
            )));
        }
        let chunk_counts = (0..n_chunks)
            .map(|i| {
                let o = 16 + i * 4;
                u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
            })
            .collect();
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            samples,
            chunk_counts,
        })
    }

    /// Samples per trace.
    pub fn samples_per_trace(&self) -> usize {
        self.samples
    }

    /// Total traces across all chunks.
    pub fn n_traces(&self) -> usize {
        self.chunk_counts.iter().map(|&c| c as usize).sum()
    }

    /// Number of chunk files.
    pub fn n_chunks(&self) -> usize {
        self.chunk_counts.len()
    }

    fn read_chunk(&self, i: usize) -> Result<TraceBlock, StoreError> {
        let path = chunk_path(&self.dir, i);
        let mut f = fs::File::open(&path).map_err(|e| io_err(&path, "open", e))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).map_err(|e| io_err(&path, "read", e))?;
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.clone(),
            detail,
        };
        if buf.len() < 4 {
            return Err(corrupt("chunk shorter than its header".into()));
        }
        let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if n != self.chunk_counts[i] as usize {
            return Err(corrupt(format!(
                "chunk holds {n} traces, index says {}",
                self.chunk_counts[i]
            )));
        }
        let rec = self.samples * 8 + 10;
        if buf.len() != 4 + n * rec {
            return Err(corrupt(format!(
                "chunk is {} bytes, expected {} for {n} traces × {} samples",
                buf.len(),
                4 + n * rec,
                self.samples
            )));
        }
        let mut block = TraceBlock {
            traces: Vec::with_capacity(n),
            ciphertexts: Vec::with_capacity(n),
            energies: Vec::with_capacity(n),
        };
        let mut o = 4;
        for _ in 0..n {
            let mut t = Vec::with_capacity(self.samples);
            for _ in 0..self.samples {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[o..o + 8]);
                t.push(f64::from_le_bytes(b));
                o += 8;
            }
            block.traces.push(t);
            block.ciphertexts.push((buf[o], buf[o + 1]));
            o += 2;
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            block.energies.push(f64::from_le_bytes(b));
            o += 8;
        }
        Ok(block)
    }

    /// Replays chunks lazily, in campaign order; holds one chunk in
    /// memory at a time.
    pub fn blocks(&self) -> impl Iterator<Item = Result<TraceBlock, StoreError>> + '_ {
        (0..self.chunk_counts.len()).map(|i| self.read_chunk(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, samples: usize, tag: f64) -> TraceBlock {
        TraceBlock {
            traces: (0..n)
                .map(|i| (0..samples).map(|s| tag + i as f64 + s as f64 * 0.5).collect())
                .collect(),
            ciphertexts: (0..n).map(|i| (i as u8, (i as u8) ^ 0x2a)).collect(),
            energies: (0..n).map(|i| tag * 10.0 + i as f64).collect(),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("secflow-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_preserves_blocks_bitwise() {
        let dir = tmp_dir("roundtrip");
        let blocks = [block(3, 5, 1.0), block(1, 5, 2.0), block(7, 5, 3.0)];
        let mut w = StoreWriter::create(&dir, 5).unwrap();
        for b in &blocks {
            w.append_block(b).unwrap();
        }
        assert_eq!(w.n_traces(), 11);
        w.finish().unwrap();

        let store = TraceStore::open(&dir).unwrap();
        assert_eq!(store.samples_per_trace(), 5);
        assert_eq!(store.n_traces(), 11);
        assert_eq!(store.n_chunks(), 3);
        let got: Vec<TraceBlock> = store.blocks().map(|b| b.unwrap()).collect();
        for (g, want) in got.iter().zip(&blocks) {
            assert_eq!(g, want);
            for (gt, wt) in g.traces.iter().zip(&want.traces) {
                let gb: Vec<u64> = gt.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u64> = wt.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_missing_and_corrupt_stores() {
        let dir = tmp_dir("corrupt");
        assert!(matches!(
            TraceStore::open(&dir),
            Err(StoreError::Io { op: "open", .. })
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("index.bin"), b"NOTASTORE_______").unwrap();
        assert!(matches!(
            TraceStore::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_bad_shapes() {
        let dir = tmp_dir("shape");
        let mut w = StoreWriter::create(&dir, 4).unwrap();
        let mut b = block(2, 4, 1.0);
        b.energies.pop();
        assert!(matches!(
            w.append_block(&b),
            Err(StoreError::Shape { .. })
        ));
        let ragged = block(2, 3, 1.0);
        assert!(matches!(
            w.append_block(&ragged),
            Err(StoreError::Shape { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinished_store_does_not_open() {
        let dir = tmp_dir("unfinished");
        let mut w = StoreWriter::create(&dir, 4).unwrap();
        w.append_block(&block(2, 4, 1.0)).unwrap();
        drop(w); // no finish(): index never written
        assert!(TraceStore::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
