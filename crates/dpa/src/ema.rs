//! §4.2 — Electromagnetic Analysis: a near-field model of the
//! radiation from switching wires.
//!
//! The paper argues that an EM probe millimetres above the die cannot
//! distinguish which of the two differential wires (about 1 µm apart,
//! 10–100 µm long) carried the charge, because the two candidate
//! current paths form antennas whose fields are essentially identical
//! at that distance. This module quantifies the argument with a
//! Biot–Savart model of finite straight segments.

use secflow_netlist::NetId;
use secflow_pnr::{RoutedDesign, LAYER_H};

/// Magnetic field vector at `probe` produced by a finite straight
/// segment from `a` to `b` (µm) carrying current `i` (arbitrary
/// units), by the standard finite-wire Biot–Savart solution. The
/// `μ₀/4π` prefactor is dropped.
pub fn segment_field(a: [f64; 3], b: [f64; 3], i: f64, probe: [f64; 3]) -> [f64; 3] {
    let ab = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let len = (ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2]).sqrt();
    if len == 0.0 {
        return [0.0; 3];
    }
    let u = [ab[0] / len, ab[1] / len, ab[2] / len];
    let ap = [probe[0] - a[0], probe[1] - a[1], probe[2] - a[2]];
    // Distance from the probe to the wire axis.
    let along = ap[0] * u[0] + ap[1] * u[1] + ap[2] * u[2];
    let perp = [
        ap[0] - along * u[0],
        ap[1] - along * u[1],
        ap[2] - along * u[2],
    ];
    let d = (perp[0] * perp[0] + perp[1] * perp[1] + perp[2] * perp[2]).sqrt();
    if d == 0.0 {
        return [0.0; 3];
    }
    // Angles subtended by the two endpoints.
    let l1 = -along;
    let l2 = len - along;
    let sin1 = l1 / (l1 * l1 + d * d).sqrt();
    let sin2 = l2 / (l2 * l2 + d * d).sqrt();
    let mag = i / d * (sin2 - sin1);
    // Direction: u × perp̂.
    let ph = [perp[0] / d, perp[1] / d, perp[2] / d];
    [
        (u[1] * ph[2] - u[2] * ph[1]) * mag,
        (u[2] * ph[0] - u[0] * ph[2]) * mag,
        (u[0] * ph[1] - u[1] * ph[0]) * mag,
    ]
}

fn norm(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// The discrimination ratio an EM attacker faces for one differential
/// pair: the relative field difference between "charge flowed through
/// rail A" and "charge flowed through rail B", for two parallel wires
/// of `length_um` separated by `sep_um`, observed from `dist_um`
/// directly above the pair's midpoint.
///
/// Values near 0 mean the two events are indistinguishable.
pub fn pair_discrimination(length_um: f64, sep_um: f64, dist_um: f64) -> f64 {
    let a0 = [0.0, 0.0, 0.0];
    let a1 = [length_um, 0.0, 0.0];
    let b0 = [0.0, sep_um, 0.0];
    let b1 = [length_um, sep_um, 0.0];
    let probe = [length_um / 2.0, sep_um / 2.0, dist_um];
    let field_a = segment_field(a0, a1, 1.0, probe);
    let field_b = segment_field(b0, b1, 1.0, probe);
    let diff = norm([
        field_a[0] - field_b[0],
        field_a[1] - field_b[1],
        field_a[2] - field_b[2],
    ]);
    let avg = (norm(field_a) + norm(field_b)) / 2.0;
    if avg == 0.0 {
        0.0
    } else {
        diff / avg
    }
}

/// Total field magnitude at `probe` (µm) from a routed design with a
/// given per-net current assignment (net, current), summing all
/// routed segments. Horizontal segments run in x, vertical in y;
/// layers are collapsed onto z = 0 (their separation is tens of
/// nanometres, negligible at probe scale).
pub fn layout_field(
    design: &RoutedDesign,
    track_um: f64,
    currents: &[(NetId, f64)],
    probe: [f64; 3],
) -> f64 {
    let mut total = [0.0f64; 3];
    for rn in &design.nets {
        let Some(&(_, i)) = currents.iter().find(|&&(n, _)| n == rn.net) else {
            continue;
        };
        if i == 0.0 {
            continue;
        }
        for s in &rn.segments {
            if s.is_via() {
                continue;
            }
            let scale = f64::from(design.placed.pitch.tracks()) * track_um;
            let a = [f64::from(s.a.x) * scale, f64::from(s.a.y) * scale, 0.0];
            let b = [f64::from(s.b.x) * scale, f64::from(s.b.y) * scale, 0.0];
            // Current direction is along the segment; sign by layer
            // orientation is immaterial for magnitude comparisons.
            let _ = LAYER_H;
            total = add(total, segment_field(a, b, i, probe));
        }
    }
    norm(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_decays_with_distance() {
        let f1 = norm(segment_field(
            [0.0, 0.0, 0.0],
            [100.0, 0.0, 0.0],
            1.0,
            [50.0, 0.0, 10.0],
        ));
        let f2 = norm(segment_field(
            [0.0, 0.0, 0.0],
            [100.0, 0.0, 0.0],
            1.0,
            [50.0, 0.0, 100.0],
        ));
        assert!(f1 > f2 * 5.0);
    }

    #[test]
    fn infinite_wire_limit() {
        // Close to a long wire the field approaches 2I/d.
        let f = norm(segment_field(
            [-1e6, 0.0, 0.0],
            [1e6, 0.0, 0.0],
            1.0,
            [0.0, 0.0, 2.0],
        ));
        assert!((f - 1.0).abs() < 1e-3, "got {f}");
    }

    #[test]
    fn discrimination_vanishes_at_probe_distance() {
        // Paper's numbers: 1 µm separation, 10–100 µm length,
        // 1–10 mm probe distance.
        let near = pair_discrimination(100.0, 1.0, 10.0);
        let far = pair_discrimination(100.0, 1.0, 1000.0);
        let very_far = pair_discrimination(100.0, 1.0, 10_000.0);
        assert!(near > far && far > very_far);
        assert!(very_far < 2e-4, "discrimination {very_far}");
    }

    #[test]
    fn wider_separation_is_easier_to_attack() {
        let tight = pair_discrimination(100.0, 1.0, 1000.0);
        let loose = pair_discrimination(100.0, 20.0, 1000.0);
        assert!(loose > tight * 5.0);
    }
}
