//! Side-channel attack and analysis harness.
//!
//! Implements the evaluation machinery of the paper:
//!
//! * [`attack`] — Differential Power Analysis: differential traces per
//!   key guess, peak and peak-to-peak statistics (Fig. 6 bottom), and
//!   the **MTD** (measurements to disclosure, Fig. 6 top);
//! * [`cpa`] — Correlation Power Analysis, the stronger attacker the
//!   paper's §3 anticipates ("the more powerful an attacker is, the
//!   better his results may be");
//! * [`harness`] — end-to-end trace collection for the Fig. 4 DES
//!   module on a simulated implementation (regular or WDDL), with a
//!   fused streaming path that feeds simulator output straight into
//!   the accumulators;
//! * [`streaming`] — one-pass DPA/CPA/MTD accumulators with
//!   block-wise input and incremental checkpoints, byte-identical to
//!   the batch attacks at any thread count or chunking;
//! * [`store`] — out-of-core chunked trace store for million-trace
//!   campaign replay;
//! * [`error`] — the typed analysis/campaign error taxonomy;
//! * [`stats`] — the energy figures of §3: mean energy per cycle,
//!   normalized energy deviation (NED) and normalized standard
//!   deviation (NSD);
//! * [`timing`] — §4.1: idle-cycle visibility in power traces;
//! * [`ema`] — §4.2: a near-field electromagnetic model quantifying
//!   how the 1 µm-spaced differential pairs cancel at millimetre probe
//!   distances;
//! * [`dfa`] — §4.3: clock-glitch injection and the WDDL `(0, 0)`
//!   alarm.

pub mod attack;
pub mod cpa;
pub mod dfa;
pub mod ema;
pub mod error;
pub mod harness;
pub mod stats;
pub mod store;
pub mod streaming;
pub mod timing;
