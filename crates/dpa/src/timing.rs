//! §4.1 — timing side channel: visibility of idle cycles in the power
//! trace.
//!
//! In a regular CMOS design an idle cycle (state unchanged) draws
//! almost no supply current, so inserted idle cycles — a common
//! countermeasure against timing attacks — are trivially visible in a
//! power trace. In WDDL every gate switches every cycle whether or not
//! useful data is processed, so idle and active cycles are
//! indistinguishable.

/// Separation between the energy distributions of idle and active
/// cycles, as the d′ sensitivity index
/// `|μ_active − μ_idle| / sqrt((σ²_active + σ²_idle) / 2)`.
///
/// A value well above ~2 means an attacker can classify individual
/// cycles reliably; near 0 means the idle cycles are hidden.
///
/// # Panics
///
/// Panics if either class is empty or lengths differ.
pub fn idle_visibility(cycle_energies: &[f64], idle: &[bool]) -> f64 {
    assert_eq!(cycle_energies.len(), idle.len());
    let split = |flag: bool| -> Vec<f64> {
        cycle_energies
            .iter()
            .zip(idle)
            .filter(|&(_, &f)| f == flag)
            .map(|(&e, _)| e)
            .collect()
    };
    let idle_e = split(true);
    let active_e = split(false);
    assert!(!idle_e.is_empty() && !active_e.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var = |v: &[f64], m: f64| v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64;
    let (ma, mi) = (mean(&active_e), mean(&idle_e));
    let pooled = ((var(&active_e, ma) + var(&idle_e, mi)) / 2.0).sqrt();
    if pooled == 0.0 {
        if (ma - mi).abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (ma - mi).abs() / pooled
    }
}

/// Classifies each cycle as idle/active by thresholding at the
/// midpoint between class means, returning the classification
/// accuracy an attacker would achieve.
pub fn idle_classification_accuracy(cycle_energies: &[f64], idle: &[bool]) -> f64 {
    assert_eq!(cycle_energies.len(), idle.len());
    let mean_of = |flag: bool| {
        let v: Vec<f64> = cycle_energies
            .iter()
            .zip(idle)
            .filter(|&(_, &f)| f == flag)
            .map(|(&e, _)| e)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let mi = mean_of(true);
    let ma = mean_of(false);
    let thr = (mi + ma) / 2.0;
    let idle_low = mi < ma;
    let correct = cycle_energies
        .iter()
        .zip(idle)
        .filter(|&(&e, &f)| {
            let classified_idle = if idle_low { e < thr } else { e >= thr };
            classified_idle == f
        })
        .count();
    correct as f64 / cycle_energies.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_distributions_are_visible() {
        let e = vec![10.0, 10.5, 0.1, 9.8, 0.2, 10.2];
        let idle = vec![false, false, true, false, true, false];
        assert!(idle_visibility(&e, &idle) > 5.0);
        assert!(idle_classification_accuracy(&e, &idle) > 0.99);
    }

    #[test]
    fn identical_distributions_are_hidden() {
        let e = vec![10.0, 10.0, 10.0, 10.0];
        let idle = vec![false, true, false, true];
        assert_eq!(idle_visibility(&e, &idle), 0.0);
        // Accuracy at chance level (ties classified one way).
        let acc = idle_classification_accuracy(&e, &idle);
        assert!(acc <= 0.75);
    }

    #[test]
    #[should_panic]
    fn empty_class_panics() {
        let _ = idle_visibility(&[1.0, 2.0], &[false, false]);
    }
}
