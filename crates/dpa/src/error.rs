//! Typed errors for the attack/analysis layer.
//!
//! The PR 4 taxonomy converted every input-dependent panic in the
//! *flow* stages into `FlowError` variants with stable exit codes
//! 10–19. The attack statistics sit after the flow and have no stage
//! of their own, so their input-contract failures — inconsistent
//! trace lengths, an empty key-guess space, a zero MTD step — get
//! their own enum here and surface under the `analysis` pseudo-stage
//! with [`ANALYSIS_EXIT_CODE`], matching what the experiment binaries
//! already use for post-flow failures.

use std::fmt;

/// Exit code for failures in post-flow analysis (energy statistics,
/// attacks, MTD scans) that have no `secflow_core::Stage` of their
/// own. Mirrored by `secflow_bench::ANALYSIS_EXIT_CODE`.
pub const ANALYSIS_EXIT_CODE: i32 = 20;

/// An input-contract violation in the attack/analysis layer.
///
/// These were `assert!`s before the streaming refactor; they are
/// reachable from bad *caller* input (a malformed trace dump, a
/// zero-step scan request), so they follow the typed-error contract
/// rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The attack was asked to evaluate zero key guesses.
    NoKeyGuesses,
    /// An MTD scan was requested with `step == 0`.
    ZeroStep,
    /// A trace's length disagrees with the first trace's.
    InconsistentTraceLength {
        /// Index of the offending trace (within the stream).
        index: usize,
        /// Its length.
        got: usize,
        /// The length established by the first trace.
        expect: usize,
    },
}

impl AnalysisError {
    /// Stable variant name, mirrored into structured error reports.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisError::NoKeyGuesses => "NoKeyGuesses",
            AnalysisError::ZeroStep => "ZeroStep",
            AnalysisError::InconsistentTraceLength { .. } => "InconsistentTraceLength",
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoKeyGuesses => {
                write!(f, "attack needs at least one key guess (n_keys == 0)")
            }
            AnalysisError::ZeroStep => {
                write!(f, "MTD scan step must be at least 1")
            }
            AnalysisError::InconsistentTraceLength { index, got, expect } => write!(
                f,
                "trace {index} has {got} samples, expected {expect} \
                 (all traces in a set must have equal length)"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Any failure of a campaign that fuses simulation, analysis, and the
/// optional trace store: each leg keeps its own typed error.
#[derive(Debug)]
pub enum CampaignError {
    /// The simulation kernel rejected the target or configuration.
    Sim(secflow_sim::SimError),
    /// An analysis input contract was violated.
    Analysis(AnalysisError),
    /// The trace store failed to write or read.
    Store(crate::store::StoreError),
}

impl From<secflow_sim::SimError> for CampaignError {
    fn from(e: secflow_sim::SimError) -> Self {
        CampaignError::Sim(e)
    }
}

impl From<AnalysisError> for CampaignError {
    fn from(e: AnalysisError) -> Self {
        CampaignError::Analysis(e)
    }
}

impl From<crate::store::StoreError> for CampaignError {
    fn from(e: crate::store::StoreError) -> Self {
        CampaignError::Store(e)
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Sim(e) => write!(f, "campaign simulation: {e}"),
            CampaignError::Analysis(e) => write!(f, "campaign analysis: {e}"),
            CampaignError::Store(e) => write!(f, "campaign store: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Sim(e) => Some(e),
            CampaignError::Analysis(e) => Some(e),
            CampaignError::Store(e) => Some(e),
        }
    }
}
