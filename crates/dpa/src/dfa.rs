//! §4.3 — Differential Fault Analysis: clock-glitch injection against
//! a WDDL design, and the redundant-encoding alarm.
//!
//! A glitch attack raises the clock frequency so that some
//! combinational path misses the capturing edge. In single-ended
//! logic this silently captures a wrong bit; in WDDL the incomplete
//! path leaves the register's input pair at `(0, 0)` — an invalid
//! code word — which the circuit detects and turns into an alarm.

use secflow_cells::Library;
use secflow_extract::Parasitics;
use secflow_netlist::{NetId, Netlist};
use secflow_sim::{simulate_wddl, CompiledSim, EngineScratch, LoadModel, SimConfig, SimError, SimResult};

/// One point of a clock-glitch sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchPoint {
    /// Fraction of the cycle spent in precharge (0.5 = nominal; larger
    /// values squeeze the evaluation phase, emulating a faster clock).
    pub precharge_fraction: f64,
    /// Total register captures that saw `(0, 0)` — raised alarms.
    pub alarms: usize,
    /// Encryption outputs that differ from the nominal run — faults an
    /// attacker could exploit.
    pub corrupted_outputs: usize,
    /// True if every corrupted output was accompanied by at least one
    /// alarm in its cycle (the countermeasure catches the fault).
    pub faults_detected: bool,
}

/// Sweeps the evaluation-phase duration and reports, for each point,
/// whether glitz-induced faults are caught by the `(0, 0)` alarm.
///
/// `vectors` are logical input values per cycle (see
/// [`simulate_wddl`]).
///
/// # Errors
///
/// Returns [`SimError`] if the netlist is cyclic or references cells
/// missing from `lib`.
pub fn glitch_sweep(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    base_cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    vectors: &[Vec<bool>],
    fractions: &[f64],
) -> Result<Vec<GlitchPoint>, SimError> {
    let nominal = simulate_wddl(nl, lib, parasitics, base_cfg, input_pairs, vectors)?;
    // The load model is clock-independent; share it across the sweep
    // and recompile only the (cheap) per-fraction timing.
    let load = LoadModel::try_build(nl, lib, parasitics)?;
    let mut scratch = EngineScratch::new();
    let mut points = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let cfg = SimConfig {
            precharge_fraction: frac,
            ..base_cfg.clone()
        };
        let comp = CompiledSim::build(nl, lib, &load, &cfg)?;
        comp.run_wddl(&mut scratch, input_pairs, vectors);
        points.push(summarize(&nominal, &scratch.take_sim_result(), frac));
    }
    Ok(points)
}

fn summarize(nominal: &SimResult, run: &SimResult, frac: f64) -> GlitchPoint {
    let mut corrupted = 0usize;
    let mut all_detected = true;
    for (c, (a, b)) in nominal
        .outputs_per_cycle
        .iter()
        .zip(&run.outputs_per_cycle)
        .enumerate()
    {
        if a != b {
            corrupted += 1;
            // The wrong value was captured in some earlier cycle; the
            // alarm for capture at cycle c-1 covers outputs at c. Check
            // the current and previous cycles.
            let alarmed = run.wddl_alarms[c] > 0 || (c > 0 && run.wddl_alarms[c - 1] > 0);
            if !alarmed {
                all_detected = false;
            }
        }
    }
    GlitchPoint {
        precharge_fraction: frac,
        alarms: run.wddl_alarms.iter().sum(),
        corrupted_outputs: corrupted,
        faults_detected: all_detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_cells::{CellFunction, LefMacro, LibCell};
    use secflow_netlist::GateKind;

    /// Differential AND chain with a register (same fixture style as
    /// the simulator's tests).
    fn fixture() -> (Netlist, Library, Vec<(NetId, NetId)>) {
        let mut nl = Netlist::new("wddl");
        let at = nl.add_input("a_t");
        let af = nl.add_input("a_f");
        let bt = nl.add_input("b_t");
        let bf = nl.add_input("b_f");
        let mut t = at;
        let mut f = af;
        // A chain of 6 differential AND stages to get a long path.
        for i in 0..6 {
            let nt = nl.add_net(format!("n{i}_t"));
            let nf = nl.add_net(format!("n{i}_f"));
            nl.add_gate(
                format!("g{i}_t"),
                "AND2",
                GateKind::Comb,
                vec![t, bt],
                vec![nt],
            );
            nl.add_gate(
                format!("g{i}_f"),
                "OR2",
                GateKind::Comb,
                vec![f, bf],
                vec![nf],
            );
            t = nt;
            f = nf;
        }
        let qt = nl.add_net("q_t");
        let qf = nl.add_net("q_f");
        nl.add_gate("r0", "WDDLDFF", GateKind::Seq, vec![t, f], vec![qt, qf]);
        nl.mark_output(qt);
        nl.mark_output(qf);

        let mut cells = Library::lib180().cells().to_vec();
        cells.push(LibCell::new(
            "WDDLDFF",
            CellFunction::WddlDff,
            vec![2.8, 2.8],
            4.0,
            120.0,
            LefMacro::evenly_spread(24, 2, 2),
        ));
        (nl, Library::new(cells), vec![(at, af), (bt, bf)])
    }

    #[test]
    fn nominal_clock_raises_no_alarm() {
        let (nl, lib, pairs) = fixture();
        let cfg = SimConfig {
            samples_per_cycle: 80,
            ..Default::default()
        };
        let vectors = vec![vec![true, true]; 4];
        let pts = glitch_sweep(&nl, &lib, None, &cfg, &pairs, &vectors, &[0.5]).unwrap();
        assert_eq!(pts[0].alarms, 0);
        assert_eq!(pts[0].corrupted_outputs, 0);
        assert!(pts[0].faults_detected);
    }

    #[test]
    fn aggressive_glitch_is_detected() {
        let (nl, lib, pairs) = fixture();
        let cfg = SimConfig {
            samples_per_cycle: 80,
            ..Default::default()
        };
        let vectors = vec![vec![true, true]; 4];
        let pts = glitch_sweep(&nl, &lib, None, &cfg, &pairs, &vectors, &[0.5, 0.9, 0.99]).unwrap();
        // Squeezing evaluation to 1% must starve the 6-gate chain.
        let worst = &pts[2];
        assert!(worst.alarms > 0, "no alarm at 1% evaluation");
        assert!(worst.faults_detected, "fault escaped detection");
    }
}
