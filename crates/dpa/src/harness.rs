//! End-to-end trace collection for the Fig. 4 DES module.
//!
//! Drives a simulated implementation (regular single-ended or WDDL
//! differential) with random plaintexts under a fixed key — the
//! paper's measurement campaign: 2000 encryptions, random `PL`/`PR`,
//! `K = 46`, 125 MHz, 800 samples per cycle — and slices the supply
//! current into one trace per encryption.
//!
//! The campaign is parallel over encryptions (`secflow-exec`): the
//! plaintext sequence is drawn serially up front (identical to the
//! serial harness for a given seed), the measurement-noise stream of
//! encryption `i` is derived from `(noise_seed, i)` via
//! [`secflow_rand::split_seed`], and each trace is produced by
//! simulating a short **window** — the two preceding plaintext cycles
//! (the datapath's full state history), the leakage cycle itself, and
//! two flush cycles — so traces are independent work items yet
//! byte-identical at any thread count.

use secflow_rand::{split_seed, RngExt, SeedableRng, StdRng};

use secflow_cells::Library;
use secflow_crypto::dpa_module::{encrypt, selection};
use secflow_exec::par_map_range_with;
use secflow_extract::Parasitics;
use secflow_netlist::{NetId, Netlist};
use secflow_obs as obs;
use secflow_sim::{
    add_gaussian_noise, BitScratch, BitSim, CompiledSim, EngineScratch, LoadModel, SimBackend,
    SimConfig, SimError,
};

/// A simulated implementation of the DES DPA module.
#[derive(Debug, Clone, Copy)]
pub struct DesTarget<'a> {
    /// The mapped netlist (single-ended) or differential netlist
    /// (WDDL).
    pub netlist: &'a Netlist,
    /// Library resolving the netlist's cells.
    pub lib: &'a Library,
    /// Extracted layout parasitics, if available.
    pub parasitics: Option<&'a Parasitics>,
    /// For WDDL targets: the input rail pairs in original port order
    /// (`pl[0..4]`, `pr[0..6]`, `k[0..6]`). `None` selects the
    /// single-ended driver.
    pub wddl_inputs: Option<&'a [(NetId, NetId)]>,
    /// Use the idealized glitch-free power model (single-ended targets
    /// only; used by the glitch-contribution ablation).
    pub glitch_free: bool,
    /// Which simulation kernel runs the campaign windows. Both produce
    /// byte-identical traces; `Bitslice` batches 64 windows per lane
    /// word (see `tests/bitslice_cross_check.rs`).
    pub backend: SimBackend,
}

impl<'a> DesTarget<'a> {
    /// The same target on a different simulation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// A campaign-ready compiled simulation program: the target netlist
/// compiled once for its backend (cell resolution, fanout adjacency,
/// loads, topological order), reusable across any number of
/// campaigns. Building it is the expensive, stimuli-independent half
/// of [`collect_des_traces`]; the program is immutable and `Sync`, so
/// a job server can cache it behind an `Arc` and share it between
/// concurrent campaigns that differ only in stimuli and seeds.
#[derive(Debug)]
pub enum CampaignProgram {
    /// Compiled event-driven kernel (one window at a time).
    Event(CompiledSim),
    /// Bit-sliced oblivious kernel (up to 64 windows per batch).
    Bitslice(BitSim),
}

impl CampaignProgram {
    /// Compiles `target` for campaign simulation. Windows are
    /// simulated noise-free (measurement noise is applied per trace
    /// from its own stream), so the program is built against a
    /// zero-noise copy of `cfg`.
    ///
    /// The backend/config combination is validated *first*
    /// ([`SimConfig::validate_backend`]), so an unsupported request —
    /// e.g. `record_waveform` on the bit-sliced backend — fails with
    /// its typed error before any compilation work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if validation fails, the target netlist is
    /// cyclic, or it references cells missing from its library.
    pub fn build(target: &DesTarget<'_>, cfg: &SimConfig) -> Result<CampaignProgram, SimError> {
        cfg.validate_backend(target.backend)?;
        let load = LoadModel::try_build(target.netlist, target.lib, target.parasitics)?;
        let window_cfg = SimConfig {
            noise_sigma: 0.0,
            ..cfg.clone()
        };
        Ok(match target.backend {
            SimBackend::Event => CampaignProgram::Event(CompiledSim::build(
                target.netlist,
                target.lib,
                &load,
                &window_cfg,
            )?),
            SimBackend::Bitslice => CampaignProgram::Bitslice(BitSim::build(
                target.netlist,
                target.lib,
                &load,
                &window_cfg,
            )?),
        })
    }

    /// The backend this program was compiled for.
    pub fn backend(&self) -> SimBackend {
        match self {
            CampaignProgram::Event(_) => SimBackend::Event,
            CampaignProgram::Bitslice(_) => SimBackend::Bitslice,
        }
    }
}

/// Collected measurement campaign.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// One supply-current trace per encryption (the cycle in which the
    /// S-box evaluates and the ciphertext registers capture).
    pub traces: Vec<Vec<f64>>,
    /// Known ciphertext `(CL, CR)` per encryption.
    pub ciphertexts: Vec<(u8, u8)>,
    /// Supply energy per encryption cycle, in fJ.
    pub energies: Vec<f64>,
    /// Samples per trace.
    pub samples_per_trace: usize,
}

impl TraceSet {
    /// The paper's selection function as a closure over this set's
    /// ciphertexts, suitable for [`crate::attack::dpa_attack`].
    pub fn selector(&self) -> impl Fn(u8, usize) -> bool + '_ {
        move |key, i| {
            let (cl, cr) = self.ciphertexts[i];
            selection(key, cl, cr)
        }
    }
}

/// Runs `n` encryptions with random plaintexts under `key` and
/// collects per-encryption traces.
///
/// The implementation is verified online: every simulated ciphertext
/// is compared against the software model of the datapath.
///
/// # Errors
///
/// Returns [`SimError`] if the target netlist is cyclic or references
/// cells missing from its library.
///
/// # Panics
///
/// Panics if `key >= 64` (caller contract), or if the simulated
/// hardware disagrees with the reference model (a substitution or
/// simulation bug, not an input error).
pub fn collect_des_traces(
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    n: usize,
    seed: u64,
) -> Result<TraceSet, SimError> {
    let program = CampaignProgram::build(target, cfg)?;
    collect_des_traces_with(&program, target, cfg, key, n, seed)
}

/// [`collect_des_traces`] against an already-compiled program —
/// the campaign half of the compile/run split. `program` must have
/// been built from this `target` (same netlist, library, parasitics
/// and backend); `cfg` supplies the per-trace noise parameters, which
/// are not baked into the program.
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` requests a feature `program`'s
/// backend does not support.
///
/// # Panics
///
/// Panics if `key >= 64` (caller contract), or if the simulated
/// hardware disagrees with the reference model.
pub fn collect_des_traces_with(
    program: &CampaignProgram,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    n: usize,
    seed: u64,
) -> Result<TraceSet, SimError> {
    assert!(key < 64);
    cfg.validate_backend(program.backend())?;
    let _campaign = obs::span("dpa.campaign");
    // Plaintexts are drawn sequentially up front — cheap, and it keeps
    // the campaign identical to the serial harness for a given seed.
    // Only the expensive per-encryption simulation is parallelised.
    let mut rng = StdRng::seed_from_u64(seed);
    let plaintexts: Vec<(u8, u8)> = (0..n)
        .map(|_| (rng.random_range(0..16u8), rng.random_range(0..64u8)))
        .collect();

    let vector = |pl: u8, pr: u8| -> Vec<bool> {
        let mut v = Vec::with_capacity(16);
        for i in 0..4 {
            v.push(pl >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(pr >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(key >> i & 1 == 1);
        }
        v
    };

    let spc = cfg.samples_per_cycle;
    let decode = |outs: &[bool]| -> (u8, u8) {
        let bit = |j: usize| -> bool {
            match target.wddl_inputs {
                Some(_) => outs[2 * j], // rails interleaved (t, f)
                None => outs[j],
            }
        };
        let cl = (0..4).fold(0u8, |a, j| a | ((bit(j) as u8) << j));
        let cr = (0..6).fold(0u8, |a, j| a | ((bit(4 + j) as u8) << j));
        (cl, cr)
    };

    // The program was compiled once (cell resolution, fanout
    // adjacency, loads and topological order) and is shared read-only
    // across every window simulation. Windows run noise-free;
    // measurement noise is applied per trace below from its own
    // (noise_seed, i) stream.
    let comp = match program {
        CampaignProgram::Bitslice(sim) => {
            let collected = collect_des_traces_bitslice(sim, target, cfg, key, &plaintexts);
            return Ok(finish_campaign(collected, n, spc));
        }
        CampaignProgram::Event(comp) => comp,
    };

    // One work item per encryption. The datapath state feeding the
    // leakage cycle of encryption i is fully determined by the two
    // preceding plaintexts (PL/PR capture p(i) while CL/CR hold the
    // result of p(i-1), computed from state set by p(i-2)), so a
    // window of h = min(i, 2) history cycles, the leakage cycle, and
    // two flush cycles reproduces the full campaign's leakage cycle
    // exactly — including the reset-state boundary for i < 2, where
    // the window is the campaign prefix itself.
    // Each pool worker keeps one engine scratch, reset per window, so
    // the steady-state campaign allocates nothing in the simulator.
    let collected = par_map_range_with(n, EngineScratch::new, |scratch, i| {
        let h = i.min(2);
        let mut vectors: Vec<Vec<bool>> = Vec::with_capacity(h + 3);
        for j in (i - h)..=i {
            let (pl, pr) = plaintexts[j];
            vectors.push(vector(pl, pr));
        }
        vectors.push(vector(0, 0));
        vectors.push(vector(0, 0));

        match (target.wddl_inputs, target.glitch_free) {
            (Some(pairs), _) => comp.run_wddl(scratch, pairs, &vectors),
            (None, false) => comp.run_single_ended(scratch, &vectors),
            (None, true) => comp.run_single_ended_glitch_free(scratch, &vectors),
        }

        // Plaintext i is captured by PL/PR at the end of window cycle
        // h; the S-box evaluates and the ciphertext registers capture
        // during cycle h+1 (the leakage cycle); the new CL/CR values
        // drive the outputs during cycle h+2.
        let leak_cycle = h + 1;
        let mut trace = scratch.cycle_trace(leak_cycle).to_vec();
        if cfg.noise_sigma > 0.0 {
            add_gaussian_noise(
                &mut trace,
                cfg.noise_sigma,
                split_seed(cfg.noise_seed, i as u64),
            );
        }
        // Per-window kernel counters: each is a pure function of the
        // compiled design and this window's vectors, so campaign sums
        // are thread-count invariant (pinned by tests/obs_counters.rs).
        if obs::enabled() {
            obs::add(obs::Counter::SimWindows, 1);
            obs::add(obs::Counter::SimEvents, scratch.events_processed());
            obs::add(obs::Counter::SimEvals, scratch.gate_evals());
            obs::add(obs::Counter::SimRises, scratch.cycle_rises().iter().sum());
            obs::gauge_max(obs::Gauge::SimWheelPeak, scratch.wheel_peak());
        }
        let energy = scratch.cycle_energy_fj()[leak_cycle];
        let got = decode(scratch.outputs(leak_cycle + 1));
        let (pl, pr) = plaintexts[i];
        let expect = encrypt(pl, pr, key);
        assert_eq!(
            got, expect,
            "simulated ciphertext disagrees with the model at encryption {i}"
        );
        (trace, got, energy)
    });

    Ok(finish_campaign(collected, n, spc))
}

fn finish_campaign(
    collected: Vec<(Vec<f64>, (u8, u8), f64)>,
    n: usize,
    spc: usize,
) -> TraceSet {
    let mut traces = Vec::with_capacity(n);
    let mut ciphertexts = Vec::with_capacity(n);
    let mut energies = Vec::with_capacity(n);
    for (trace, ct, energy) in collected {
        traces.push(trace);
        ciphertexts.push(ct);
        energies.push(energy);
    }

    obs::add(obs::Counter::DpaTraces, n as u64);
    TraceSet {
        traces,
        ciphertexts,
        energies,
        samples_per_trace: spc,
    }
}

/// The same campaign through the bit-sliced kernel: windows of equal
/// length are packed 64 per lane batch, each pool worker keeps one
/// [`BitScratch`], and per-lane results are unpacked in encryption
/// order — byte-identical to the event path at any thread count.
fn collect_des_traces_bitslice(
    sim: &BitSim,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    plaintexts: &[(u8, u8)],
) -> Vec<(Vec<f64>, (u8, u8), f64)> {
    let n = plaintexts.len();
    // Batches share a window length: encryptions 0 (3 cycles) and 1
    // (4 cycles) run alone against the reset boundary; the steady
    // state (5 cycles) packs up to 64 encryptions per batch. The
    // partition is a pure function of n, so batch-level obs counters
    // are thread-count invariant.
    let mut batches: Vec<(usize, usize)> = Vec::new();
    let mut at = 0usize;
    while at < n {
        let count = if at < 2 { 1 } else { (n - at).min(64) };
        batches.push((at, count));
        at += count;
    }
    let per_batch = par_map_range_with(batches.len(), BitScratch::new, |scratch, bi| {
        let (start, count) = batches[bi];
        let h = start.min(2);
        let active = if count == 64 { !0u64 } else { (1u64 << count) - 1 };
        let key_word = |b: usize| if key >> b & 1 == 1 { active } else { 0 };
        // One packed word per input per cycle: bit l is lane l's value
        // of that input (port order pl[0..4], pr[0..6], k[0..6]).
        let mut vectors: Vec<Vec<u64>> = Vec::with_capacity(h + 3);
        for j in 0..=h {
            let mut words = vec![0u64; 16];
            for l in 0..count {
                let (pl, pr) = plaintexts[start + l - h + j];
                for b in 0..4 {
                    if pl >> b & 1 == 1 {
                        words[b] |= 1 << l;
                    }
                }
                for b in 0..6 {
                    if pr >> b & 1 == 1 {
                        words[4 + b] |= 1 << l;
                    }
                }
            }
            for b in 0..6 {
                words[10 + b] = key_word(b);
            }
            vectors.push(words);
        }
        // Flush cycles: plaintext zero, key held.
        for _ in 0..2 {
            let mut words = vec![0u64; 16];
            for b in 0..6 {
                words[10 + b] = key_word(b);
            }
            vectors.push(words);
        }

        match (target.wddl_inputs, target.glitch_free) {
            (Some(pairs), _) => sim.run_wddl(scratch, pairs, &vectors, active),
            (None, false) => sim.run_single_ended(scratch, &vectors, active),
            (None, true) => sim.run_single_ended_glitch_free(scratch, &vectors, active),
        }

        // Batch-level kernel counters: pure functions of the compiled
        // design and this batch's stimuli (pinned by
        // tests/obs_counters.rs).
        if obs::enabled() {
            obs::add(obs::Counter::SimBitsliceBatches, 1);
            obs::add(obs::Counter::SimBitsliceLanes, count as u64);
            obs::add(obs::Counter::SimBitsliceEvents, scratch.events_processed());
            obs::add(obs::Counter::SimBitsliceEvals, scratch.gate_evals());
            obs::add(obs::Counter::SimBitsliceRises, scratch.total_rises());
            obs::gauge_max(obs::Gauge::SimBitsliceWheelPeak, scratch.wheel_peak());
        }

        let leak_cycle = h + 1;
        let mut out = Vec::with_capacity(count);
        for l in 0..count {
            let i = start + l;
            let mut trace = scratch.cycle_trace(leak_cycle, l);
            if cfg.noise_sigma > 0.0 {
                add_gaussian_noise(
                    &mut trace,
                    cfg.noise_sigma,
                    split_seed(cfg.noise_seed, i as u64),
                );
            }
            let energy = scratch.cycle_energy_fj(leak_cycle, l);
            let bit = |j: usize| match target.wddl_inputs {
                Some(_) => scratch.output_bit(leak_cycle + 1, 2 * j, l),
                None => scratch.output_bit(leak_cycle + 1, j, l),
            };
            let cl = (0..4).fold(0u8, |a, j| a | ((bit(j) as u8) << j));
            let cr = (0..6).fold(0u8, |a, j| a | ((bit(4 + j) as u8) << j));
            let (pl, pr) = plaintexts[i];
            let expect = encrypt(pl, pr, key);
            assert_eq!(
                (cl, cr),
                expect,
                "simulated ciphertext disagrees with the model at encryption {i}"
            );
            out.push((trace, (cl, cr), energy));
        }
        out
    });
    per_batch.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_crypto::dpa_module::des_dpa_design;
    use secflow_synth::{map_design, MapOptions};

    #[test]
    fn single_ended_traces_match_model() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let target = DesTarget {
            netlist: &nl,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        };
        let cfg = SimConfig {
            samples_per_cycle: 100,
            ..Default::default()
        };
        let set = collect_des_traces(&target, &cfg, 46, 20, 1).unwrap();
        assert_eq!(set.traces.len(), 20);
        assert_eq!(set.ciphertexts.len(), 20);
        assert!(set.energies.iter().all(|&e| e > 0.0));
        // Cross-check one ciphertext by inverting the datapath.
        let (cl, cr) = set.ciphertexts[3];
        assert!(cl < 16 && cr < 64);
    }

    #[test]
    fn trace_collection_is_deterministic() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let target = DesTarget {
            netlist: &nl,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        };
        let cfg = SimConfig {
            samples_per_cycle: 50,
            ..Default::default()
        };
        let a = collect_des_traces(&target, &cfg, 46, 10, 42).unwrap();
        let b = collect_des_traces(&target, &cfg, 46, 10, 42).unwrap();
        assert_eq!(a.ciphertexts, b.ciphertexts);
        assert_eq!(a.traces, b.traces);
    }
}
