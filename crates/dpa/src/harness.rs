//! End-to-end trace collection for the Fig. 4 DES module.
//!
//! Drives a simulated implementation (regular single-ended or WDDL
//! differential) with random plaintexts under a fixed key — the
//! paper's measurement campaign: 2000 encryptions, random `PL`/`PR`,
//! `K = 46`, 125 MHz, 800 samples per cycle — and slices the supply
//! current into one trace per encryption.
//!
//! The campaign is parallel over encryptions (`secflow-exec`): the
//! plaintext sequence is drawn serially up front (identical to the
//! serial harness for a given seed), the measurement-noise stream of
//! encryption `i` is derived from `(noise_seed, i)` via
//! [`secflow_rand::split_seed`], and each trace is produced by
//! simulating a short **window** — the two preceding plaintext cycles
//! (the datapath's full state history), the leakage cycle itself, and
//! two flush cycles — so traces are independent work items yet
//! byte-identical at any thread count.
//!
//! Two consumption paths share the window simulators:
//!
//! * **Materialize** ([`collect_des_traces`]): every trace lands in a
//!   [`TraceSet`], O(traces × points) memory, attacked afterwards
//!   ([`analyze_trace_set`]).
//! * **Streaming** ([`collect_des_analysis_streaming`]): windows are
//!   simulated in bounded chunks and fed straight into the one-pass
//!   accumulators of [`crate::streaming`]; memory is
//!   O(chunk × points + points × guesses) however many traces run,
//!   and the resulting [`CampaignAnalysis`] is byte-identical to the
//!   materialized path because every per-guess fold sees the same
//!   traces in the same order.

use std::path::Path;

use secflow_rand::{split_seed, RngExt, SeedableRng, StdRng};

use secflow_cells::Library;
use secflow_crypto::dpa_module::{encrypt, selection};
use secflow_exec::par_map_range_with;
use secflow_extract::Parasitics;
use secflow_netlist::{NetId, Netlist};
use secflow_obs as obs;
use secflow_sim::{
    add_gaussian_noise, BitScratch, BitSim, CompiledSim, EngineScratch, LoadModel, SimBackend,
    SimConfig, SimError,
};

use crate::attack::{dpa_attack, mtd_scan, DpaResult, MtdScan};
use crate::cpa::{cpa_attack, cpa_mtd_scan, sbox_hamming_model, CpaMtdPoint, CpaResult};
use crate::error::{AnalysisError, CampaignError};
use crate::store::{StoreWriter, TraceBlock, TraceStore};
use crate::streaming::{CpaStream, DpaStream};

/// A simulated implementation of the DES DPA module.
#[derive(Debug, Clone, Copy)]
pub struct DesTarget<'a> {
    /// The mapped netlist (single-ended) or differential netlist
    /// (WDDL).
    pub netlist: &'a Netlist,
    /// Library resolving the netlist's cells.
    pub lib: &'a Library,
    /// Extracted layout parasitics, if available.
    pub parasitics: Option<&'a Parasitics>,
    /// For WDDL targets: the input rail pairs in original port order
    /// (`pl[0..4]`, `pr[0..6]`, `k[0..6]`). `None` selects the
    /// single-ended driver.
    pub wddl_inputs: Option<&'a [(NetId, NetId)]>,
    /// Use the idealized glitch-free power model (single-ended targets
    /// only; used by the glitch-contribution ablation).
    pub glitch_free: bool,
    /// Which simulation kernel runs the campaign windows. Both produce
    /// byte-identical traces; `Bitslice` batches 64 windows per lane
    /// word (see `tests/bitslice_cross_check.rs`).
    pub backend: SimBackend,
}

impl<'a> DesTarget<'a> {
    /// The same target on a different simulation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// A campaign-ready compiled simulation program: the target netlist
/// compiled once for its backend (cell resolution, fanout adjacency,
/// loads, topological order), reusable across any number of
/// campaigns. Building it is the expensive, stimuli-independent half
/// of [`collect_des_traces`]; the program is immutable and `Sync`, so
/// a job server can cache it behind an `Arc` and share it between
/// concurrent campaigns that differ only in stimuli and seeds.
#[derive(Debug)]
pub enum CampaignProgram {
    /// Compiled event-driven kernel (one window at a time).
    Event(CompiledSim),
    /// Bit-sliced oblivious kernel (up to 64 windows per batch).
    Bitslice(BitSim),
}

impl CampaignProgram {
    /// Compiles `target` for campaign simulation. Windows are
    /// simulated noise-free (measurement noise is applied per trace
    /// from its own stream), so the program is built against a
    /// zero-noise copy of `cfg`.
    ///
    /// The backend/config combination is validated *first*
    /// ([`SimConfig::validate_backend`]), so an unsupported request —
    /// e.g. `record_waveform` on the bit-sliced backend — fails with
    /// its typed error before any compilation work.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if validation fails, the target netlist is
    /// cyclic, or it references cells missing from its library.
    pub fn build(target: &DesTarget<'_>, cfg: &SimConfig) -> Result<CampaignProgram, SimError> {
        cfg.validate_backend(target.backend)?;
        let load = LoadModel::try_build(target.netlist, target.lib, target.parasitics)?;
        let window_cfg = SimConfig {
            noise_sigma: 0.0,
            ..cfg.clone()
        };
        Ok(match target.backend {
            SimBackend::Event => CampaignProgram::Event(CompiledSim::build(
                target.netlist,
                target.lib,
                &load,
                &window_cfg,
            )?),
            SimBackend::Bitslice => CampaignProgram::Bitslice(BitSim::build(
                target.netlist,
                target.lib,
                &load,
                &window_cfg,
            )?),
        })
    }

    /// The backend this program was compiled for.
    pub fn backend(&self) -> SimBackend {
        match self {
            CampaignProgram::Event(_) => SimBackend::Event,
            CampaignProgram::Bitslice(_) => SimBackend::Bitslice,
        }
    }
}

/// Collected measurement campaign.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// One supply-current trace per encryption (the cycle in which the
    /// S-box evaluates and the ciphertext registers capture).
    pub traces: Vec<Vec<f64>>,
    /// Known ciphertext `(CL, CR)` per encryption.
    pub ciphertexts: Vec<(u8, u8)>,
    /// Supply energy per encryption cycle, in fJ.
    pub energies: Vec<f64>,
    /// Samples per trace.
    pub samples_per_trace: usize,
}

impl TraceSet {
    /// The paper's selection function as a closure over this set's
    /// ciphertexts, suitable for [`crate::attack::dpa_attack`].
    pub fn selector(&self) -> impl Fn(u8, usize) -> bool + '_ {
        move |key, i| {
            let (cl, cr) = self.ciphertexts[i];
            selection(key, cl, cr)
        }
    }
}

/// Draws the campaign's plaintext sequence — serial, identical for a
/// given seed no matter which path or chunking consumes it.
fn draw_plaintexts(n: usize, seed: u64) -> Vec<(u8, u8)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.random_range(0..16u8), rng.random_range(0..64u8)))
        .collect()
}

/// Runs `n` encryptions with random plaintexts under `key` and
/// collects per-encryption traces.
///
/// The implementation is verified online: every simulated ciphertext
/// is compared against the software model of the datapath.
///
/// # Errors
///
/// Returns [`SimError`] if the target netlist is cyclic or references
/// cells missing from its library.
///
/// # Panics
///
/// Panics if `key >= 64` (caller contract), or if the simulated
/// hardware disagrees with the reference model (a substitution or
/// simulation bug, not an input error).
pub fn collect_des_traces(
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    n: usize,
    seed: u64,
) -> Result<TraceSet, SimError> {
    let program = CampaignProgram::build(target, cfg)?;
    collect_des_traces_with(&program, target, cfg, key, n, seed)
}

/// [`collect_des_traces`] against an already-compiled program —
/// the campaign half of the compile/run split. `program` must have
/// been built from this `target` (same netlist, library, parasitics
/// and backend); `cfg` supplies the per-trace noise parameters, which
/// are not baked into the program.
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` requests a feature `program`'s
/// backend does not support.
///
/// # Panics
///
/// Panics if `key >= 64` (caller contract), or if the simulated
/// hardware disagrees with the reference model.
pub fn collect_des_traces_with(
    program: &CampaignProgram,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    n: usize,
    seed: u64,
) -> Result<TraceSet, SimError> {
    assert!(key < 64);
    cfg.validate_backend(program.backend())?;
    let _campaign = obs::span("dpa.campaign");
    // Plaintexts are drawn sequentially up front — cheap, and it keeps
    // the campaign identical to the serial harness for a given seed.
    // Only the expensive per-encryption simulation is parallelised.
    let plaintexts = draw_plaintexts(n, seed);
    let spc = cfg.samples_per_cycle;

    let collected = match program {
        CampaignProgram::Bitslice(sim) => {
            let batches = bitslice_batches(n);
            let per_batch = par_map_range_with(batches.len(), BitScratch::new, |scratch, bi| {
                let (start, count) = batches[bi];
                run_bitslice_batch(sim, scratch, target, cfg, key, &plaintexts, start, count)
            });
            per_batch.into_iter().flatten().collect()
        }
        CampaignProgram::Event(comp) => {
            // One work item per encryption; each pool worker keeps one
            // engine scratch, reset per window, so the steady-state
            // campaign allocates nothing in the simulator.
            par_map_range_with(n, EngineScratch::new, |scratch, i| {
                run_event_window(comp, scratch, target, cfg, key, &plaintexts, i)
            })
        }
    };

    Ok(finish_campaign(collected, n, spc))
}

fn finish_campaign(
    collected: Vec<(Vec<f64>, (u8, u8), f64)>,
    n: usize,
    spc: usize,
) -> TraceSet {
    let mut traces = Vec::with_capacity(n);
    let mut ciphertexts = Vec::with_capacity(n);
    let mut energies = Vec::with_capacity(n);
    for (trace, ct, energy) in collected {
        traces.push(trace);
        ciphertexts.push(ct);
        energies.push(energy);
    }

    obs::add(obs::Counter::DpaTraces, n as u64);
    TraceSet {
        traces,
        ciphertexts,
        energies,
        samples_per_trace: spc,
    }
}

/// Simulates the window of encryption `i` on the event kernel.
///
/// The datapath state feeding the leakage cycle of encryption i is
/// fully determined by the two preceding plaintexts (PL/PR capture
/// p(i) while CL/CR hold the result of p(i-1), computed from state set
/// by p(i-2)), so a window of h = min(i, 2) history cycles, the
/// leakage cycle, and two flush cycles reproduces the full campaign's
/// leakage cycle exactly — including the reset-state boundary for
/// i < 2, where the window is the campaign prefix itself.
fn run_event_window(
    comp: &CompiledSim,
    scratch: &mut EngineScratch,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    plaintexts: &[(u8, u8)],
    i: usize,
) -> (Vec<f64>, (u8, u8), f64) {
    let vector = |pl: u8, pr: u8| -> Vec<bool> {
        let mut v = Vec::with_capacity(16);
        for b in 0..4 {
            v.push(pl >> b & 1 == 1);
        }
        for b in 0..6 {
            v.push(pr >> b & 1 == 1);
        }
        for b in 0..6 {
            v.push(key >> b & 1 == 1);
        }
        v
    };
    let decode = |outs: &[bool]| -> (u8, u8) {
        let bit = |j: usize| -> bool {
            match target.wddl_inputs {
                Some(_) => outs[2 * j], // rails interleaved (t, f)
                None => outs[j],
            }
        };
        let cl = (0..4).fold(0u8, |a, j| a | ((bit(j) as u8) << j));
        let cr = (0..6).fold(0u8, |a, j| a | ((bit(4 + j) as u8) << j));
        (cl, cr)
    };

    let h = i.min(2);
    let mut vectors: Vec<Vec<bool>> = Vec::with_capacity(h + 3);
    for j in (i - h)..=i {
        let (pl, pr) = plaintexts[j];
        vectors.push(vector(pl, pr));
    }
    vectors.push(vector(0, 0));
    vectors.push(vector(0, 0));

    match (target.wddl_inputs, target.glitch_free) {
        (Some(pairs), _) => comp.run_wddl(scratch, pairs, &vectors),
        (None, false) => comp.run_single_ended(scratch, &vectors),
        (None, true) => comp.run_single_ended_glitch_free(scratch, &vectors),
    }

    // Plaintext i is captured by PL/PR at the end of window cycle
    // h; the S-box evaluates and the ciphertext registers capture
    // during cycle h+1 (the leakage cycle); the new CL/CR values
    // drive the outputs during cycle h+2.
    let leak_cycle = h + 1;
    let mut trace = scratch.cycle_trace(leak_cycle).to_vec();
    if cfg.noise_sigma > 0.0 {
        add_gaussian_noise(
            &mut trace,
            cfg.noise_sigma,
            split_seed(cfg.noise_seed, i as u64),
        );
    }
    // Per-window kernel counters: each is a pure function of the
    // compiled design and this window's vectors, so campaign sums
    // are thread-count invariant (pinned by tests/obs_counters.rs).
    if obs::enabled() {
        obs::add(obs::Counter::SimWindows, 1);
        obs::add(obs::Counter::SimEvents, scratch.events_processed());
        obs::add(obs::Counter::SimEvals, scratch.gate_evals());
        obs::add(obs::Counter::SimRises, scratch.cycle_rises().iter().sum());
        obs::gauge_max(obs::Gauge::SimWheelPeak, scratch.wheel_peak());
    }
    let energy = scratch.cycle_energy_fj()[leak_cycle];
    let got = decode(scratch.outputs(leak_cycle + 1));
    let (pl, pr) = plaintexts[i];
    let expect = encrypt(pl, pr, key);
    assert_eq!(
        got, expect,
        "simulated ciphertext disagrees with the model at encryption {i}"
    );
    (trace, got, energy)
}

/// The bit-sliced campaign's batch partition: encryptions 0 (3-cycle
/// window) and 1 (4 cycles) run alone against the reset boundary; the
/// steady state (5 cycles) packs up to 64 encryptions per batch. A
/// pure function of `n`, so batch-level obs counters — and any
/// chunk-of-batches grouping built on top — are thread-count
/// invariant.
fn bitslice_batches(n: usize) -> Vec<(usize, usize)> {
    let mut batches: Vec<(usize, usize)> = Vec::new();
    let mut at = 0usize;
    while at < n {
        let count = if at < 2 { 1 } else { (n - at).min(64) };
        batches.push((at, count));
        at += count;
    }
    batches
}

/// Simulates one lane batch (encryptions `start..start + count`, all
/// sharing a window length) on the bit-sliced kernel and unpacks the
/// per-lane results in encryption order — byte-identical to the event
/// path at any thread count.
#[allow(clippy::too_many_arguments)]
fn run_bitslice_batch(
    sim: &BitSim,
    scratch: &mut BitScratch,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    plaintexts: &[(u8, u8)],
    start: usize,
    count: usize,
) -> Vec<(Vec<f64>, (u8, u8), f64)> {
    let h = start.min(2);
    let active = if count == 64 { !0u64 } else { (1u64 << count) - 1 };
    let key_word = |b: usize| if key >> b & 1 == 1 { active } else { 0 };
    // One packed word per input per cycle: bit l is lane l's value
    // of that input (port order pl[0..4], pr[0..6], k[0..6]).
    let mut vectors: Vec<Vec<u64>> = Vec::with_capacity(h + 3);
    for j in 0..=h {
        let mut words = vec![0u64; 16];
        for l in 0..count {
            let (pl, pr) = plaintexts[start + l - h + j];
            for b in 0..4 {
                if pl >> b & 1 == 1 {
                    words[b] |= 1 << l;
                }
            }
            for b in 0..6 {
                if pr >> b & 1 == 1 {
                    words[4 + b] |= 1 << l;
                }
            }
        }
        for b in 0..6 {
            words[10 + b] = key_word(b);
        }
        vectors.push(words);
    }
    // Flush cycles: plaintext zero, key held.
    for _ in 0..2 {
        let mut words = vec![0u64; 16];
        for b in 0..6 {
            words[10 + b] = key_word(b);
        }
        vectors.push(words);
    }

    match (target.wddl_inputs, target.glitch_free) {
        (Some(pairs), _) => sim.run_wddl(scratch, pairs, &vectors, active),
        (None, false) => sim.run_single_ended(scratch, &vectors, active),
        (None, true) => sim.run_single_ended_glitch_free(scratch, &vectors, active),
    }

    // Batch-level kernel counters: pure functions of the compiled
    // design and this batch's stimuli (pinned by
    // tests/obs_counters.rs).
    if obs::enabled() {
        obs::add(obs::Counter::SimBitsliceBatches, 1);
        obs::add(obs::Counter::SimBitsliceLanes, count as u64);
        obs::add(obs::Counter::SimBitsliceEvents, scratch.events_processed());
        obs::add(obs::Counter::SimBitsliceEvals, scratch.gate_evals());
        obs::add(obs::Counter::SimBitsliceRises, scratch.total_rises());
        obs::gauge_max(obs::Gauge::SimBitsliceWheelPeak, scratch.wheel_peak());
    }

    let leak_cycle = h + 1;
    let mut out = Vec::with_capacity(count);
    for l in 0..count {
        let i = start + l;
        let mut trace = scratch.cycle_trace(leak_cycle, l);
        if cfg.noise_sigma > 0.0 {
            add_gaussian_noise(
                &mut trace,
                cfg.noise_sigma,
                split_seed(cfg.noise_seed, i as u64),
            );
        }
        let energy = scratch.cycle_energy_fj(leak_cycle, l);
        let bit = |j: usize| match target.wddl_inputs {
            Some(_) => scratch.output_bit(leak_cycle + 1, 2 * j, l),
            None => scratch.output_bit(leak_cycle + 1, j, l),
        };
        let cl = (0..4).fold(0u8, |a, j| a | ((bit(j) as u8) << j));
        let cr = (0..6).fold(0u8, |a, j| a | ((bit(4 + j) as u8) << j));
        let (pl, pr) = plaintexts[i];
        let expect = encrypt(pl, pr, key);
        assert_eq!(
            (cl, cr),
            expect,
            "simulated ciphertext disagrees with the model at encryption {i}"
        );
        out.push((trace, (cl, cr), energy));
    }
    out
}

/// Which attack statistics a campaign analysis should produce.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisPlan {
    /// Key guesses to evaluate (the Fig. 4 module: 64).
    pub n_keys: usize,
    /// The campaign's actual key, for MTD disclosure.
    pub correct_key: u8,
    /// MTD checkpoint step; `None` skips the MTD scans.
    pub step: Option<usize>,
    /// Run the single-bit DPA.
    pub dpa: bool,
    /// Run the Hamming-weight CPA.
    pub cpa: bool,
}

/// Attack statistics of one campaign, produced identically by the
/// materialized ([`analyze_trace_set`]) and streaming
/// ([`collect_des_analysis_streaming`]) paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAnalysis {
    /// Traces analyzed.
    pub n: usize,
    /// Samples per trace.
    pub samples_per_trace: usize,
    /// Serial left-fold sum of per-encryption energies (fJ); divide by
    /// `n` for the mean.
    pub energy_sum: f64,
    /// DPA statistics, if planned.
    pub dpa: Option<DpaResult>,
    /// DPA MTD scan, if planned with a step.
    pub dpa_mtd: Option<MtdScan>,
    /// CPA statistics, if planned.
    pub cpa: Option<CpaResult>,
    /// CPA MTD scan, if planned with a step.
    pub cpa_mtd: Option<(Vec<CpaMtdPoint>, Option<usize>)>,
}

/// Runs the planned attacks over a materialized trace set — the
/// classic path: each attack walks the full matrix.
///
/// # Errors
///
/// Propagates the typed input errors of the batch attacks.
pub fn analyze_trace_set(
    set: &TraceSet,
    plan: &AnalysisPlan,
) -> Result<CampaignAnalysis, AnalysisError> {
    let energy_sum = set.energies.iter().sum::<f64>();
    let mut analysis = CampaignAnalysis {
        n: set.traces.len(),
        samples_per_trace: set.samples_per_trace,
        energy_sum,
        dpa: None,
        dpa_mtd: None,
        cpa: None,
        cpa_mtd: None,
    };
    if plan.dpa {
        analysis.dpa = Some(dpa_attack(&set.traces, plan.n_keys, set.selector())?);
        if let Some(step) = plan.step {
            analysis.dpa_mtd = Some(mtd_scan(
                &set.traces,
                plan.n_keys,
                plan.correct_key,
                step,
                set.selector(),
            )?);
        }
    }
    if plan.cpa {
        let model = |k: u8, i: usize| {
            let (cl, cr) = set.ciphertexts[i];
            sbox_hamming_model(k, cl, cr)
        };
        analysis.cpa = Some(cpa_attack(&set.traces, plan.n_keys, model)?);
        if let Some(step) = plan.step {
            analysis.cpa_mtd = Some(cpa_mtd_scan(
                &set.traces,
                plan.n_keys,
                plan.correct_key,
                step,
                model,
            )?);
        }
    }
    Ok(analysis)
}

/// Running accumulators of a streaming campaign analysis, fed one
/// [`TraceBlock`] at a time.
struct StreamSinks {
    dpa: Option<DpaStream>,
    cpa: Option<CpaStream>,
    energy_sum: f64,
    writer: Option<StoreWriter>,
}

impl StreamSinks {
    fn build(plan: &AnalysisPlan, writer: Option<StoreWriter>) -> Result<Self, AnalysisError> {
        let make_dpa = || match plan.step {
            Some(step) => DpaStream::with_step(plan.n_keys, step),
            None => DpaStream::new(plan.n_keys),
        };
        let make_cpa = || match plan.step {
            Some(step) => CpaStream::with_step(plan.n_keys, step),
            None => CpaStream::new(plan.n_keys),
        };
        Ok(StreamSinks {
            dpa: if plan.dpa { Some(make_dpa()?) } else { None },
            cpa: if plan.cpa { Some(make_cpa()?) } else { None },
            energy_sum: 0.0,
            writer,
        })
    }

    fn consume(&mut self, block: &TraceBlock) -> Result<(), CampaignError> {
        if let Some(dpa) = self.dpa.as_mut() {
            dpa.push_block(&block.traces, |k, j| {
                let (cl, cr) = block.ciphertexts[j];
                selection(k, cl, cr)
            })?;
        }
        if let Some(cpa) = self.cpa.as_mut() {
            cpa.push_block(&block.traces, |k, j| {
                let (cl, cr) = block.ciphertexts[j];
                sbox_hamming_model(k, cl, cr)
            })?;
        }
        // Serial left fold in trace order: bitwise what
        // `energies.iter().sum::<f64>()` computes over the full set.
        for &e in &block.energies {
            self.energy_sum += e;
        }
        obs::add(obs::Counter::DpaTraces, block.len() as u64);
        if let Some(w) = self.writer.as_mut() {
            w.append_block(block)?;
        }
        Ok(())
    }

    fn finish(
        mut self,
        plan: &AnalysisPlan,
        n: usize,
        samples_per_trace: usize,
    ) -> Result<CampaignAnalysis, CampaignError> {
        if let Some(w) = self.writer.take() {
            w.finish()?;
        }
        Ok(CampaignAnalysis {
            n,
            samples_per_trace,
            energy_sum: self.energy_sum,
            dpa: self.dpa.as_ref().map(DpaStream::result),
            dpa_mtd: match (&mut self.dpa, plan.step) {
                (Some(s), Some(_)) => Some(s.mtd(plan.correct_key)),
                _ => None,
            },
            cpa: self.cpa.as_ref().map(CpaStream::result),
            cpa_mtd: match (&mut self.cpa, plan.step) {
                (Some(s), Some(_)) => Some(s.mtd(plan.correct_key)),
                _ => None,
            },
        })
    }
}

fn into_block(collected: Vec<(Vec<f64>, (u8, u8), f64)>) -> TraceBlock {
    let mut block = TraceBlock {
        traces: Vec::with_capacity(collected.len()),
        ciphertexts: Vec::with_capacity(collected.len()),
        energies: Vec::with_capacity(collected.len()),
    };
    for (trace, ct, energy) in collected {
        block.traces.push(trace);
        block.ciphertexts.push(ct);
        block.energies.push(energy);
    }
    block
}

/// Runs the campaign and the planned attacks in one fused pass:
/// windows are simulated in chunks of ~`chunk` encryptions (parallel
/// across the chunk), each chunk's traces flow straight into the
/// streaming accumulators, and the chunk is dropped before the next
/// one is simulated. Peak memory is O(chunk × points) for the block
/// in flight plus O(points × guesses) of accumulator state — the full
/// trace matrix never exists.
///
/// With `store_dir`, every block is also appended to an out-of-core
/// [`crate::store`] chunk store for later replay
/// ([`analyze_trace_store`]).
///
/// The returned analysis is byte-identical (`f64::to_bits`) to
/// materializing the same campaign and calling [`analyze_trace_set`],
/// at any thread count and any `chunk` size.
///
/// # Errors
///
/// [`CampaignError`] on simulation, analysis-input, or store
/// failures.
///
/// # Panics
///
/// Panics if `key >= 64` (caller contract), or if the simulated
/// hardware disagrees with the reference model.
#[allow(clippy::too_many_arguments)]
pub fn collect_des_analysis_streaming(
    program: &CampaignProgram,
    target: &DesTarget<'_>,
    cfg: &SimConfig,
    key: u8,
    n: usize,
    seed: u64,
    plan: &AnalysisPlan,
    chunk: usize,
    store_dir: Option<&Path>,
) -> Result<CampaignAnalysis, CampaignError> {
    assert!(key < 64);
    cfg.validate_backend(program.backend())?;
    let _campaign = obs::span("dpa.campaign.stream");
    let plaintexts = draw_plaintexts(n, seed);
    let chunk = chunk.max(1);
    let writer = match store_dir {
        Some(dir) => Some(StoreWriter::create(dir, cfg.samples_per_cycle)?),
        None => None,
    };
    let mut sinks = StreamSinks::build(plan, writer)?;

    match program {
        CampaignProgram::Event(comp) => {
            let mut at = 0usize;
            while at < n {
                let len = chunk.min(n - at);
                let collected = par_map_range_with(len, EngineScratch::new, |scratch, j| {
                    run_event_window(comp, scratch, target, cfg, key, &plaintexts, at + j)
                });
                sinks.consume(&into_block(collected))?;
                at += len;
            }
        }
        CampaignProgram::Bitslice(sim) => {
            // Group consecutive lane batches until ~chunk encryptions;
            // the grouping is a pure function of (n, chunk), so blocks
            // — and everything folded from them — are identical at any
            // thread count.
            let batches = bitslice_batches(n);
            let mut bi = 0usize;
            while bi < batches.len() {
                let mut end = bi;
                let mut lanes = 0usize;
                while end < batches.len() && (lanes == 0 || lanes + batches[end].1 <= chunk) {
                    lanes += batches[end].1;
                    end += 1;
                }
                let group = &batches[bi..end];
                let per_batch =
                    par_map_range_with(group.len(), BitScratch::new, |scratch, gi| {
                        let (start, count) = group[gi];
                        run_bitslice_batch(
                            sim, scratch, target, cfg, key, &plaintexts, start, count,
                        )
                    });
                sinks.consume(&into_block(per_batch.into_iter().flatten().collect()))?;
                bi = end;
            }
        }
    }

    sinks.finish(plan, n, cfg.samples_per_cycle)
}

/// Replays a committed trace store through the streaming accumulators
/// — re-attacking a recorded campaign without re-simulating, holding
/// one chunk in memory at a time.
///
/// # Errors
///
/// [`CampaignError`] on store or analysis-input failures.
pub fn analyze_trace_store(
    store: &TraceStore,
    plan: &AnalysisPlan,
) -> Result<CampaignAnalysis, CampaignError> {
    let _span = obs::span("dpa.campaign.replay");
    let mut sinks = StreamSinks::build(plan, None)?;
    for block in store.blocks() {
        sinks.consume(&block?)?;
    }
    let n = store.n_traces();
    sinks.finish(plan, n, store.samples_per_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_crypto::dpa_module::des_dpa_design;
    use secflow_synth::{map_design, MapOptions};

    #[test]
    fn single_ended_traces_match_model() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let target = DesTarget {
            netlist: &nl,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        };
        let cfg = SimConfig {
            samples_per_cycle: 100,
            ..Default::default()
        };
        let set = collect_des_traces(&target, &cfg, 46, 20, 1).unwrap();
        assert_eq!(set.traces.len(), 20);
        assert_eq!(set.ciphertexts.len(), 20);
        assert!(set.energies.iter().all(|&e| e > 0.0));
        // Cross-check one ciphertext by inverting the datapath.
        let (cl, cr) = set.ciphertexts[3];
        assert!(cl < 16 && cr < 64);
    }

    #[test]
    fn trace_collection_is_deterministic() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let target = DesTarget {
            netlist: &nl,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        };
        let cfg = SimConfig {
            samples_per_cycle: 50,
            ..Default::default()
        };
        let a = collect_des_traces(&target, &cfg, 46, 10, 42).unwrap();
        let b = collect_des_traces(&target, &cfg, 46, 10, 42).unwrap();
        assert_eq!(a.ciphertexts, b.ciphertexts);
        assert_eq!(a.traces, b.traces);
    }

    fn analysis_bits(a: &CampaignAnalysis) -> Vec<u64> {
        let mut bits = vec![a.energy_sum.to_bits()];
        if let Some(d) = &a.dpa {
            bits.push(d.margin.to_bits());
            bits.extend(d.guesses.iter().map(|g| g.peak.to_bits()));
            bits.extend(d.guesses.iter().map(|g| g.p2p.to_bits()));
        }
        if let Some(m) = &a.dpa_mtd {
            for p in &m.points {
                bits.push(p.correct_peak.to_bits());
                bits.push(p.best_wrong_peak.to_bits());
            }
        }
        if let Some(c) = &a.cpa {
            bits.push(c.margin.to_bits());
            bits.extend(c.guesses.iter().map(|g| g.peak_corr.to_bits()));
        }
        if let Some((pts, _)) = &a.cpa_mtd {
            for p in pts {
                bits.push(p.correct_corr.to_bits());
                bits.push(p.best_wrong_corr.to_bits());
            }
        }
        bits
    }

    #[test]
    fn streaming_analysis_matches_materialized_on_both_backends() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let plan = AnalysisPlan {
            n_keys: 64,
            correct_key: 46,
            step: Some(10),
            dpa: true,
            cpa: true,
        };
        for backend in [SimBackend::Event, SimBackend::Bitslice] {
            let target = DesTarget {
                netlist: &nl,
                lib: &lib,
                parasitics: None,
                wddl_inputs: None,
                glitch_free: false,
                backend,
            };
            let program = CampaignProgram::build(&target, &cfg).unwrap();
            let set =
                collect_des_traces_with(&program, &target, &cfg, 46, 90, 7).unwrap();
            let batch = analyze_trace_set(&set, &plan).unwrap();
            for chunk in [17, 64, 1000] {
                let streamed = collect_des_analysis_streaming(
                    &program, &target, &cfg, 46, 90, 7, &plan, chunk, None,
                )
                .unwrap();
                assert_eq!(
                    analysis_bits(&streamed),
                    analysis_bits(&batch),
                    "backend {backend:?} chunk {chunk}"
                );
                assert_eq!(streamed, batch);
            }
        }
    }

    #[test]
    fn trace_store_replay_matches_fused_analysis() {
        let design = des_dpa_design();
        let lib = Library::lib180();
        let nl = map_design(&design, &lib, &MapOptions::default()).unwrap();
        let target = DesTarget {
            netlist: &nl,
            lib: &lib,
            parasitics: None,
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Bitslice,
        };
        let cfg = SimConfig {
            samples_per_cycle: 30,
            ..Default::default()
        };
        let plan = AnalysisPlan {
            n_keys: 64,
            correct_key: 46,
            step: Some(20),
            dpa: true,
            cpa: false,
        };
        let program = CampaignProgram::build(&target, &cfg).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "secflow-harness-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fused = collect_des_analysis_streaming(
            &program, &target, &cfg, 46, 70, 3, &plan, 32, Some(&dir),
        )
        .unwrap();
        let store = TraceStore::open(&dir).unwrap();
        assert_eq!(store.n_traces(), 70);
        let replayed = analyze_trace_store(&store, &plan).unwrap();
        assert_eq!(replayed, fused);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
