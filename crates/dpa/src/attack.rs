//! Differential Power Analysis on a set of supply-current traces.
//!
//! The attack is parallel over key guesses (`secflow-exec`): each
//! guess partitions and sums the traces independently, always walking
//! them in input order, so the differential statistics are
//! byte-identical at any thread count.

use secflow_exec::par_map_range;

/// Per-key-guess attack statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyGuessResult {
    /// The key guess.
    pub key: u8,
    /// Maximum absolute value of the differential trace.
    pub peak: f64,
    /// Peak-to-peak value of the differential trace (the quantity of
    /// Fig. 6 bottom).
    pub p2p: f64,
}

/// The outcome of a DPA over all key guesses.
#[derive(Debug, Clone, PartialEq)]
pub struct DpaResult {
    /// Statistics per key guess, indexed by key.
    pub guesses: Vec<KeyGuessResult>,
    /// The key with the largest differential peak.
    pub best_key: u8,
    /// Ratio of the best peak to the second-best peak (1.0 = no
    /// discrimination).
    pub margin: f64,
}

impl DpaResult {
    /// True if `key` is the unique maximizer with a margin of at least
    /// `min_margin`.
    pub fn discloses(&self, key: u8, min_margin: f64) -> bool {
        self.best_key == key && self.margin >= min_margin
    }
}

/// Partition sums of one key guess: sums of traces with selection
/// bit 1 / 0. Each parallel work item owns one of these and walks the
/// traces in input order.
struct KeySums {
    key: u8,
    samples: usize,
    sum1: Vec<f64>,
    sum0: Vec<f64>,
    n1: usize,
    n0: usize,
}

impl KeySums {
    fn new(key: u8, samples: usize) -> Self {
        KeySums {
            key,
            samples,
            sum1: vec![0.0; samples],
            sum0: vec![0.0; samples],
            n1: 0,
            n0: 0,
        }
    }

    fn add(&mut self, trace: &[f64], bit: bool) {
        assert_eq!(trace.len(), self.samples);
        if bit {
            for (a, &t) in self.sum1.iter_mut().zip(trace) {
                *a += t;
            }
            self.n1 += 1;
        } else {
            for (a, &t) in self.sum0.iter_mut().zip(trace) {
                *a += t;
            }
            self.n0 += 1;
        }
    }

    /// Statistics of the differential trace in the current state.
    fn guess(&self) -> KeyGuessResult {
        let (mut peak, mut lo, mut hi) = (0.0f64, f64::INFINITY, f64::NEG_INFINITY);
        if self.n1 > 0 && self.n0 > 0 {
            for s in 0..self.samples {
                let d = self.sum1[s] / self.n1 as f64 - self.sum0[s] / self.n0 as f64;
                peak = peak.max(d.abs());
                lo = lo.min(d);
                hi = hi.max(d);
            }
        } else {
            lo = 0.0;
            hi = 0.0;
        }
        KeyGuessResult {
            key: self.key,
            peak,
            p2p: hi - lo,
        }
    }
}

/// Best key and margin over a full set of guesses (an empty guess set
/// degenerates to key 0 with zero margin rather than panicking).
fn finalize(guesses: Vec<KeyGuessResult>) -> DpaResult {
    let (best_key, best_peak) = guesses
        .iter()
        .max_by(|a, b| a.peak.total_cmp(&b.peak))
        .map_or((0, 0.0), |g| (g.key, g.peak));
    let second = guesses
        .iter()
        .filter(|g| g.key != best_key)
        .map(|g| g.peak)
        .fold(0.0f64, f64::max);
    let margin = if second > 0.0 {
        best_peak / second
    } else {
        f64::INFINITY
    };
    DpaResult {
        guesses,
        best_key,
        margin,
    }
}

/// Runs a DPA over `traces` with the given selection function.
///
/// `select(key, trace_index)` is the predicted selection bit `D(K, C)`
/// for the trace's known ciphertext under key guess `key`.
///
/// # Panics
///
/// Panics if traces have inconsistent lengths or `n_keys == 0`.
pub fn dpa_attack(
    traces: &[Vec<f64>],
    n_keys: usize,
    select: impl Fn(u8, usize) -> bool + Sync,
) -> DpaResult {
    assert!(n_keys > 0);
    let _span = secflow_obs::span("dpa.attack");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let samples = traces.first().map_or(0, Vec::len);
    let guesses = par_map_range(n_keys, |k| {
        let mut sums = KeySums::new(k as u8, samples);
        for (i, t) in traces.iter().enumerate() {
            sums.add(t, select(k as u8, i));
        }
        sums.guess()
    });
    finalize(guesses)
}

/// One point of the MTD scan: attack statistics after the first `n`
/// traces.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdPoint {
    /// Number of traces used.
    pub traces: usize,
    /// Whether the correct key was the unique best guess.
    pub disclosed: bool,
    /// Peak of the correct key's differential trace.
    pub correct_peak: f64,
    /// Largest peak among wrong guesses.
    pub best_wrong_peak: f64,
}

/// The result of an MTD scan.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdScan {
    /// Scan points at each checkpoint.
    pub points: Vec<MtdPoint>,
    /// Measurements to disclosure: the smallest checkpoint from which
    /// the correct key stays the best guess through the end of the
    /// scan; `None` if the key is not disclosed.
    pub mtd: Option<usize>,
}

/// Scans disclosure as a function of trace count (Fig. 6 top):
/// evaluates the attack at every `step` traces and reports the MTD.
///
/// # Panics
///
/// Panics if `step == 0` or `n_keys == 0`.
pub fn mtd_scan(
    traces: &[Vec<f64>],
    n_keys: usize,
    correct_key: u8,
    step: usize,
    select: impl Fn(u8, usize) -> bool + Sync,
) -> MtdScan {
    assert!(step > 0 && n_keys > 0);
    let _span = secflow_obs::span("dpa.mtd_scan");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let samples = traces.first().map_or(0, Vec::len);
    let checkpoints: Vec<usize> = (1..=traces.len())
        .filter(|&n| n % step == 0 || n == traces.len())
        .collect();
    // Each key guess accumulates over the whole scan independently,
    // emitting its differential peak at every checkpoint.
    let peaks_per_key: Vec<Vec<f64>> = par_map_range(n_keys, |k| {
        let mut sums = KeySums::new(k as u8, samples);
        let mut peaks = Vec::with_capacity(checkpoints.len());
        let mut next = 0;
        for (i, t) in traces.iter().enumerate() {
            sums.add(t, select(k as u8, i));
            if next < checkpoints.len() && checkpoints[next] == i + 1 {
                peaks.push(sums.guess().peak);
                next += 1;
            }
        }
        peaks
    });
    let mut points = Vec::with_capacity(checkpoints.len());
    for (c, &n) in checkpoints.iter().enumerate() {
        let correct_peak = peaks_per_key[correct_key as usize][c];
        let best_wrong_peak = peaks_per_key
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != correct_key as usize)
            .map(|(_, peaks)| peaks[c])
            .fold(0.0f64, f64::max);
        points.push(MtdPoint {
            traces: n,
            // A strictly larger correct peak implies the correct key
            // is also the argmax, so this matches the old
            // `best_key == correct && correct > wrong` condition.
            disclosed: correct_peak > best_wrong_peak,
            correct_peak,
            best_wrong_peak,
        });
    }
    // MTD: first checkpoint after which disclosure is stable.
    let mut mtd = None;
    for p in points.iter().rev() {
        if p.disclosed {
            mtd = Some(p.traces);
        } else {
            break;
        }
    }
    MtdScan { points, mtd }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic leakage: sample 3 leaks the selection bit under key 5.
    fn synthetic_traces(n: usize, leak: f64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut data = Vec::new();
        let mut state = 99u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) & 0x3f) as u8;
            data.push(c);
            let bit = sel(5, c);
            let mut t = vec![1.0; 8];
            t[3] += if bit { leak } else { 0.0 };
            // Deterministic pseudo-noise.
            t[5] += ((state >> 17) & 7) as f64 * 0.01;
            traces.push(t);
        }
        (traces, data)
    }

    /// The DES S-box guarantees the selection bits of distinct keys
    /// decorrelate — no ghost peaks.
    fn sel(key: u8, c: u8) -> bool {
        secflow_crypto::des::sbox(0, (c ^ key) & 63) & 1 == 1
    }

    #[test]
    fn attack_recovers_leaky_key() {
        let (traces, data) = synthetic_traces(400, 0.5);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        assert_eq!(r.best_key, 5);
        assert!(r.margin > 1.5, "margin {}", r.margin);
        assert!(r.discloses(5, 1.2));
    }

    #[test]
    fn attack_fails_without_leak() {
        let (traces, data) = synthetic_traces(400, 0.0);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        // No leakage: the best key is noise-determined and the margin
        // small.
        assert!(r.margin < 5.0);
        assert!(!r.discloses(5, 5.0));
    }

    #[test]
    fn mtd_scan_finds_disclosure_point() {
        let (traces, data) = synthetic_traces(600, 0.4);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i]));
        let mtd = scan.mtd.expect("key should be disclosed");
        assert!(mtd <= 600);
        // Once disclosed, later points stay disclosed.
        let from = scan.points.iter().position(|p| p.traces == mtd).unwrap();
        assert!(scan.points[from..].iter().all(|p| p.disclosed));
    }

    #[test]
    fn mtd_none_when_secure() {
        let (traces, data) = synthetic_traces(300, 0.0);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i]));
        // Without leakage the final checkpoint almost surely has the
        // wrong best key; if it happens to match, MTD must still be
        // late.
        if let Some(m) = scan.mtd {
            assert!(m > 100);
        }
    }

    #[test]
    fn p2p_reported_per_key() {
        let (traces, data) = synthetic_traces(200, 0.6);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        assert_eq!(r.guesses.len(), 16);
        let correct = &r.guesses[5];
        let wrong_max = r
            .guesses
            .iter()
            .filter(|g| g.key != 5)
            .map(|g| g.p2p)
            .fold(0.0f64, f64::max);
        assert!(correct.p2p > wrong_max);
    }
}
