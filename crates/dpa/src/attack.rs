//! Differential Power Analysis on a set of supply-current traces.

/// Per-key-guess attack statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyGuessResult {
    /// The key guess.
    pub key: u8,
    /// Maximum absolute value of the differential trace.
    pub peak: f64,
    /// Peak-to-peak value of the differential trace (the quantity of
    /// Fig. 6 bottom).
    pub p2p: f64,
}

/// The outcome of a DPA over all key guesses.
#[derive(Debug, Clone, PartialEq)]
pub struct DpaResult {
    /// Statistics per key guess, indexed by key.
    pub guesses: Vec<KeyGuessResult>,
    /// The key with the largest differential peak.
    pub best_key: u8,
    /// Ratio of the best peak to the second-best peak (1.0 = no
    /// discrimination).
    pub margin: f64,
}

impl DpaResult {
    /// True if `key` is the unique maximizer with a margin of at least
    /// `min_margin`.
    pub fn discloses(&self, key: u8, min_margin: f64) -> bool {
        self.best_key == key && self.margin >= min_margin
    }
}

/// Incremental per-key partition sums, so the MTD scan reuses work.
struct Accumulator {
    n_keys: usize,
    samples: usize,
    /// Per key: sums of traces with selection bit 1 / 0.
    sum1: Vec<Vec<f64>>,
    sum0: Vec<Vec<f64>>,
    n1: Vec<usize>,
    n0: Vec<usize>,
}

impl Accumulator {
    fn new(n_keys: usize, samples: usize) -> Self {
        Accumulator {
            n_keys,
            samples,
            sum1: vec![vec![0.0; samples]; n_keys],
            sum0: vec![vec![0.0; samples]; n_keys],
            n1: vec![0; n_keys],
            n0: vec![0; n_keys],
        }
    }

    fn add(&mut self, trace: &[f64], select: impl Fn(u8) -> bool) {
        assert_eq!(trace.len(), self.samples);
        for k in 0..self.n_keys {
            if select(k as u8) {
                for (a, &t) in self.sum1[k].iter_mut().zip(trace) {
                    *a += t;
                }
                self.n1[k] += 1;
            } else {
                for (a, &t) in self.sum0[k].iter_mut().zip(trace) {
                    *a += t;
                }
                self.n0[k] += 1;
            }
        }
    }

    fn result(&self) -> DpaResult {
        let mut guesses = Vec::with_capacity(self.n_keys);
        for k in 0..self.n_keys {
            let (mut peak, mut lo, mut hi) = (0.0f64, f64::INFINITY, f64::NEG_INFINITY);
            if self.n1[k] > 0 && self.n0[k] > 0 {
                for s in 0..self.samples {
                    let d = self.sum1[k][s] / self.n1[k] as f64
                        - self.sum0[k][s] / self.n0[k] as f64;
                    peak = peak.max(d.abs());
                    lo = lo.min(d);
                    hi = hi.max(d);
                }
            } else {
                lo = 0.0;
                hi = 0.0;
            }
            guesses.push(KeyGuessResult {
                key: k as u8,
                peak,
                p2p: hi - lo,
            });
        }
        let best = guesses
            .iter()
            .max_by(|a, b| a.peak.total_cmp(&b.peak))
            .expect("at least one key guess");
        let best_key = best.key;
        let second = guesses
            .iter()
            .filter(|g| g.key != best_key)
            .map(|g| g.peak)
            .fold(0.0f64, f64::max);
        let margin = if second > 0.0 {
            best.peak / second
        } else {
            f64::INFINITY
        };
        DpaResult {
            guesses,
            best_key,
            margin,
        }
    }
}

/// Runs a DPA over `traces` with the given selection function.
///
/// `select(key, trace_index)` is the predicted selection bit `D(K, C)`
/// for the trace's known ciphertext under key guess `key`.
///
/// # Panics
///
/// Panics if traces have inconsistent lengths or `n_keys == 0`.
pub fn dpa_attack(
    traces: &[Vec<f64>],
    n_keys: usize,
    select: impl Fn(u8, usize) -> bool,
) -> DpaResult {
    assert!(n_keys > 0);
    let samples = traces.first().map_or(0, Vec::len);
    let mut acc = Accumulator::new(n_keys, samples);
    for (i, t) in traces.iter().enumerate() {
        acc.add(t, |k| select(k, i));
    }
    acc.result()
}

/// One point of the MTD scan: attack statistics after the first `n`
/// traces.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdPoint {
    /// Number of traces used.
    pub traces: usize,
    /// Whether the correct key was the unique best guess.
    pub disclosed: bool,
    /// Peak of the correct key's differential trace.
    pub correct_peak: f64,
    /// Largest peak among wrong guesses.
    pub best_wrong_peak: f64,
}

/// The result of an MTD scan.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdScan {
    /// Scan points at each checkpoint.
    pub points: Vec<MtdPoint>,
    /// Measurements to disclosure: the smallest checkpoint from which
    /// the correct key stays the best guess through the end of the
    /// scan; `None` if the key is not disclosed.
    pub mtd: Option<usize>,
}

/// Scans disclosure as a function of trace count (Fig. 6 top):
/// evaluates the attack at every `step` traces and reports the MTD.
///
/// # Panics
///
/// Panics if `step == 0` or `n_keys == 0`.
pub fn mtd_scan(
    traces: &[Vec<f64>],
    n_keys: usize,
    correct_key: u8,
    step: usize,
    select: impl Fn(u8, usize) -> bool,
) -> MtdScan {
    assert!(step > 0 && n_keys > 0);
    let samples = traces.first().map_or(0, Vec::len);
    let mut acc = Accumulator::new(n_keys, samples);
    let mut points = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        acc.add(t, |k| select(k, i));
        let n = i + 1;
        if n % step == 0 || n == traces.len() {
            let r = acc.result();
            let correct_peak = r.guesses[correct_key as usize].peak;
            let best_wrong_peak = r
                .guesses
                .iter()
                .filter(|g| g.key != correct_key)
                .map(|g| g.peak)
                .fold(0.0f64, f64::max);
            points.push(MtdPoint {
                traces: n,
                disclosed: r.best_key == correct_key && correct_peak > best_wrong_peak,
                correct_peak,
                best_wrong_peak,
            });
        }
    }
    // MTD: first checkpoint after which disclosure is stable.
    let mut mtd = None;
    for p in points.iter().rev() {
        if p.disclosed {
            mtd = Some(p.traces);
        } else {
            break;
        }
    }
    MtdScan { points, mtd }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic leakage: sample 3 leaks the selection bit under key 5.
    fn synthetic_traces(n: usize, leak: f64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut data = Vec::new();
        let mut state = 99u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) & 0x3f) as u8;
            data.push(c);
            let bit = sel(5, c);
            let mut t = vec![1.0; 8];
            t[3] += if bit { leak } else { 0.0 };
            // Deterministic pseudo-noise.
            t[5] += ((state >> 17) & 7) as f64 * 0.01;
            traces.push(t);
        }
        (traces, data)
    }

    /// The DES S-box guarantees the selection bits of distinct keys
    /// decorrelate — no ghost peaks.
    fn sel(key: u8, c: u8) -> bool {
        secflow_crypto::des::sbox(0, (c ^ key) & 63) & 1 == 1
    }

    #[test]
    fn attack_recovers_leaky_key() {
        let (traces, data) = synthetic_traces(400, 0.5);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        assert_eq!(r.best_key, 5);
        assert!(r.margin > 1.5, "margin {}", r.margin);
        assert!(r.discloses(5, 1.2));
    }

    #[test]
    fn attack_fails_without_leak() {
        let (traces, data) = synthetic_traces(400, 0.0);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        // No leakage: the best key is noise-determined and the margin
        // small.
        assert!(r.margin < 5.0);
        assert!(!r.discloses(5, 5.0));
    }

    #[test]
    fn mtd_scan_finds_disclosure_point() {
        let (traces, data) = synthetic_traces(600, 0.4);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i]));
        let mtd = scan.mtd.expect("key should be disclosed");
        assert!(mtd <= 600);
        // Once disclosed, later points stay disclosed.
        let from = scan.points.iter().position(|p| p.traces == mtd).unwrap();
        assert!(scan.points[from..].iter().all(|p| p.disclosed));
    }

    #[test]
    fn mtd_none_when_secure() {
        let (traces, data) = synthetic_traces(300, 0.0);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i]));
        // Without leakage the final checkpoint almost surely has the
        // wrong best key; if it happens to match, MTD must still be
        // late.
        if let Some(m) = scan.mtd {
            assert!(m > 100);
        }
    }

    #[test]
    fn p2p_reported_per_key() {
        let (traces, data) = synthetic_traces(200, 0.6);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i]));
        assert_eq!(r.guesses.len(), 16);
        let correct = &r.guesses[5];
        let wrong_max = r
            .guesses
            .iter()
            .filter(|g| g.key != 5)
            .map(|g| g.p2p)
            .fold(0.0f64, f64::max);
        assert!(correct.p2p > wrong_max);
    }
}
