//! Differential Power Analysis on a set of supply-current traces.
//!
//! The attack is parallel over key guesses (`secflow-exec`): each
//! guess partitions and sums the traces independently, always walking
//! them in input order, so the differential statistics are
//! byte-identical at any thread count.
//!
//! The batch entry points here are thin wrappers over
//! [`crate::streaming::DpaStream`] — the whole slice is pushed as one
//! block — so the batch and streaming paths share one accumulator
//! implementation and agree bit for bit by construction.

use crate::error::AnalysisError;
use crate::streaming::DpaStream;

/// Per-key-guess attack statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyGuessResult {
    /// The key guess.
    pub key: u8,
    /// Maximum absolute value of the differential trace.
    pub peak: f64,
    /// Peak-to-peak value of the differential trace (the quantity of
    /// Fig. 6 bottom).
    pub p2p: f64,
}

/// The outcome of a DPA over all key guesses.
#[derive(Debug, Clone, PartialEq)]
pub struct DpaResult {
    /// Statistics per key guess, indexed by key.
    pub guesses: Vec<KeyGuessResult>,
    /// The key with the largest differential peak.
    pub best_key: u8,
    /// Ratio of the best peak to the second-best peak (1.0 = no
    /// discrimination).
    pub margin: f64,
}

impl DpaResult {
    /// True if `key` is the unique maximizer with a margin of at least
    /// `min_margin`.
    pub fn discloses(&self, key: u8, min_margin: f64) -> bool {
        self.best_key == key && self.margin >= min_margin
    }
}

/// Best key and margin over a full set of guesses (an empty guess set
/// degenerates to key 0 with zero margin rather than panicking).
pub(crate) fn finalize(guesses: Vec<KeyGuessResult>) -> DpaResult {
    let (best_key, best_peak) = guesses
        .iter()
        .max_by(|a, b| a.peak.total_cmp(&b.peak))
        .map_or((0, 0.0), |g| (g.key, g.peak));
    let second = guesses
        .iter()
        .filter(|g| g.key != best_key)
        .map(|g| g.peak)
        .fold(0.0f64, f64::max);
    let margin = if second > 0.0 {
        best_peak / second
    } else {
        f64::INFINITY
    };
    DpaResult {
        guesses,
        best_key,
        margin,
    }
}

/// Runs a DPA over `traces` with the given selection function.
///
/// `select(key, trace_index)` is the predicted selection bit `D(K, C)`
/// for the trace's known ciphertext under key guess `key`.
///
/// # Errors
///
/// [`AnalysisError::NoKeyGuesses`] if `n_keys == 0`;
/// [`AnalysisError::InconsistentTraceLength`] if traces have unequal
/// lengths.
pub fn dpa_attack(
    traces: &[Vec<f64>],
    n_keys: usize,
    select: impl Fn(u8, usize) -> bool + Sync,
) -> Result<DpaResult, AnalysisError> {
    let _span = secflow_obs::span("dpa.attack");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let mut stream = DpaStream::new(n_keys)?;
    stream.push_block(traces, |k, i| select(k, i))?;
    Ok(stream.result())
}

/// One point of the MTD scan: attack statistics after the first `n`
/// traces.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdPoint {
    /// Number of traces used.
    pub traces: usize,
    /// Whether the correct key was the unique best guess.
    pub disclosed: bool,
    /// Peak of the correct key's differential trace.
    pub correct_peak: f64,
    /// Largest peak among wrong guesses.
    pub best_wrong_peak: f64,
}

/// The result of an MTD scan.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdScan {
    /// Scan points at each checkpoint.
    pub points: Vec<MtdPoint>,
    /// Measurements to disclosure: the smallest checkpoint from which
    /// the correct key stays the best guess through the end of the
    /// scan; `None` if the key is not disclosed.
    pub mtd: Option<usize>,
}

/// Scans disclosure as a function of trace count (Fig. 6 top):
/// evaluates the attack at every `step` traces and reports the MTD.
///
/// # Errors
///
/// [`AnalysisError::ZeroStep`] if `step == 0`, plus the
/// [`dpa_attack`] input errors.
pub fn mtd_scan(
    traces: &[Vec<f64>],
    n_keys: usize,
    correct_key: u8,
    step: usize,
    select: impl Fn(u8, usize) -> bool + Sync,
) -> Result<MtdScan, AnalysisError> {
    let _span = secflow_obs::span("dpa.mtd_scan");
    secflow_obs::add(secflow_obs::Counter::DpaGuesses, n_keys as u64);
    let mut stream = DpaStream::with_step(n_keys, step)?;
    stream.push_block(traces, |k, i| select(k, i))?;
    Ok(stream.mtd(correct_key))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic leakage: sample 3 leaks the selection bit under key 5.
    fn synthetic_traces(n: usize, leak: f64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut traces = Vec::new();
        let mut data = Vec::new();
        let mut state = 99u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) & 0x3f) as u8;
            data.push(c);
            let bit = sel(5, c);
            let mut t = vec![1.0; 8];
            t[3] += if bit { leak } else { 0.0 };
            // Deterministic pseudo-noise.
            t[5] += ((state >> 17) & 7) as f64 * 0.01;
            traces.push(t);
        }
        (traces, data)
    }

    /// The DES S-box guarantees the selection bits of distinct keys
    /// decorrelate — no ghost peaks.
    fn sel(key: u8, c: u8) -> bool {
        secflow_crypto::des::sbox(0, (c ^ key) & 63) & 1 == 1
    }

    #[test]
    fn attack_recovers_leaky_key() {
        let (traces, data) = synthetic_traces(400, 0.5);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i])).unwrap();
        assert_eq!(r.best_key, 5);
        assert!(r.margin > 1.5, "margin {}", r.margin);
        assert!(r.discloses(5, 1.2));
    }

    #[test]
    fn attack_fails_without_leak() {
        let (traces, data) = synthetic_traces(400, 0.0);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i])).unwrap();
        // No leakage: the best key is noise-determined and the margin
        // small.
        assert!(r.margin < 5.0);
        assert!(!r.discloses(5, 5.0));
    }

    #[test]
    fn mtd_scan_finds_disclosure_point() {
        let (traces, data) = synthetic_traces(600, 0.4);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i])).unwrap();
        let mtd = scan.mtd.expect("key should be disclosed");
        assert!(mtd <= 600);
        // Once disclosed, later points stay disclosed.
        let from = scan.points.iter().position(|p| p.traces == mtd).unwrap();
        assert!(scan.points[from..].iter().all(|p| p.disclosed));
    }

    #[test]
    fn mtd_none_when_secure() {
        let (traces, data) = synthetic_traces(300, 0.0);
        let scan = mtd_scan(&traces, 16, 5, 50, |k, i| sel(k, data[i])).unwrap();
        // Without leakage the final checkpoint almost surely has the
        // wrong best key; if it happens to match, MTD must still be
        // late.
        if let Some(m) = scan.mtd {
            assert!(m > 100);
        }
    }

    #[test]
    fn p2p_reported_per_key() {
        let (traces, data) = synthetic_traces(200, 0.6);
        let r = dpa_attack(&traces, 16, |k, i| sel(k, data[i])).unwrap();
        assert_eq!(r.guesses.len(), 16);
        let correct = &r.guesses[5];
        let wrong_max = r
            .guesses
            .iter()
            .filter(|g| g.key != 5)
            .map(|g| g.p2p)
            .fold(0.0f64, f64::max);
        assert!(correct.p2p > wrong_max);
    }

    #[test]
    fn bad_input_yields_typed_errors() {
        let (traces, data) = synthetic_traces(10, 0.5);
        assert_eq!(
            dpa_attack(&traces, 0, |k, i| sel(k, data[i])).err(),
            Some(AnalysisError::NoKeyGuesses)
        );
        assert_eq!(
            mtd_scan(&traces, 16, 5, 0, |k, i| sel(k, data[i])).err(),
            Some(AnalysisError::ZeroStep)
        );
        let mut ragged = traces.clone();
        ragged[4] = vec![0.0; 3];
        assert_eq!(
            dpa_attack(&ragged, 16, |k, i| sel(k, data[i])).err(),
            Some(AnalysisError::InconsistentTraceLength {
                index: 4,
                got: 3,
                expect: 8
            })
        );
    }
}
