//! Energy statistics of §3: mean, normalized energy deviation and
//! normalized standard deviation of the per-encryption energy.

/// Summary statistics over per-cycle (per-encryption) energies.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStats {
    /// Number of cycles measured.
    pub n: usize,
    /// Mean energy (same unit as the input, fJ in this workspace).
    pub mean: f64,
    /// Minimum energy.
    pub min: f64,
    /// Maximum energy.
    pub max: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Normalized energy deviation `(max − min) / max` — the paper
    /// reports 6.6 % (secure) vs 60 % (reference).
    pub ned: f64,
    /// Normalized standard deviation `σ / mean` — the paper reports
    /// 0.9 % vs 12 %.
    pub nsd: f64,
}

impl EnergyStats {
    /// Computes statistics over `energies`, ignoring any leading
    /// `skip` entries (pipeline warm-up cycles).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two entries remain after skipping.
    pub fn of(energies: &[f64], skip: usize) -> Self {
        let data = &energies[skip..];
        assert!(data.len() >= 2, "need at least two cycles");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = data.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64;
        let std_dev = var.sqrt();
        EnergyStats {
            n,
            mean,
            min,
            max,
            std_dev,
            ned: if max > 0.0 { (max - min) / max } else { 0.0 },
            nsd: if mean > 0.0 { std_dev / mean } else { 0.0 },
        }
    }
}

impl std::fmt::Display for EnergyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1} fJ, NED {:.1}%, NSD {:.1}% over {} cycles",
            self.mean,
            self.ned * 100.0,
            self.nsd * 100.0,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_energy_has_zero_deviation() {
        let s = EnergyStats::of(&[5.0; 10], 0);
        assert_eq!(s.ned, 0.0);
        assert_eq!(s.nsd, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn known_values() {
        let s = EnergyStats::of(&[4.0, 6.0], 0);
        assert_eq!(s.mean, 5.0);
        assert!((s.ned - (2.0 / 6.0)).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.nsd - 0.2).abs() < 1e-12);
    }

    #[test]
    fn skip_ignores_warmup() {
        let s = EnergyStats::of(&[100.0, 5.0, 5.0, 5.0], 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_cycles_panics() {
        let _ = EnergyStats::of(&[1.0], 0);
    }
}
