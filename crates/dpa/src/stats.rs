//! Energy statistics of §3: mean, normalized energy deviation and
//! normalized standard deviation of the per-encryption energy.

use std::fmt;

/// A failure to compute energy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// Fewer than two energies remained after skipping warm-up cycles
    /// (deviation figures need at least two samples).
    TooFewCycles {
        /// Energies available after skipping.
        available: usize,
        /// Leading entries skipped (or asked to be skipped).
        skip: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::TooFewCycles { available, skip } => write!(
                f,
                "need at least two cycles after skipping {skip}, got {available}"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

/// Summary statistics over per-cycle (per-encryption) energies.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStats {
    /// Number of cycles measured.
    pub n: usize,
    /// Mean energy (same unit as the input, fJ in this workspace).
    pub mean: f64,
    /// Minimum energy.
    pub min: f64,
    /// Maximum energy.
    pub max: f64,
    /// Standard deviation (population, see [`EnergyStats::try_of`]).
    pub std_dev: f64,
    /// Normalized energy deviation `(max − min) / max` — the paper
    /// reports 6.6 % (secure) vs 60 % (reference).
    pub ned: f64,
    /// Normalized standard deviation `σ / mean` — the paper reports
    /// 0.9 % vs 12 %.
    pub nsd: f64,
}

impl EnergyStats {
    /// Computes statistics over `energies`, ignoring any leading
    /// `skip` entries (pipeline warm-up cycles).
    ///
    /// The variance is the **population** variance (divide by `n`,
    /// not `n − 1`): the trace set is the entire population of cycles
    /// being characterized, not a sample of a larger one, matching
    /// the paper's NED/NSD definitions.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::TooFewCycles`] if fewer than two entries
    /// remain after skipping (this includes `skip >= energies.len()`).
    pub fn try_of(energies: &[f64], skip: usize) -> Result<Self, StatsError> {
        let data = energies.get(skip..).unwrap_or(&[]);
        if data.len() < 2 {
            return Err(StatsError::TooFewCycles {
                available: data.len(),
                skip,
            });
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = data.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64;
        let std_dev = var.sqrt();
        Ok(EnergyStats {
            n,
            mean,
            min,
            max,
            std_dev,
            ned: if max > 0.0 { (max - min) / max } else { 0.0 },
            nsd: if mean > 0.0 { std_dev / mean } else { 0.0 },
        })
    }
}

impl std::fmt::Display for EnergyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1} fJ, NED {:.1}%, NSD {:.1}% over {} cycles",
            self.mean,
            self.ned * 100.0,
            self.nsd * 100.0,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_energy_has_zero_deviation() {
        let s = EnergyStats::try_of(&[5.0; 10], 0).unwrap();
        assert_eq!(s.ned, 0.0);
        assert_eq!(s.nsd, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn known_values() {
        let s = EnergyStats::try_of(&[4.0, 6.0], 0).unwrap();
        assert_eq!(s.mean, 5.0);
        assert!((s.ned - (2.0 / 6.0)).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.nsd - 0.2).abs() < 1e-12);
    }

    #[test]
    fn skip_ignores_warmup() {
        let s = EnergyStats::try_of(&[100.0, 5.0, 5.0, 5.0], 1).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn too_few_cycles_is_typed_error() {
        assert_eq!(
            EnergyStats::try_of(&[1.0], 0),
            Err(StatsError::TooFewCycles {
                available: 1,
                skip: 0
            })
        );
    }

    #[test]
    fn oversized_skip_is_typed_error() {
        // skip beyond the slice must not panic on the range.
        assert_eq!(
            EnergyStats::try_of(&[1.0, 2.0], 7),
            Err(StatsError::TooFewCycles {
                available: 0,
                skip: 7
            })
        );
    }
}
