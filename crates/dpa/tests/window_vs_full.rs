//! The harness's per-encryption window decomposition must be an exact
//! refactoring of the original whole-campaign simulation: for the same
//! seed, every trace and energy it produces is byte-identical to
//! slicing one long n-encryption simulation — the property that lets
//! the campaign parallelise without perturbing any result.

use secflow_cells::Library;
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::harness::{collect_des_traces, DesTarget};
use secflow_rand::{RngExt, SeedableRng, StdRng};
use secflow_sim::{simulate_single_ended, SimBackend, SimConfig};
use secflow_synth::{map_design, MapOptions};

#[test]
fn window_traces_match_full_campaign() {
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let cfg = SimConfig {
        samples_per_cycle: 40,
        ..Default::default()
    };
    let key = 46u8;
    let seed = 9u64;
    let n = 8;

    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let set = collect_des_traces(&target, &cfg, key, n, seed).unwrap();

    // The original campaign: all n plaintexts from one sequential
    // stream, simulated as one run, plus 2 flush cycles.
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(u8, u8)> = (0..n)
        .map(|_| (rng.random_range(0..16u8), rng.random_range(0..64u8)))
        .collect();
    let vector = |pl: u8, pr: u8| -> Vec<bool> {
        let mut v = Vec::with_capacity(16);
        for i in 0..4 {
            v.push(pl >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(pr >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(key >> i & 1 == 1);
        }
        v
    };
    let mut vectors: Vec<Vec<bool>> = pts.iter().map(|&(pl, pr)| vector(pl, pr)).collect();
    vectors.push(vector(0, 0));
    vectors.push(vector(0, 0));
    let result = simulate_single_ended(&mapped, &lib, None, &cfg, &vectors).unwrap();

    let spc = cfg.samples_per_cycle;
    for i in 0..n {
        let leak = i + 1;
        let full = &result.trace[leak * spc..(leak + 1) * spc];
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(full), bits(&set.traces[i]), "trace {i}");
        assert_eq!(
            result.cycle_energy_fj[leak].to_bits(),
            set.energies[i].to_bits(),
            "energy {i}"
        );
    }
}
