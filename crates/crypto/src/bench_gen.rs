//! Deterministic synthetic design generation for flow-runtime
//! experiments.
//!
//! The paper reports the cell-substitution and interconnect-
//! decomposition runtimes on a 39 K-gate prototype IC that we do not
//! have; this generator produces register-rich random logic of a
//! requested size so the same runtime experiment can be performed on
//! comparable workloads.

use secflow_rand::{RngExt, SeedableRng, StdRng};

use secflow_synth::{Design, Lit};

/// Builds a deterministic pseudo-random synchronous design with
/// approximately `target_ands` AIG AND nodes (the mapped gate count is
/// of the same order).
///
/// The design has `width` primary inputs, `width` registers and
/// `width` primary outputs and consists of random layered
/// AND/OR/XOR/MUX logic feeding the registers — a reasonable stand-in
/// for the mix of datapath and control in the paper's prototype IC.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn synthetic_design(name: &str, target_ands: usize, width: usize, seed: u64) -> Design {
    assert!(width > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new(name);
    let ins = d.input_bus("in", width);
    let regs = d.register_bus("r", width);

    let mut pool: Vec<Lit> = ins.iter().chain(regs.iter()).copied().collect();
    while d.aig.and_count() < target_ands {
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let l = match rng.random_range(0..6u32) {
            0 => d.aig.and(a, b),
            1 => d.aig.or(a, b),
            2 => d.aig.and(a, b.not()),
            3 => d.aig.xor(a, b),
            4 => {
                let s = pool[rng.random_range(0..pool.len())];
                d.aig.mux(s, a, b)
            }
            _ => d.aig.or(a.not(), b),
        };
        pool.push(l);
        // Keep the pool focused on recent logic so depth grows.
        if pool.len() > 4 * width {
            pool.remove(rng.random_range(0..width));
        }
    }

    // Feed registers and outputs from the tail of the pool.
    let tail = &pool[pool.len().saturating_sub(2 * width)..];
    for (i, &q) in regs.clone().iter().enumerate() {
        let src = tail[i % tail.len()];
        let folded = d.aig.xor(src, q);
        d.set_next(q, folded);
    }
    for (i, &q) in regs.iter().enumerate() {
        d.output(format!("out[{i}]"), q);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_close_to_target() {
        let d = synthetic_design("s", 2000, 32, 7);
        let n = d.aig.and_count();
        assert!((2000..2200).contains(&n), "got {n}");
        assert_eq!(d.inputs.len(), 32);
        assert_eq!(d.registers.len(), 32);
        assert_eq!(d.outputs.len(), 32);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_design("s", 500, 16, 42);
        let b = synthetic_design("s", 500, 16, 42);
        assert_eq!(a.aig.and_count(), b.aig.and_count());
        assert_eq!(a.roots(), b.roots());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_design("s", 500, 16, 1);
        let b = synthetic_design("s", 500, 16, 2);
        assert_ne!(a.roots(), b.roots());
    }
}
