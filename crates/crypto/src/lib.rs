//! Cryptographic circuits and workload generators for the secure
//! design flow.
//!
//! Provides the designs the paper evaluates on:
//!
//! * [`des`] — the eight DES S-boxes, both as lookup tables (software
//!   reference model) and as combinational circuit builders;
//! * [`dpa_module`] — the paper's Fig. 4 test circuit: the reduced DES
//!   module (S-box S1 plus the `PL`/`PR`/`CL`/`CR` registers) on which
//!   the Differential Power Analysis is mounted, together with its
//!   software model and the attack's selection function;
//! * [`des_round`] — a full DES Feistel round (expansion, all eight
//!   S-boxes, permutation P), the realistically sized datapath the
//!   DPA module is extracted from;
//! * [`aes`] — the AES S-box as a circuit, used for larger flow
//!   exercises (the paper's prototype IC contains an AES core);
//! * [`bench_gen`] — a deterministic synthetic design generator used to
//!   reproduce the 39 K-gate flow-runtime experiment.

pub mod aes;
pub mod bench_gen;
pub mod des;
pub mod des_round;
pub mod dpa_module;
