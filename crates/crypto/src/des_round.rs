//! A full DES Feistel round: the expansion E, all eight S-boxes and
//! the permutation P — a realistically sized cryptographic workload
//! for the flow (the Fig. 4 module is the minimal DPA target; this is
//! the "real" datapath it is extracted from).
//!
//! Bit convention: this module uses LSB-first indexing (bit 0 of a
//! word is index 0); the standard tables, which are written MSB-first
//! with 1-based positions, are converted on the fly.

use secflow_synth::{Design, Lit};

use crate::des::{sbox, sbox_circuit};

/// The DES expansion table E (1-based, MSB-first positions into the
/// 32-bit half block), producing 48 bits.
pub const EXPANSION: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// The DES permutation table P (1-based, MSB-first positions).
pub const PERMUTATION: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Converts a 1-based MSB-first DES bit position into an LSB-first
/// index for a `width`-bit word.
fn lsb_index(pos_1based_msb: u8, width: u8) -> usize {
    (width - pos_1based_msb) as usize
}

/// The DES round function `f(R, K)` in software: expansion, key mix,
/// the eight S-boxes and the P permutation. `r` is the 32-bit half
/// block, `k` the 48-bit subkey.
pub fn f_function(r: u32, k: u64) -> u32 {
    // Expansion to 48 bits.
    let mut e = 0u64;
    for (i, &pos) in EXPANSION.iter().enumerate() {
        let bit = r >> lsb_index(pos, 32) & 1;
        // Output bit i (1-based MSB-first position i+1).
        e |= u64::from(bit) << (47 - i);
    }
    let x = e ^ (k & 0xFFFF_FFFF_FFFF);
    // Eight S-boxes, 6 bits in / 4 bits out, MSB-first groups.
    let mut s_out = 0u32;
    for s in 0..8 {
        let six = (x >> (42 - 6 * s) & 0x3F) as u8;
        let out = sbox(s, six);
        s_out |= u32::from(out) << (28 - 4 * s);
    }
    // Permutation P.
    let mut p = 0u32;
    for (i, &pos) in PERMUTATION.iter().enumerate() {
        let bit = s_out >> lsb_index(pos, 32) & 1;
        p |= bit << (31 - i);
    }
    p
}

/// One full DES round in software: `(L, R) -> (R, L ^ f(R, K))`.
pub fn round(l: u32, r: u32, k: u64) -> (u32, u32) {
    (r, l ^ f_function(r, k))
}

/// Builds one DES Feistel round as a synthesizable [`Design`]:
/// registers `L[32]`, `R[32]` updated from inputs each cycle, subkey
/// input `k[48]`, outputs the next `(L, R)` pair.
///
/// Port bit order is LSB-first (bit 0 = least significant).
pub fn des_round_design() -> Design {
    let mut d = Design::new("des_round");
    let l_in = d.input_bus("l", 32);
    let r_in = d.input_bus("r", 32);
    let k_in = d.input_bus("k", 48);

    let l_q = d.register_bus("L", 32);
    let r_q = d.register_bus("R", 32);
    d.set_next_bus(&l_q, &l_in);
    d.set_next_bus(&r_q, &r_in);

    // Expansion (pure wiring) + key mix.
    let mut x = Vec::with_capacity(48);
    for (i, &pos) in EXPANSION.iter().enumerate() {
        let r_bit = r_q[lsb_index(pos, 32)];
        // x is indexed LSB-first: output bit i (MSB-first) = index 47-i.
        let _ = i;
        x.push(r_bit);
    }
    // x currently holds MSB-first order; mix with the key in the same
    // order (key bus is LSB-first: bit i of the bus = k index i).
    let x: Vec<Lit> = x
        .iter()
        .enumerate()
        .map(|(i, &e_bit)| {
            let k_bit = k_in[47 - i];
            d.aig.xor(e_bit, k_bit)
        })
        .collect();

    // Eight S-boxes. Each takes 6 MSB-first bits; sbox_circuit expects
    // LSB-first inputs.
    let mut s_out_msb: Vec<Lit> = Vec::with_capacity(32);
    for s in 0..8 {
        let group = &x[6 * s..6 * s + 6];
        let lsb_first: Vec<Lit> = group.iter().rev().copied().collect();
        let out = sbox_circuit(&mut d.aig, s, &lsb_first);
        // `out` is LSB-first; store MSB-first.
        s_out_msb.extend(out.iter().rev());
    }

    // Permutation P (wiring) and the Feistel XOR.
    let mut next_r = vec![Lit::FALSE; 32];
    for (i, &pos) in PERMUTATION.iter().enumerate() {
        // Output bit i (MSB-first) reads s_out position `pos`.
        let src = s_out_msb[(pos - 1) as usize];
        let l_bit = l_q[31 - i];
        next_r[31 - i] = d.aig.xor(src, l_bit);
    }

    d.output_bus("l_out", &r_q);
    d.output_bus("r_out", &next_r);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_synth::{simulate_seq, SeqState};

    #[test]
    fn expansion_table_shape() {
        // E repeats the edge bits: 48 outputs, each source in 1..=32,
        // every source position used at least once.
        assert_eq!(EXPANSION.len(), 48);
        for pos in 1..=32u8 {
            assert!(EXPANSION.contains(&pos), "position {pos} unused");
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut seen = [false; 32];
        for &p in &PERMUTATION {
            assert!((1..=32).contains(&p));
            assert!(!seen[(p - 1) as usize]);
            seen[(p - 1) as usize] = true;
        }
    }

    #[test]
    fn round_is_invertible() {
        // Feistel structure: applying the round twice with swapped
        // halves recovers the input.
        for (l, r, k) in [
            (0u32, 0u32, 0u64),
            (0x12345678, 0x9ABCDEF0, 0x1234_5678_9ABC),
            (u32::MAX, 0x0F0F0F0F, 0xFFFF_FFFF_FFFF),
        ] {
            let (l1, r1) = round(l, r, k);
            // Inverse: L = r1 ^ f(l1, k), R = l1.
            let l_back = r1 ^ f_function(l1, k);
            assert_eq!((l_back, l1), (l, r));
        }
    }

    #[test]
    fn f_function_depends_on_every_sbox() {
        // Flipping key bits in each 6-bit group must change the output.
        let r = 0xDEADBEEF;
        let base = f_function(r, 0);
        for s in 0..8 {
            let k = 0x21u64 << (42 - 6 * s);
            assert_ne!(f_function(r, k), base, "S-box {} inert", s + 1);
        }
    }

    #[test]
    fn circuit_matches_software_model() {
        let d = des_round_design();
        let mut st = SeqState::reset(&d);
        let cases = [
            (0u32, 0u32, 0u64),
            (0x12345678, 0x9ABCDEF0, 0x1234_5678_9ABC),
            (0xFFFFFFFF, 0x00000000, 0x0F0F_0F0F_0F0F),
        ];
        for &(l, r, k) in &cases {
            let mut ins = Vec::with_capacity(112);
            for i in 0..32 {
                ins.push(if l >> i & 1 == 1 { !0u64 } else { 0 });
            }
            for i in 0..32 {
                ins.push(if r >> i & 1 == 1 { !0u64 } else { 0 });
            }
            for i in 0..48 {
                ins.push(if k >> i & 1 == 1 { !0u64 } else { 0 });
            }
            // Cycle 1 loads the registers; cycle 2 shows the result.
            simulate_seq(&d, &mut st, &ins);
            let outs = simulate_seq(&d, &mut st, &ins);
            let l_out = (0..32).fold(0u32, |a, i| a | (((outs[i] & 1) as u32) << i));
            let r_out = (0..32).fold(0u32, |a, i| a | (((outs[32 + i] & 1) as u32) << i));
            assert_eq!((l_out, r_out), round(l, r, k), "at {l:#x},{r:#x}");
        }
    }
}
