//! The DES S-boxes: reference tables and circuit builders.

use secflow_synth::{Aig, Lit};

/// The eight DES substitution boxes in standard row/column layout:
/// `SBOXES[s][row][col]` with `row = b5·2 + b0` and `col = b4 b3 b2 b1`
/// of the 6-bit input `b5 b4 b3 b2 b1 b0`.
pub const SBOXES: [[[u8; 16]; 4]; 8] = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
];

/// Evaluates S-box `s` (0-based) on a 6-bit input `v = b5 b4 b3 b2 b1
/// b0` using the standard DES convention: `row = b5 b0`, `col =
/// b4 b3 b2 b1`. Returns the 4-bit substitution value.
///
/// # Panics
///
/// Panics if `s >= 8` or `v >= 64`.
pub fn sbox(s: usize, v: u8) -> u8 {
    assert!(s < 8 && v < 64);
    let row = ((v >> 5 & 1) << 1 | (v & 1)) as usize;
    let col = (v >> 1 & 0xF) as usize;
    SBOXES[s][row][col]
}

/// Builds the combinational circuit of S-box `s` in an AIG as a
/// sum of minterms per output bit (structural hashing shares common
/// products). `inputs` are the 6 input bits, LSB first. Returns the 4
/// output bits, LSB first.
///
/// # Panics
///
/// Panics if `s >= 8` or `inputs.len() != 6`.
pub fn sbox_circuit(aig: &mut Aig, s: usize, inputs: &[Lit]) -> Vec<Lit> {
    assert!(s < 8);
    assert_eq!(inputs.len(), 6);
    lut_circuit(aig, inputs, |v| sbox(s, v as u8) as u32, 4)
}

/// Builds a generic lookup-table circuit: `outputs[j]` is bit `j` of
/// `table(v)` for the input assignment `v` over `inputs` (LSB first).
pub fn lut_circuit(
    aig: &mut Aig,
    inputs: &[Lit],
    table: impl Fn(u32) -> u32,
    out_bits: usize,
) -> Vec<Lit> {
    let n = inputs.len();
    assert!(n <= 16, "lookup tables over {n} inputs are unreasonable");
    (0..out_bits)
        .map(|j| {
            let minterms: Vec<Lit> = (0..(1u32 << n))
                .filter(|&v| table(v) >> j & 1 == 1)
                .map(|v| {
                    let lits =
                        inputs
                            .iter()
                            .enumerate()
                            .map(|(i, &l)| if v >> i & 1 == 1 { l } else { l.not() });
                    aig.and_all(lits.collect::<Vec<_>>())
                })
                .collect();
            aig.or_all(minterms)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_synth::Design;

    #[test]
    fn sbox_known_values() {
        // S1(0) = row 0, col 0 = 14; S1(63) = row 3, col 15 = 13.
        assert_eq!(sbox(0, 0), 14);
        assert_eq!(sbox(0, 63), 13);
        // S8(0) = 13.
        assert_eq!(sbox(7, 0), 13);
    }

    #[test]
    fn sbox_outputs_are_4bit_and_balanced() {
        // Each DES S-box row is a permutation of 0..16, so every
        // output value appears exactly 4 times per box.
        for s in 0..8 {
            let mut counts = [0u32; 16];
            for v in 0..64 {
                let out = sbox(s, v);
                assert!(out < 16);
                counts[out as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c == 4), "S{} unbalanced", s + 1);
        }
    }

    #[test]
    fn sbox_circuit_matches_table() {
        for s in [0usize, 4, 7] {
            let mut d = Design::new("sbox");
            let ins = d.input_bus("x", 6);
            let outs = sbox_circuit(&mut d.aig, s, &ins);
            d.output_bus("y", &outs);
            for v in 0..64u64 {
                let in_words: Vec<u64> = (0..6)
                    .map(|i| if v >> i & 1 == 1 { !0 } else { 0 })
                    .collect();
                let (o, _) = secflow_synth::simulate_comb(&d, &in_words, &[]);
                let got = (0..4).fold(0u8, |acc, j| acc | (((o[j] & 1) as u8) << j));
                assert_eq!(got, sbox(s, v as u8), "S{} at {v}", s + 1);
            }
        }
    }

    #[test]
    fn lut_circuit_identity() {
        let mut d = Design::new("id");
        let ins = d.input_bus("x", 3);
        let outs = lut_circuit(&mut d.aig, &ins, |v| v, 3);
        d.output_bus("y", &outs);
        for v in 0..8u64 {
            let in_words: Vec<u64> = (0..3)
                .map(|i| if v >> i & 1 == 1 { !0 } else { 0 })
                .collect();
            let (o, _) = secflow_synth::simulate_comb(&d, &in_words, &[]);
            let got = (0..3).fold(0u64, |acc, j| acc | ((o[j] & 1) << j));
            assert_eq!(got, v);
        }
    }
}
