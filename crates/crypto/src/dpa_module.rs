//! The paper's Fig. 4 test circuit and the DPA selection function.
//!
//! The circuit is the "sufficient subset of the DES algorithm on which
//! a Differential Power Analysis can be mounted" of Tiri et al.
//! (CHES'03), reproduced in Fig. 4 of the paper:
//!
//! * a 4-bit register `PL` and a 6-bit register `PR` capture the random
//!   plaintext halves each cycle;
//! * the 6-bit secret key `K` is XOR-ed with `PR` and fed through
//!   S-box S1;
//! * registers `CL = PL ⊕ S1(PR ⊕ K)` and `CR = PR` capture the
//!   "ciphertext".
//!
//! The attacker observes the supply current and the ciphertext
//! `(CL, CR)`; the selection function `D(K, C)` predicts one bit of
//! `PL` from a key guess (the paper uses the 3rd bit).

use secflow_synth::Design;

use crate::des::{sbox, sbox_circuit};

/// Bit of `PL` predicted by the paper's selection function ("the 3rd
/// bit", 0-based index 2).
pub const SELECTION_BIT: usize = 2;

/// The secret key used in the paper's experiment (`K = 46`).
pub const PAPER_KEY: u8 = 46;

/// Builds the Fig. 4 circuit as a synthesizable [`Design`].
///
/// Ports: inputs `pl[3:0]`, `pr[5:0]`, `k[5:0]`; outputs `cl[3:0]`,
/// `cr[5:0]`. Registers: `PL`, `PR`, `CL`, `CR`.
pub fn des_dpa_design() -> Design {
    let mut d = Design::new("des_dpa");
    let pl_in = d.input_bus("pl", 4);
    let pr_in = d.input_bus("pr", 6);
    let k_in = d.input_bus("k", 6);

    let pl_q = d.register_bus("PL", 4);
    let pr_q = d.register_bus("PR", 6);
    let cl_q = d.register_bus("CL", 4);
    let cr_q = d.register_bus("CR", 6);

    // PL <= pl, PR <= pr (plaintext capture stage).
    d.set_next_bus(&pl_q, &pl_in);
    d.set_next_bus(&pr_q, &pr_in);

    // x = PR ^ K, s = S1(x), CL <= PL ^ s, CR <= PR.
    let x: Vec<_> = pr_q
        .iter()
        .zip(&k_in)
        .map(|(&q, &k)| d.aig.xor(q, k))
        .collect();
    let s = sbox_circuit(&mut d.aig, 0, &x);
    let cl_next: Vec<_> = pl_q
        .iter()
        .zip(&s)
        .map(|(&q, &sb)| d.aig.xor(q, sb))
        .collect();
    d.set_next_bus(&cl_q, &cl_next);
    d.set_next_bus(&cr_q, &pr_q);

    d.output_bus("cl", &cl_q);
    d.output_bus("cr", &cr_q);
    d
}

/// Software reference model of the Fig. 4 datapath: one "encryption"
/// of plaintext halves `(pl, pr)` under key `k`.
///
/// Returns `(cl, cr)` where `cl = pl ⊕ S1(pr ⊕ k)` and `cr = pr`.
///
/// # Panics
///
/// Panics if `pl >= 16`, `pr >= 64` or `k >= 64`.
pub fn encrypt(pl: u8, pr: u8, k: u8) -> (u8, u8) {
    assert!(pl < 16 && pr < 64 && k < 64);
    (pl ^ sbox(0, pr ^ k), pr)
}

/// The DPA selection function `D(K, C)`: predicts bit
/// [`SELECTION_BIT`] of `PL` from the ciphertext `(cl, cr)` under key
/// guess `k_guess`, by inverting the datapath:
/// `PL = CL ⊕ S1(CR ⊕ K)`.
pub fn selection(k_guess: u8, cl: u8, cr: u8) -> bool {
    let pl = cl ^ sbox(0, cr ^ k_guess);
    pl >> SELECTION_BIT & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_synth::{simulate_seq, SeqState};

    #[test]
    fn encrypt_is_involutive_on_pl() {
        for k in [0u8, 46, 63] {
            for pr in [0u8, 17, 63] {
                for pl in [0u8, 5, 15] {
                    let (cl, cr) = encrypt(pl, pr, k);
                    // Recover pl with the correct key.
                    let rec = cl ^ sbox(0, cr ^ k);
                    assert_eq!(rec, pl);
                }
            }
        }
    }

    #[test]
    fn selection_with_correct_key_matches_pl_bit() {
        for pl in 0..16u8 {
            for pr in (0..64u8).step_by(7) {
                let (cl, cr) = encrypt(pl, pr, PAPER_KEY);
                assert_eq!(selection(PAPER_KEY, cl, cr), pl >> SELECTION_BIT & 1 == 1);
            }
        }
    }

    #[test]
    fn selection_with_wrong_key_decorrelates() {
        // A wrong key guess must disagree with the true PL bit on a
        // substantial fraction of inputs (the basis of DPA).
        let wrong = 13u8;
        assert_ne!(wrong, PAPER_KEY);
        let mut disagreements = 0u32;
        let mut total = 0u32;
        for pl in 0..16u8 {
            for pr in 0..64u8 {
                let (cl, cr) = encrypt(pl, pr, PAPER_KEY);
                if selection(wrong, cl, cr) != (pl >> SELECTION_BIT & 1 == 1) {
                    disagreements += 1;
                }
                total += 1;
            }
        }
        let frac = f64::from(disagreements) / f64::from(total);
        assert!(frac > 0.2 && frac < 0.8, "frac = {frac}");
    }

    #[test]
    fn design_matches_software_model() {
        let d = des_dpa_design();
        let mut st = SeqState::reset(&d);
        let k = PAPER_KEY;
        let stimuli = [(3u8, 41u8), (15, 0), (0, 63), (9, 27)];
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for cycle in 0..stimuli.len() + 2 {
            let (pl, pr) = if cycle < stimuli.len() {
                stimuli[cycle]
            } else {
                (0, 0)
            };
            let mut ins = Vec::new();
            for i in 0..4 {
                ins.push(if pl >> i & 1 == 1 { !0u64 } else { 0 });
            }
            for i in 0..6 {
                ins.push(if pr >> i & 1 == 1 { !0u64 } else { 0 });
            }
            for i in 0..6 {
                ins.push(if k >> i & 1 == 1 { !0u64 } else { 0 });
            }
            let outs = simulate_seq(&d, &mut st, &ins);
            // Ciphertext for stimulus t appears 2 cycles later.
            if cycle >= 2 {
                let cl = (0..4).fold(0u8, |a, i| a | (((outs[i] & 1) as u8) << i));
                let cr = (0..6).fold(0u8, |a, i| a | (((outs[4 + i] & 1) as u8) << i));
                got.push((cl, cr));
                let (pl_t, pr_t) = stimuli[cycle - 2];
                expected.push(encrypt(pl_t, pr_t, k));
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn design_port_counts() {
        let d = des_dpa_design();
        assert_eq!(d.inputs.len(), 16);
        assert_eq!(d.outputs.len(), 10);
        assert_eq!(d.registers.len(), 20);
    }
}
