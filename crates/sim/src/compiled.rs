//! The build-once simulation kernel: [`CompiledSim`] + [`EngineScratch`].
//!
//! Trace campaigns simulate the same netlist thousands of times (one
//! short window per encryption). The seed engine rebuilt its entire
//! working state per window — per-gate `by_name` string hashing, a
//! fresh topological order, ten freshly allocated arrays — and its
//! event loop allocated a sink list on every processed event. This
//! module splits the engine into the two halves that actually have
//! different lifetimes:
//!
//! * [`CompiledSim`] — an immutable, build-once compilation of
//!   `(Netlist, Library, LoadModel, SimConfig)`: a cell table resolved
//!   per gate (truth table + precomputed event delay, no name lookups
//!   after build), CSR adjacency for net fanout, gate inputs and
//!   coupling lists, the cached topological order, and dense per-net
//!   load/exempt arrays. Shared read-only across worker threads.
//! * [`EngineScratch`] — every mutable array the event loop touches
//!   (values, pending, the timing-wheel event queue, trace, …),
//!   `reset` between windows instead of reallocated, so steady-state
//!   window simulation performs zero heap allocations.
//!
//! **Determinism contract:** for any `(netlist, library, load, config,
//! stimulus)` the kernel is byte-identical (`f64::to_bits`) to the
//! seed per-window engine — the compiled tables are pure
//! reassociations of the same lookups (same sink order, same coupling
//! order, same delay expression), and `reset` reproduces the exact
//! state a freshly built engine would start from. The golden-trace
//! test (`tests/golden_kernel.rs`) pins this across thread counts.

use std::collections::HashMap;

use secflow_cells::{CellFunction, Library, TruthTable};
use secflow_netlist::{FanoutCsr, GateId, GateKind, NetId, Netlist};

use crate::config::SimConfig;
use crate::engine::{is_wddl_register, Engine, Event};
use crate::error::SimError;
use crate::load::LoadModel;

/// Per-gate resolved simulation behaviour. `Copy`, so gate evaluation
/// reads it by value without cloning heap data.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellKind {
    /// Combinational: packed truth table plus the precomputed event
    /// delay of the gate's output net (the seed engine recomputed
    /// `intrinsic + drive · C_load` per evaluation; it is a pure
    /// function of the compilation inputs).
    Comb {
        /// Packed single-output truth table.
        tt: TruthTable,
        /// `load.delay_ps(intrinsic, drive, out).max(1.0)` as integer ps.
        delay_ps: u64,
    },
    /// Single-ended D flip-flop (driven by the cycle driver).
    Dff,
    /// WDDL dual-rail register (driven by the cycle driver).
    WddlDff,
    /// Constant driver.
    Tie(bool),
}

/// A build-once, immutable compilation of
/// `(Netlist, Library, LoadModel, SimConfig)` for the event-driven
/// power simulator. Build it once per campaign, share it across
/// threads (`&CompiledSim` is `Sync`), and pair it with one
/// [`EngineScratch`] per worker.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    pub(crate) cfg: SimConfig,
    // --- per gate, indexed by GateId ---
    pub(crate) cells: Vec<CellKind>,
    /// CSR offsets into `in_nets`; `gate_count + 1` entries.
    pub(crate) in_offsets: Vec<u32>,
    /// Input nets of all gates, concatenated in pin order.
    pub(crate) in_nets: Vec<NetId>,
    /// First output net per gate (`u32::MAX` sentinel when none).
    pub(crate) out_net: Vec<NetId>,
    /// Cached topological order of the combinational graph.
    pub(crate) topo: Vec<GateId>,
    // --- per net, indexed by NetId ---
    pub(crate) fanout: FanoutCsr,
    /// Nets whose transitions draw no supply current (primary inputs).
    pub(crate) exempt: Vec<bool>,
    pub(crate) c_eff_ff: Vec<f64>,
    pub(crate) drive_kohm: Vec<f64>,
    /// CSR offsets into `coup`; `net_count + 1` entries.
    pub(crate) coup_offsets: Vec<u32>,
    /// Coupling lists of all nets, concatenated: `(other net, fF)`.
    pub(crate) coup: Vec<(NetId, f64)>,
    // --- interface, in declaration order ---
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    /// Single-ended registers: `(D net, Q net)` per sequential gate.
    pub(crate) se_regs: Vec<(NetId, NetId)>,
    /// WDDL registers: `(Dt, Df, Qt, Qf)`.
    pub(crate) wddl_regs: Vec<(NetId, NetId, NetId, NetId)>,
    pub(crate) n_nets: usize,
    pub(crate) n_gates: usize,
    /// `cfg.sample_ps()`, precomputed (the engine divides by it on
    /// every rising transition).
    pub(crate) sample_ps: f64,
    /// Timing-wheel size (power of two): strictly larger than the
    /// maximum span between the engine's current time and any event it
    /// can still schedule (one clock period for driver injections plus
    /// the largest gate delay plus the driver offsets), so wheel slots
    /// never alias two pending times.
    pub(crate) wheel_size: u64,
}

impl CompiledSim {
    /// Compiles `nl` against `lib`, `load` and `cfg`.
    ///
    /// Each distinct cell name is resolved exactly once
    /// ([`Library::index_of`]); gates index the resolved table
    /// thereafter.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownCell`] if a gate references a cell missing
    /// from `lib`; [`SimError::CombinationalCycle`] if no evaluation
    /// order exists.
    pub fn build(
        nl: &Netlist,
        lib: &Library,
        load: &LoadModel,
        cfg: &SimConfig,
    ) -> Result<CompiledSim, SimError> {
        let mut name_memo: HashMap<&str, usize> = HashMap::new();
        let mut cells = Vec::with_capacity(nl.gate_count());
        let mut in_offsets = Vec::with_capacity(nl.gate_count() + 1);
        let mut in_nets = Vec::new();
        let mut out_net = Vec::with_capacity(nl.gate_count());
        in_offsets.push(0u32);
        for g in nl.gates() {
            let idx = match name_memo.get(g.cell.as_str()) {
                Some(&i) => i,
                None => {
                    let i = lib.index_of(&g.cell).ok_or_else(|| SimError::UnknownCell {
                        gate: g.name.clone(),
                        cell: g.cell.clone(),
                    })?;
                    name_memo.insert(g.cell.as_str(), i);
                    i
                }
            };
            let cell = lib.cell_at(idx);
            let out = g.outputs.first().copied().unwrap_or(NetId(u32::MAX));
            cells.push(match cell.function() {
                CellFunction::Comb(tt) => CellKind::Comb {
                    tt: *tt,
                    delay_ps: load
                        .delay_ps(cell.intrinsic_delay_ps(), cell.drive_kohm(), out)
                        .max(1.0) as u64,
                },
                CellFunction::Dff if is_wddl_register(g) => CellKind::WddlDff,
                CellFunction::Dff => CellKind::Dff,
                CellFunction::WddlDff => CellKind::WddlDff,
                CellFunction::Tie(v) => CellKind::Tie(*v),
            });
            in_nets.extend_from_slice(&g.inputs);
            in_offsets.push(in_nets.len() as u32);
            out_net.push(out);
        }
        let topo = secflow_netlist::topo_order(nl).ok_or_else(|| SimError::CombinationalCycle {
            netlist: nl.name.clone(),
        })?;

        let mut exempt = vec![false; nl.net_count()];
        for &i in nl.inputs() {
            exempt[i.index()] = true;
        }
        let mut coup_offsets = Vec::with_capacity(nl.net_count() + 1);
        let mut coup = Vec::new();
        coup_offsets.push(0u32);
        for id in nl.net_ids() {
            coup.extend_from_slice(&load.couplings[id.index()]);
            coup_offsets.push(coup.len() as u32);
        }

        let se_regs = nl
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Seq)
            .map(|g| (g.inputs[0], g.outputs[0]))
            .collect();
        let wddl_regs = nl
            .gates()
            .iter()
            .filter(|g| is_wddl_register(g))
            .map(|g| (g.inputs[0], g.inputs[1], g.outputs[0], g.outputs[1]))
            .collect();

        let max_delay = cells
            .iter()
            .map(|c| match c {
                CellKind::Comb { delay_ps, .. } => *delay_ps,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let wheel_size = (cfg.period_ps + max_delay + cfg.clk2q_ps + cfg.input_delay_ps + 2)
            .next_power_of_two()
            .max(64);

        Ok(CompiledSim {
            cfg: cfg.clone(),
            cells,
            in_offsets,
            in_nets,
            out_net,
            topo,
            fanout: FanoutCsr::build(nl),
            exempt,
            c_eff_ff: load.c_eff_ff.clone(),
            drive_kohm: load.drive_kohm.clone(),
            coup_offsets,
            coup,
            inputs: nl.inputs().to_vec(),
            outputs: nl.outputs().to_vec(),
            se_regs,
            wddl_regs,
            n_nets: nl.net_count(),
            n_gates: nl.gate_count(),
            sample_ps: cfg.sample_ps(),
            wheel_size,
        })
    }

    /// The compiled configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The coupling list of `net`, in [`LoadModel`] order.
    #[inline]
    pub(crate) fn couplings(&self, net: NetId) -> &[(NetId, f64)] {
        let lo = self.coup_offsets[net.index()] as usize;
        let hi = self.coup_offsets[net.index() + 1] as usize;
        &self.coup[lo..hi]
    }

    /// Simulates a single-ended netlist window into `scratch`; see
    /// [`crate::simulate_single_ended`] for the protocol. Results are
    /// read back through the [`EngineScratch`] accessors.
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the input count.
    pub fn run_single_ended(&self, scratch: &mut EngineScratch, input_vectors: &[Vec<bool>]) {
        let mut engine = Engine::new(self, scratch, input_vectors.len());
        engine.drive_single_ended(input_vectors);
    }

    /// Simulates a WDDL two-phase window into `scratch`; see
    /// [`crate::simulate_wddl`] for the protocol.
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the pair count.
    pub fn run_wddl(
        &self,
        scratch: &mut EngineScratch,
        input_pairs: &[(NetId, NetId)],
        input_vectors: &[Vec<bool>],
    ) {
        let mut engine = Engine::new(self, scratch, input_vectors.len());
        engine.drive_wddl(input_pairs, input_vectors);
    }

    /// Simulates a window under the idealized glitch-free power model;
    /// see [`crate::simulate_single_ended_glitch_free`].
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the input count.
    pub fn run_single_ended_glitch_free(
        &self,
        scratch: &mut EngineScratch,
        input_vectors: &[Vec<bool>],
    ) {
        let n_cycles = input_vectors.len();
        scratch.reset(self, n_cycles);
        let spc = self.cfg.samples_per_cycle;

        // Consistent initial state: all sources 0 (inverters settle
        // high), evaluated once into prev_values.
        self.eval_comb_into(&mut scratch.prev_values);

        for (c, vector) in input_vectors.iter().enumerate() {
            assert_eq!(vector.len(), self.inputs.len(), "bad vector length");
            scratch.values.iter_mut().for_each(|v| *v = false);
            for (&net, &v) in self.inputs.iter().zip(vector) {
                scratch.values[net.index()] = v;
            }
            for (&(_, q), &v) in self.se_regs.iter().zip(&scratch.reg_state) {
                scratch.values[q.index()] = v;
            }
            self.eval_comb_into(&mut scratch.values);

            let mut energy = 0.0;
            let mut rises = 0u64;
            for i in 0..self.n_nets {
                if scratch.values[i] && !scratch.prev_values[i] && !self.exempt[i] {
                    energy += self.c_eff_ff[i] * self.cfg.vdd * self.cfg.vdd;
                    rises += 1;
                }
            }
            // Deposit the charge over the first quarter of the cycle.
            let bins = (spc / 4).max(1);
            for b in 0..bins {
                scratch.trace[c * spc + b] += energy / self.cfg.vdd / bins as f64;
            }
            for (i, &(d, _)) in self.se_regs.iter().enumerate() {
                scratch.reg_state[i] = scratch.values[d.index()];
            }
            scratch.cycle_energy_fj.push(energy);
            scratch.cycle_rises.push(rises);
            for &o in &self.outputs {
                scratch.outputs_flat.push(scratch.values[o.index()]);
            }
            std::mem::swap(&mut scratch.values, &mut scratch.prev_values);
        }
    }

    /// Zero-delay evaluation of the combinational portion in cached
    /// topological order. `values` holds the forced source values on
    /// entry and every net's settled value on exit.
    fn eval_comb_into(&self, values: &mut [bool]) {
        for &gid in &self.topo {
            match self.cells[gid.index()] {
                CellKind::Comb { tt, .. } => {
                    let lo = self.in_offsets[gid.index()] as usize;
                    let hi = self.in_offsets[gid.index() + 1] as usize;
                    let mut idx = 0u32;
                    for (i, &inp) in self.in_nets[lo..hi].iter().enumerate() {
                        if values[inp.index()] {
                            idx |= 1 << i;
                        }
                    }
                    values[self.out_net[gid.index()].index()] = tt.eval(idx);
                }
                CellKind::Tie(v) => values[self.out_net[gid.index()].index()] = v,
                CellKind::Dff | CellKind::WddlDff => {}
            }
        }
    }
}

/// The reusable mutable half of the simulation kernel: every array the
/// event loop and the cycle drivers touch. One scratch per worker
/// thread; [`EngineScratch::reset`] (called by every
/// `CompiledSim::run_*`) restores the exact initial state of a freshly
/// built engine without releasing capacity, so repeated window
/// simulations allocate nothing once buffers have grown to the
/// campaign's steady-state sizes.
#[derive(Debug, Default)]
pub struct EngineScratch {
    // --- event-engine state ---
    pub(crate) values: Vec<bool>,
    /// Monotonic tie-break counter for deterministic event order.
    pub(crate) order: u64,
    /// Per-gate cancellation sequence.
    pub(crate) gate_seq: Vec<u64>,
    /// Value the gate's pending output event will establish.
    pub(crate) pending: Vec<Option<bool>>,
    /// Timing wheel replacing the seed engine's binary heap: one event
    /// bucket per slot, indexed by `time & wheel_mask`. The global
    /// `order` counter is monotonic, so bucket FIFO order equals the
    /// heap's `(time, order)` order exactly; and since every gate delay
    /// is at least 1 ps (and smaller than the wheel), a bucket never
    /// receives new events while it is being drained.
    pub(crate) wheel: Vec<Vec<Event>>,
    /// One bit per wheel slot: bucket non-empty.
    pub(crate) occupancy: Vec<u64>,
    pub(crate) wheel_mask: u64,
    /// All events strictly before `cursor` have been processed.
    pub(crate) cursor: u64,
    /// End of the window (`n_cycles × period`). Events scheduled at or
    /// beyond it can never be processed — the final `run_until` stops
    /// there — so pushes drop them (the heap kept them, unread).
    pub(crate) horizon: u64,
    /// Last transition per net: (time, new value).
    pub(crate) last_transition: Vec<Option<(u64, bool)>>,
    /// Supply-current trace: charge (fC) per sample bin.
    pub(crate) trace: Vec<f64>,
    /// Net transitions, recorded when [`SimConfig::record_waveform`].
    pub(crate) waveform: Vec<(u64, NetId, bool)>,
    pub(crate) energy_fj: f64,
    pub(crate) rising_events: u64,
    // --- cycle-driver state ---
    pub(crate) reg_state: Vec<bool>,
    pub(crate) reg_state_pairs: Vec<(bool, bool)>,
    /// Previous-cycle values (glitch-free model only).
    pub(crate) prev_values: Vec<bool>,
    // --- per-window results, reused ---
    pub(crate) cycle_energy_fj: Vec<f64>,
    pub(crate) cycle_rises: Vec<u64>,
    /// Primary-output values, `n_cycles × n_outputs`, flattened.
    pub(crate) outputs_flat: Vec<bool>,
    pub(crate) wddl_alarms: Vec<usize>,
    // --- geometry of the last run ---
    pub(crate) samples_per_cycle: usize,
    pub(crate) n_outputs: usize,
    // --- kernel work counters (per window, reset like the buffers;
    // deterministic functions of (comp, stimuli), so campaign sums are
    // thread-count invariant) ---
    /// Timing-wheel events drained in the last window.
    pub(crate) events_processed: u64,
    /// Combinational gate evaluations in the last window.
    pub(crate) gate_evals: u64,
    /// Events currently pending on the wheel.
    pub(crate) wheel_pending: u64,
    /// Peak simultaneous pending events (wheel occupancy high-water).
    pub(crate) wheel_peak: u64,
}

impl EngineScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores the initial engine state for a `n_cycles`-cycle window
    /// of `comp`, reusing every buffer's capacity.
    pub(crate) fn reset(&mut self, comp: &CompiledSim, n_cycles: usize) {
        let spc = comp.cfg.samples_per_cycle;
        self.values.clear();
        self.values.resize(comp.n_nets, false);
        self.order = 0;
        self.gate_seq.clear();
        self.gate_seq.resize(comp.n_gates, 0);
        self.pending.clear();
        self.pending.resize(comp.n_gates, None);
        let w = comp.wheel_size as usize;
        if self.wheel.len() != w {
            self.wheel.clear();
            self.wheel.resize_with(w, Vec::new);
            self.occupancy.clear();
            self.occupancy.resize(w / 64, 0);
        } else {
            // A completed window drains every bucket; this sweep only
            // finds leftovers after an aborted run. Visiting set bits
            // keeps it O(words) when there are none.
            for (wi, word) in self.occupancy.iter_mut().enumerate() {
                let mut m = *word;
                while m != 0 {
                    self.wheel[wi * 64 + m.trailing_zeros() as usize].clear();
                    m &= m - 1;
                }
                *word = 0;
            }
        }
        self.wheel_mask = comp.wheel_size - 1;
        self.cursor = 0;
        self.horizon = n_cycles as u64 * comp.cfg.period_ps;
        self.last_transition.clear();
        self.last_transition.resize(comp.n_nets, None);
        self.trace.clear();
        self.trace.resize(n_cycles * spc, 0.0);
        self.waveform.clear();
        self.energy_fj = 0.0;
        self.rising_events = 0;
        self.reg_state.clear();
        self.reg_state.resize(comp.se_regs.len(), false);
        // Logical 0 as a *valid* WDDL code word (t, f) = (0, 1).
        self.reg_state_pairs.clear();
        self.reg_state_pairs
            .resize(comp.wddl_regs.len(), (false, true));
        self.prev_values.clear();
        self.prev_values.resize(comp.n_nets, false);
        self.cycle_energy_fj.clear();
        self.cycle_rises.clear();
        self.outputs_flat.clear();
        self.wddl_alarms.clear();
        self.samples_per_cycle = spc;
        self.n_outputs = comp.outputs.len();
        self.events_processed = 0;
        self.gate_evals = 0;
        self.wheel_pending = 0;
        self.wheel_peak = 0;
    }

    /// The full supply-current trace of the last window.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }

    /// The samples of one cycle of the last window.
    pub fn cycle_trace(&self, cycle: usize) -> &[f64] {
        &self.trace[cycle * self.samples_per_cycle..(cycle + 1) * self.samples_per_cycle]
    }

    /// Supply energy per cycle, in fJ.
    pub fn cycle_energy_fj(&self) -> &[f64] {
        &self.cycle_energy_fj
    }

    /// Rising-transition count per cycle.
    pub fn cycle_rises(&self) -> &[u64] {
        &self.cycle_rises
    }

    /// Primary-output values at the end of `cycle`.
    pub fn outputs(&self, cycle: usize) -> &[bool] {
        &self.outputs_flat[cycle * self.n_outputs..(cycle + 1) * self.n_outputs]
    }

    /// Per-cycle WDDL DFA alarm counts (empty for single-ended runs).
    pub fn wddl_alarms(&self) -> &[usize] {
        &self.wddl_alarms
    }

    /// Timing-wheel events drained in the last window. A deterministic
    /// function of the compiled design and the window's stimuli.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Combinational gate evaluations in the last window.
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Peak simultaneous pending events on the timing wheel in the
    /// last window (queue-depth high-water mark).
    pub fn wheel_peak(&self) -> u64 {
        self.wheel_peak
    }

    /// Moves the last window's results into an owned
    /// [`crate::SimResult`], leaving the scratch reusable. The
    /// one-shot `simulate_*` drivers use this; campaign code reads the
    /// borrow accessors instead to stay allocation-free.
    pub fn take_sim_result(&mut self) -> crate::SimResult {
        let n_outputs = self.n_outputs.max(1);
        let outputs_per_cycle = self
            .outputs_flat
            .chunks(n_outputs)
            .map(<[bool]>::to_vec)
            .collect();
        crate::SimResult {
            trace: std::mem::take(&mut self.trace),
            cycle_energy_fj: std::mem::take(&mut self.cycle_energy_fj),
            cycle_rises: std::mem::take(&mut self.cycle_rises),
            outputs_per_cycle,
            wddl_alarms: std::mem::take(&mut self.wddl_alarms),
            waveform: std::mem::take(&mut self.waveform),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    fn and_fixture() -> (Netlist, Library, SimConfig) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        (nl, Library::lib180(), SimConfig::default())
    }

    #[test]
    fn unknown_cell_is_a_typed_error() {
        let (mut nl, lib, cfg) = and_fixture();
        let a = nl.net_by_name("a").unwrap();
        let z = nl.add_net("z");
        nl.add_gate("gx", "FROBNICATOR", GateKind::Comb, vec![a], vec![z]);
        // The load model cannot resolve the cell either; build it from
        // the known-good prefix to reach the compile step.
        let load = LoadModel {
            c_eff_ff: vec![0.0; nl.net_count()],
            drive_kohm: vec![0.0; nl.net_count()],
            couplings: vec![Vec::new(); nl.net_count()],
        };
        let err = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownCell {
                gate: "gx".into(),
                cell: "FROBNICATOR".into()
            }
        );
        assert!(err.to_string().contains("FROBNICATOR"));
    }

    #[test]
    fn combinational_cycle_is_a_typed_error() {
        let mut nl = Netlist::new("loopy");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![y], vec![x]);
        nl.add_gate("g1", "INV", GateKind::Comb, vec![x], vec![y]);
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let err = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap_err();
        assert_eq!(
            err,
            SimError::CombinationalCycle {
                netlist: "loopy".into()
            }
        );
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_scratch() {
        let (nl, lib, cfg) = and_fixture();
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let comp = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap();
        let vectors = vec![vec![true, true], vec![false, true], vec![true, true]];

        let mut fresh = EngineScratch::new();
        comp.run_single_ended(&mut fresh, &vectors);
        let reference: Vec<u64> = fresh.trace().iter().map(|x| x.to_bits()).collect();
        let ref_energy: Vec<u64> = fresh
            .cycle_energy_fj()
            .iter()
            .map(|x| x.to_bits())
            .collect();

        // Dirty the scratch with a different window, then re-run.
        let mut reused = EngineScratch::new();
        comp.run_single_ended(&mut reused, &[vec![true, false], vec![true, true]]);
        comp.run_single_ended(&mut reused, &vectors);
        let got: Vec<u64> = reused.trace().iter().map(|x| x.to_bits()).collect();
        let got_energy: Vec<u64> = reused
            .cycle_energy_fj()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(got, reference);
        assert_eq!(got_energy, ref_energy);
        assert_eq!(reused.outputs(2), fresh.outputs(2));
    }

    #[test]
    fn compiled_tables_mirror_netlist_structure() {
        let (nl, lib, cfg) = and_fixture();
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let comp = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap();
        assert_eq!(comp.n_gates, 1);
        assert_eq!(comp.n_nets, 3);
        let a = nl.net_by_name("a").unwrap();
        assert_eq!(comp.fanout.fanout(a), &[GateId(0)]);
        assert!(comp.exempt[a.index()]);
        let y = nl.net_by_name("y").unwrap();
        assert!(!comp.exempt[y.index()]);
        let CellKind::Comb { delay_ps, .. } = comp.cells[0] else {
            panic!("AND2 must compile to a comb cell");
        };
        let cell = lib.by_name("AND2").unwrap();
        let expect = load
            .delay_ps(cell.intrinsic_delay_ps(), cell.drive_kohm(), y)
            .max(1.0) as u64;
        assert_eq!(delay_ps, expect);
    }
}
