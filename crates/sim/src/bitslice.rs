//! Bit-sliced oblivious simulation backend: 64 stimuli per `u64` lane.
//!
//! Campaign workloads simulate the *same* compiled netlist thousands
//! of times with different stimuli — exactly the shape bit-parallel
//! simulation exploits. [`BitSim`] packs 64 independent campaign
//! windows into the bit lanes of `u64` words and evaluates gates
//! obliviously: every gate evaluation computes all 64 lanes at once
//! with branch-free boolean word operations (an irredundant
//! sum-of-products program derived from the cell's truth table via
//! [`secflow_cells::isop`]), and the per-lane supply traces are
//! reconstructed from lane masks so the result is **byte-identical**
//! (`f64::to_bits`) to running [`CompiledSim`]'s event kernel once per
//! lane.
//!
//! # Why a lane-masked *event* engine
//!
//! A pure zero-delay topological sweep cannot reproduce the event
//! kernel's traces: single-ended CMOS glitches, rise times are
//! data-dependent, and crosstalk depends on transition simultaneity.
//! `BitSim` therefore runs the *same* timing-wheel event loop as
//! [`crate::compiled`], but each event carries a lane `mask`: the set
//! of lanes in which this net changes to the event's per-lane values
//! at this time. WDDL's always-evaluate property (every gate fires
//! every cycle, Tiri & Verbauwhede '04) makes the lanes track each
//! other closely, so one masked event typically stands in for many
//! scalar events — the source of the speedup.
//!
//! # Exactness argument
//!
//! Project any masked execution onto a single lane `l`: injections are
//! issued in the same order as the scalar driver; a masked event's
//! creation position is shared by every lane in its mask; buckets
//! drain in creation (FIFO) order, which equals the scalar engine's
//! `(time, order)` order; and a gate evaluation acts on exactly the
//! lanes whose inputs just changed (for quiescent lanes the evaluated
//! value equals the effective value, so the act mask excludes them
//! automatically). By induction over event positions, lane `l` sees
//! precisely the scalar engine's event sequence, so its per-lane `f64`
//! accumulations (energy, trace bins) run in the scalar order and
//! produce the scalar bits. Lanes outside every injection mask (dead
//! lanes of a ragged batch) never flip a net and contribute nothing.
//! `tests/bitslice_cross_check.rs` pins this contract.

use secflow_cells::{isop, Library};
use secflow_netlist::{GateId, NetId, Netlist};

use crate::compiled::{CellKind, CompiledSim};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::load::LoadModel;

/// Which simulation kernel a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBackend {
    /// The compiled event-driven kernel, one window at a time
    /// ([`CompiledSim`]). The golden reference.
    #[default]
    Event,
    /// The bit-sliced oblivious kernel, 64 windows per batch
    /// ([`BitSim`]); byte-identical to `Event` per lane.
    Bitslice,
}

impl SimBackend {
    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Event => "event",
            SimBackend::Bitslice => "bitslice",
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(SimBackend::Event),
            "bitslice" => Ok(SimBackend::Bitslice),
            other => Err(format!(
                "unknown sim backend `{other}` (expected `event` or `bitslice`)"
            )),
        }
    }
}

/// One lane-masked event: net `net` changes to the per-lane values in
/// `vals` for every lane set in `mask`. `gate == u32::MAX` marks a
/// driver injection; otherwise the scheduling gate, whose pending
/// bookkeeping the event clears when it fires. Cancellation edits
/// `mask` in place through the event pool.
#[derive(Debug, Clone, Copy)]
struct BitEvent {
    net: u32,
    gate: u32,
    mask: u64,
    vals: u64,
}

const INJECT: u32 = u32::MAX;

/// A build-once bit-sliced compilation: the shared [`CompiledSim`]
/// tables plus the per-gate sum-of-products word programs and the
/// per-net deposit geometry the masked engine needs.
#[derive(Debug, Clone)]
pub struct BitSim {
    comp: CompiledSim,
    /// CSR offsets into `cubes`, `n_gates + 1` entries.
    cube_offsets: Vec<u32>,
    /// `(positive literal mask, negative literal mask)` over the
    /// gate's input pins; `out = OR over cubes of AND over literals`.
    cubes: Vec<(u8, u8)>,
    /// Per-net rising charge before crosstalk: `c_eff · Vdd` (fC).
    q_base: Vec<f64>,
    /// Per-net deposit bin count (`ceil(max(2RC, sample) / sample)`).
    nbins: Vec<u32>,
    /// `nbins as f64`, the exact divisor the scalar engine uses.
    nbins_f: Vec<f64>,
    /// Any coupling exists: per-lane last-transition tracking is
    /// required for exact crosstalk.
    track_lt: bool,
}

impl BitSim {
    /// Compiles `nl` for bit-sliced simulation. Accepts exactly the
    /// inputs of [`CompiledSim::build`] and fails with the same typed
    /// errors, so backend selection never changes error behaviour.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownCell`] / [`SimError::CombinationalCycle`] as
    /// the event kernel; [`SimError::UnsupportedConfig`] if
    /// `cfg.record_waveform` is set (per-lane waveforms are not
    /// reconstructed — use the event backend to dump VCDs).
    pub fn build(
        nl: &Netlist,
        lib: &Library,
        load: &LoadModel,
        cfg: &SimConfig,
    ) -> Result<BitSim, SimError> {
        cfg.validate_backend(SimBackend::Bitslice)?;
        let comp = CompiledSim::build(nl, lib, load, cfg)?;

        let mut cube_offsets = Vec::with_capacity(comp.n_gates + 1);
        let mut cubes: Vec<(u8, u8)> = Vec::new();
        cube_offsets.push(0u32);
        for g in 0..comp.n_gates {
            if let CellKind::Comb { tt, .. } = comp.cells[g] {
                let cover = isop(&tt);
                let lo = cubes.len();
                for c in cover.cubes() {
                    cubes.push((c.pos_mask(), c.neg_mask()));
                }
                // The word program must compute exactly the truth
                // table it replaces — checked once at build, for every
                // input pattern of this gate.
                for idx in 0..(1u32 << tt.vars()) {
                    let got = cubes[lo..]
                        .iter()
                        .any(|&(p, n)| (idx & u32::from(p)) == u32::from(p) && (idx & u32::from(n)) == 0);
                    debug_assert_eq!(got, tt.eval(idx), "ISOP cover diverges from tt");
                    let _ = got;
                }
            }
            cube_offsets.push(cubes.len() as u32);
        }

        let vdd = comp.cfg.vdd;
        let sample_ps = comp.sample_ps;
        let mut q_base = Vec::with_capacity(comp.n_nets);
        let mut nbins = Vec::with_capacity(comp.n_nets);
        let mut nbins_f = Vec::with_capacity(comp.n_nets);
        for i in 0..comp.n_nets {
            q_base.push(comp.c_eff_ff[i] * vdd);
            let tau_ps = (2.0 * comp.drive_kohm[i] * comp.c_eff_ff[i]).max(sample_ps);
            let n = (tau_ps / sample_ps).ceil().max(1.0) as usize;
            nbins.push(n as u32);
            nbins_f.push(n as f64);
        }
        let track_lt = !comp.coup.is_empty();

        Ok(BitSim {
            comp,
            cube_offsets,
            cubes,
            q_base,
            nbins,
            nbins_f,
            track_lt,
        })
    }

    /// The compiled configuration.
    pub fn config(&self) -> &SimConfig {
        self.comp.config()
    }

    /// Number of primary inputs (one packed word per input per cycle).
    pub fn n_inputs(&self) -> usize {
        self.comp.inputs.len()
    }

    /// Simulates up to 64 single-ended windows at once. `vectors` is
    /// one packed word per primary input per cycle (bit `l` of word
    /// `k` is lane `l`'s value of input `k`); `active` masks the live
    /// lanes — dead lanes receive no injections and contribute
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if any cycle's word count differs from the input count.
    pub fn run_single_ended(&self, scratch: &mut BitScratch, vectors: &[Vec<u64>], active: u64) {
        let mut e = MaskedEngine::new(self, scratch, vectors.len());
        e.drive_single_ended(vectors, active);
    }

    /// Simulates up to 64 WDDL two-phase windows at once; `vectors` is
    /// one packed word per input *pair* per cycle.
    ///
    /// # Panics
    ///
    /// Panics if any cycle's word count differs from the pair count.
    pub fn run_wddl(
        &self,
        scratch: &mut BitScratch,
        input_pairs: &[(NetId, NetId)],
        vectors: &[Vec<u64>],
        active: u64,
    ) {
        let mut e = MaskedEngine::new(self, scratch, vectors.len());
        e.drive_wddl(input_pairs, vectors, active);
    }

    /// Simulates up to 64 windows under the idealized glitch-free
    /// power model (pure zero-delay topological sweep — here the
    /// bitslice is trivial because the model is already oblivious).
    ///
    /// # Panics
    ///
    /// Panics if any cycle's word count differs from the input count.
    pub fn run_single_ended_glitch_free(
        &self,
        scratch: &mut BitScratch,
        vectors: &[Vec<u64>],
        _active: u64,
    ) {
        let comp = &self.comp;
        scratch.reset(comp, vectors.len());
        let spc = comp.cfg.samples_per_cycle;
        let vdd = comp.cfg.vdd;
        let bins = (spc / 4).max(1);
        let bins_f = bins as f64;

        // Consistent initial state: all sources 0, evaluated once.
        scratch.prev_vals.iter_mut().for_each(|v| *v = 0);
        self.eval_comb_words(&mut scratch.prev_vals);

        for (c, words) in vectors.iter().enumerate() {
            assert_eq!(words.len(), comp.inputs.len(), "bad vector length");
            scratch.vals.iter_mut().for_each(|v| *v = 0);
            for (&net, &w) in comp.inputs.iter().zip(words) {
                scratch.vals[net.index()] = w;
            }
            for (&(_, q), &w) in comp.se_regs.iter().zip(&scratch.reg_state) {
                scratch.vals[q.index()] = w;
            }
            self.eval_comb_words(&mut scratch.vals);

            // Ascending net order per lane — the scalar model's exact
            // f64 accumulation order.
            let mut energy = [0.0f64; 64];
            let mut rises = [0u64; 64];
            for i in 0..comp.n_nets {
                if comp.exempt[i] {
                    continue;
                }
                let mut m = scratch.vals[i] & !scratch.prev_vals[i];
                if m == 0 {
                    continue;
                }
                let e_net = comp.c_eff_ff[i] * vdd * vdd;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    energy[l] += e_net;
                    rises[l] += 1;
                    m &= m - 1;
                }
            }
            for (l, &e) in energy.iter().enumerate() {
                if e != 0.0 {
                    let d = e / vdd / bins_f;
                    for b in 0..bins {
                        scratch.trace[(c * spc + b) * 64 + l] += d;
                    }
                }
                scratch.cycle_energy[c * 64 + l] = e;
                scratch.cycle_rises[c * 64 + l] = rises[l];
            }
            for (i, &(d, _)) in comp.se_regs.iter().enumerate() {
                scratch.reg_state[i] = scratch.vals[d.index()];
            }
            for &o in &comp.outputs {
                scratch.outputs.push(scratch.vals[o.index()]);
            }
            std::mem::swap(&mut scratch.vals, &mut scratch.prev_vals);
        }
    }

    /// Zero-delay word evaluation of the combinational portion in
    /// cached topological order.
    fn eval_comb_words(&self, vals: &mut [u64]) {
        for &gid in &self.comp.topo {
            match self.comp.cells[gid.index()] {
                CellKind::Comb { .. } => {
                    let v = self.eval_gate_word(gid.index(), vals);
                    vals[self.comp.out_net[gid.index()].index()] = v;
                }
                CellKind::Tie(v) => {
                    vals[self.comp.out_net[gid.index()].index()] = if v { !0 } else { 0 };
                }
                CellKind::Dff | CellKind::WddlDff => {}
            }
        }
    }

    /// All 64 lanes of one gate's output, from its cube program.
    #[inline]
    fn eval_gate_word(&self, g: usize, vals: &[u64]) -> u64 {
        let lo = self.comp.in_offsets[g] as usize;
        let hi = self.comp.in_offsets[g + 1] as usize;
        let mut ins = [0u64; 8];
        for (i, &inp) in self.comp.in_nets[lo..hi].iter().enumerate() {
            ins[i] = vals[inp.index()];
        }
        let clo = self.cube_offsets[g] as usize;
        let chi = self.cube_offsets[g + 1] as usize;
        let mut out = 0u64;
        for &(p, n) in &self.cubes[clo..chi] {
            let mut term = !0u64;
            let mut pm = p;
            while pm != 0 {
                term &= ins[pm.trailing_zeros() as usize];
                pm &= pm - 1;
            }
            let mut nm = n;
            while nm != 0 {
                term &= !ins[nm.trailing_zeros() as usize];
                nm &= nm - 1;
            }
            out |= term;
        }
        out
    }
}

/// The reusable mutable half of the bit-sliced kernel: one per worker
/// thread, reset per batch, allocation-free in steady state. Per-lane
/// results are read back through the lane accessors.
#[derive(Debug, Default)]
pub struct BitScratch {
    // --- masked event-engine state ---
    /// Current lane values per net.
    vals: Vec<u64>,
    /// Per-gate: lanes with a pending output event.
    pend_mask: Vec<u64>,
    /// Per-gate: the pending value per lane (valid under `pend_mask`).
    pend_val: Vec<u64>,
    /// Per-gate: pool indices of live pending events (disjoint masks).
    pend_events: Vec<Vec<u32>>,
    /// Event pool of the current window; wheel buckets hold indices so
    /// cancellation can edit masks in place.
    pool: Vec<BitEvent>,
    wheel: Vec<Vec<u32>>,
    occupancy: Vec<u64>,
    wheel_mask: u64,
    cursor: u64,
    horizon: u64,
    // --- per-lane last transitions (allocated only under crosstalk) ---
    /// `n_nets × 64` transition times.
    lt_time: Vec<u64>,
    /// Per net: lanes with a recorded transition.
    lt_present: Vec<u64>,
    /// Per net: last transition value per lane.
    lt_val: Vec<u64>,
    // --- per-lane accumulators ---
    /// Running cycle energy (fJ) per lane.
    energy_fj: Vec<f64>,
    /// Running cycle rise count per lane.
    rises: Vec<u64>,
    /// Supply trace, transposed: `[(cycle·spc + bin)·64 + lane]`.
    trace: Vec<f64>,
    /// `[cycle·64 + lane]` energies.
    cycle_energy: Vec<f64>,
    /// `[cycle·64 + lane]` rise counts.
    cycle_rises: Vec<u64>,
    /// Primary-output lane words, `n_cycles × n_outputs`, flattened.
    outputs: Vec<u64>,
    /// `[cycle·64 + lane]` WDDL DFA alarm counts.
    wddl_alarms: Vec<u32>,
    // --- cycle-driver state ---
    reg_state: Vec<u64>,
    reg_t: Vec<u64>,
    reg_f: Vec<u64>,
    /// Previous-cycle values (glitch-free model only).
    prev_vals: Vec<u64>,
    // --- geometry of the last run ---
    samples_per_cycle: usize,
    n_outputs: usize,
    n_cycles: usize,
    // --- batch work counters (plain u64, read once per batch) ---
    events_processed: u64,
    gate_evals: u64,
    wheel_pending: u64,
    wheel_peak: u64,
}

impl BitScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, comp: &CompiledSim, n_cycles: usize) {
        let spc = comp.cfg.samples_per_cycle;
        self.vals.clear();
        self.vals.resize(comp.n_nets, 0);
        self.pend_mask.clear();
        self.pend_mask.resize(comp.n_gates, 0);
        self.pend_val.clear();
        self.pend_val.resize(comp.n_gates, 0);
        if self.pend_events.len() != comp.n_gates {
            self.pend_events.clear();
            self.pend_events.resize_with(comp.n_gates, Vec::new);
        } else {
            for v in &mut self.pend_events {
                v.clear();
            }
        }
        self.pool.clear();
        let w = comp.wheel_size as usize;
        if self.wheel.len() != w {
            self.wheel.clear();
            self.wheel.resize_with(w, Vec::new);
            self.occupancy.clear();
            self.occupancy.resize(w / 64, 0);
        } else {
            for (wi, word) in self.occupancy.iter_mut().enumerate() {
                let mut m = *word;
                while m != 0 {
                    self.wheel[wi * 64 + m.trailing_zeros() as usize].clear();
                    m &= m - 1;
                }
                *word = 0;
            }
        }
        self.wheel_mask = comp.wheel_size - 1;
        self.cursor = 0;
        self.horizon = n_cycles as u64 * comp.cfg.period_ps;
        let lt = if comp.coup.is_empty() { 0 } else { comp.n_nets };
        self.lt_time.clear();
        self.lt_time.resize(lt * 64, 0);
        self.lt_present.clear();
        self.lt_present.resize(lt, 0);
        self.lt_val.clear();
        self.lt_val.resize(lt, 0);
        self.energy_fj.clear();
        self.energy_fj.resize(64, 0.0);
        self.rises.clear();
        self.rises.resize(64, 0);
        self.trace.clear();
        self.trace.resize(n_cycles * spc * 64, 0.0);
        self.cycle_energy.clear();
        self.cycle_energy.resize(n_cycles * 64, 0.0);
        self.cycle_rises.clear();
        self.cycle_rises.resize(n_cycles * 64, 0);
        self.outputs.clear();
        self.wddl_alarms.clear();
        self.wddl_alarms.resize(n_cycles * 64, 0);
        self.reg_state.clear();
        self.reg_state.resize(comp.se_regs.len(), 0);
        // Logical 0 as a valid WDDL code word: (t, f) = (0, 1).
        self.reg_t.clear();
        self.reg_t.resize(comp.wddl_regs.len(), 0);
        self.reg_f.clear();
        self.reg_f.resize(comp.wddl_regs.len(), !0);
        self.prev_vals.clear();
        self.prev_vals.resize(comp.n_nets, 0);
        self.samples_per_cycle = spc;
        self.n_outputs = comp.outputs.len();
        self.n_cycles = n_cycles;
        self.events_processed = 0;
        self.gate_evals = 0;
        self.wheel_pending = 0;
        self.wheel_peak = 0;
    }

    /// One lane's samples of one cycle of the last batch.
    pub fn cycle_trace(&self, cycle: usize, lane: usize) -> Vec<f64> {
        let spc = self.samples_per_cycle;
        (0..spc)
            .map(|b| self.trace[(cycle * spc + b) * 64 + lane])
            .collect()
    }

    /// One lane's full trace over the last batch's window.
    pub fn lane_trace(&self, lane: usize) -> Vec<f64> {
        (0..self.n_cycles * self.samples_per_cycle)
            .map(|b| self.trace[b * 64 + lane])
            .collect()
    }

    /// One lane's supply energy of one cycle, in fJ.
    pub fn cycle_energy_fj(&self, cycle: usize, lane: usize) -> f64 {
        self.cycle_energy[cycle * 64 + lane]
    }

    /// One lane's rising-transition count of one cycle.
    pub fn cycle_rises(&self, cycle: usize, lane: usize) -> u64 {
        self.cycle_rises[cycle * 64 + lane]
    }

    /// Rising transitions summed over every cycle and lane of the last
    /// batch — a deterministic function of (design, batch stimuli).
    pub fn total_rises(&self) -> u64 {
        self.cycle_rises.iter().sum()
    }

    /// Primary-output value `j` of `lane` at the end of `cycle`.
    pub fn output_bit(&self, cycle: usize, j: usize, lane: usize) -> bool {
        self.outputs[cycle * self.n_outputs + j] >> lane & 1 == 1
    }

    /// One lane's WDDL DFA alarm count in `cycle`.
    pub fn wddl_alarm_count(&self, cycle: usize, lane: usize) -> u32 {
        self.wddl_alarms[cycle * 64 + lane]
    }

    /// Masked events drained in the last batch.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Masked gate evaluations in the last batch.
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Peak simultaneous pending masked events on the timing wheel.
    pub fn wheel_peak(&self) -> u64 {
        self.wheel_peak
    }
}

/// The masked event loop: a thin mutable view pairing one [`BitSim`]
/// with one [`BitScratch`] for one batch window.
struct MaskedEngine<'a> {
    sim: &'a BitSim,
    s: &'a mut BitScratch,
}

impl<'a> MaskedEngine<'a> {
    fn new(sim: &'a BitSim, scratch: &'a mut BitScratch, n_cycles: usize) -> Self {
        scratch.reset(&sim.comp, n_cycles);
        MaskedEngine { sim, s: scratch }
    }

    /// Establishes a consistent initial state in every lane by
    /// zero-delay evaluation, without recording any power.
    fn settle_initial(&mut self) {
        let mut vals = std::mem::take(&mut self.s.vals);
        self.sim.eval_comb_words(&mut vals);
        self.s.vals = vals;
    }

    #[inline]
    fn push_event(&mut self, time: u64, ev: BitEvent) {
        if time >= self.s.horizon {
            return;
        }
        debug_assert!(
            time >= self.s.cursor && time - self.s.cursor <= self.s.wheel_mask,
            "event outside the wheel span"
        );
        let idx = self.s.pool.len() as u32;
        self.s.pool.push(ev);
        let slot = (time & self.s.wheel_mask) as usize;
        self.s.wheel[slot].push(idx);
        self.s.occupancy[slot >> 6] |= 1 << (slot & 63);
        self.s.wheel_pending += 1;
        if self.s.wheel_pending > self.s.wheel_peak {
            self.s.wheel_peak = self.s.wheel_pending;
        }
        if ev.gate != INJECT {
            self.s.pend_events[ev.gate as usize].push(idx);
        }
    }

    /// Injects an externally driven change of `net` at `time`:
    /// per-lane values `vals`, restricted to the `mask` lanes.
    fn inject(&mut self, net: NetId, time: u64, vals: u64, mask: u64) {
        self.push_event(
            time,
            BitEvent {
                net: net.index() as u32,
                gate: INJECT,
                mask,
                vals,
            },
        );
    }

    /// Processes all events strictly before `t_end`, in creation
    /// (FIFO) order per bucket — the scalar `(time, order)` order.
    fn run_until(&mut self, t_end: u64) {
        let mask = self.s.wheel_mask;
        let mut t = self.s.cursor;
        'scan: while t < t_end {
            let p = (t & mask) as usize;
            let mut word = self.s.occupancy[p >> 6] >> (p & 63);
            if word == 0 {
                t += 64 - (t & 63);
                loop {
                    if t >= t_end {
                        break 'scan;
                    }
                    let q = (t & mask) as usize;
                    word = self.s.occupancy[q >> 6];
                    if word != 0 {
                        break;
                    }
                    t += 64;
                }
            }
            t += word.trailing_zeros() as u64;
            if t >= t_end {
                break;
            }
            let slot = (t & mask) as usize;
            self.s.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
            let bucket = std::mem::take(&mut self.s.wheel[slot]);
            self.s.events_processed += bucket.len() as u64;
            self.s.wheel_pending -= bucket.len() as u64;
            for &idx in &bucket {
                // Read at process time: earlier events in this bucket
                // may have cancelled lanes of this one.
                let ev = self.s.pool[idx as usize];
                self.process_event(t, idx, ev);
            }
            let mut bucket = bucket;
            bucket.clear();
            self.s.wheel[slot] = bucket;
            t += 1;
        }
        self.s.cursor = t_end;
    }

    fn process_event(&mut self, t: u64, idx: u32, ev: BitEvent) {
        if ev.gate != INJECT {
            let g = ev.gate as usize;
            // Eager cancellation already removed stale lanes from the
            // mask, so every remaining lane fires; clear its pending
            // bookkeeping exactly as the scalar engine does.
            self.s.pend_mask[g] &= !ev.mask;
            let list = &mut self.s.pend_events[g];
            if let Some(p) = list.iter().position(|&x| x == idx) {
                list.swap_remove(p);
            }
        }
        if ev.mask == 0 {
            return; // fully cancelled
        }
        let net = ev.net as usize;
        if self.sim.track_lt {
            // Every fired lane records a last transition, flip or not
            // (the scalar engine updates it on the no-change path too).
            let base = net * 64;
            let mut m = ev.mask;
            while m != 0 {
                self.s.lt_time[base + m.trailing_zeros() as usize] = t;
                m &= m - 1;
            }
            self.s.lt_present[net] |= ev.mask;
            self.s.lt_val[net] = (self.s.lt_val[net] & !ev.mask) | (ev.vals & ev.mask);
        }
        let cur = self.s.vals[net];
        let flip = ev.mask & (cur ^ ev.vals);
        if flip == 0 {
            return;
        }
        self.s.vals[net] = (cur & !flip) | (ev.vals & flip);
        if !self.sim.comp.exempt[net] {
            let rises = flip & ev.vals;
            if rises != 0 {
                self.record_rise(net, t, rises);
            }
        }
        for &g in self.sim.comp.fanout.fanout(ev_net(net)) {
            self.evaluate_gate(g, t);
        }
    }

    fn evaluate_gate(&mut self, gid: GateId, now: u64) {
        let g = gid.index();
        let CellKind::Comb { delay_ps, .. } = self.sim.comp.cells[g] else {
            return; // registers are driven by the cycle driver
        };
        self.s.gate_evals += 1;
        let out = self.sim.comp.out_net[g].index();
        let v = self.sim.eval_gate_word(g, &self.s.vals);
        let pm = self.s.pend_mask[g];
        // Per lane: the pending value if one exists, else the output.
        let eff = (self.s.pend_val[g] & pm) | (self.s.vals[out] & !pm);
        // Quiescent lanes satisfy v == eff, so `act` is automatically
        // confined to lanes whose inputs just changed.
        let act = v ^ eff;
        if act == 0 {
            return;
        }
        // Cancel pending opposite events (inertial filtering).
        let cancel = act & pm;
        if cancel != 0 {
            self.s.pend_mask[g] &= !cancel;
            let BitScratch {
                pend_events, pool, ..
            } = &mut *self.s;
            pend_events[g].retain(|&idx| {
                let e = &mut pool[idx as usize];
                e.mask &= !cancel;
                e.mask != 0
            });
        }
        // Schedule lanes whose target differs from the current output.
        let sched = act & (v ^ self.s.vals[out]);
        if sched != 0 {
            self.s.pend_mask[g] |= sched;
            self.s.pend_val[g] = (self.s.pend_val[g] & !sched) | (v & sched);
            // The pending flag stays set even when the event falls
            // past the horizon — mirroring the scalar engine.
            self.push_event(
                now + delay_ps,
                BitEvent {
                    net: out as u32,
                    gate: g as u32,
                    mask: sched,
                    vals: v,
                },
            );
        }
    }

    /// Records the supply charge of rising transitions on `net` in
    /// every lane of `rises`, in ascending lane order (each lane's
    /// accumulators are private, so any order gives its scalar bits).
    fn record_rise(&mut self, net: usize, t: u64, rises: u64) {
        let sim = self.sim;
        let comp = &sim.comp;
        let vdd = comp.cfg.vdd;
        let first = (t as f64 / comp.sample_ps) as usize;
        let total_bins = self.s.n_cycles * self.s.samples_per_cycle;
        let last = (first + sim.nbins[net] as usize).min(total_bins);
        let coups = comp.couplings(ev_net(net));
        if coups.is_empty() || !sim.track_lt {
            let q = sim.q_base[net].max(0.0);
            let e = q * vdd;
            let per_bin = q / sim.nbins_f[net];
            let mut m = rises;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                self.s.energy_fj[l] += e;
                self.s.rises[l] += 1;
                for b in first..last {
                    self.s.trace[b * 64 + l] += per_bin;
                }
                m &= m - 1;
            }
        } else {
            let win = comp.cfg.crosstalk_window_ps;
            let mut m = rises;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                let mut q = sim.q_base[net];
                for &(other, cc) in coups {
                    let o = other.index();
                    if self.s.lt_present[o] >> l & 1 == 1
                        && t.saturating_sub(self.s.lt_time[o * 64 + l]) <= win
                    {
                        if self.s.lt_val[o] >> l & 1 == 1 {
                            // Both rising: the coupling cap sees no swing.
                            q -= cc * vdd;
                        } else {
                            // Opposite transitions: Miller doubling.
                            q += cc * vdd;
                        }
                    }
                }
                let q = q.max(0.0);
                self.s.energy_fj[l] += q * vdd;
                self.s.rises[l] += 1;
                let per_bin = q / sim.nbins_f[net];
                for b in first..last {
                    self.s.trace[b * 64 + l] += per_bin;
                }
                m &= m - 1;
            }
        }
    }

    /// Moves the running per-lane energies and rise counts into the
    /// per-cycle result arrays and resets them.
    fn take_energy(&mut self, cycle: usize) {
        for l in 0..64 {
            self.s.cycle_energy[cycle * 64 + l] = self.s.energy_fj[l];
            self.s.energy_fj[l] = 0.0;
            self.s.cycle_rises[cycle * 64 + l] = self.s.rises[l];
            self.s.rises[l] = 0;
        }
    }

    fn capture_outputs(&mut self) {
        for i in 0..self.sim.comp.outputs.len() {
            let o = self.sim.comp.outputs[i];
            self.s.outputs.push(self.s.vals[o.index()]);
        }
    }

    fn drive_single_ended(&mut self, vectors: &[Vec<u64>], active: u64) {
        let comp = &self.sim.comp;
        let (period, clk2q, in_delay) =
            (comp.cfg.period_ps, comp.cfg.clk2q_ps, comp.cfg.input_delay_ps);
        let (n_regs, n_inputs) = (comp.se_regs.len(), comp.inputs.len());
        self.settle_initial();
        for (c, words) in vectors.iter().enumerate() {
            assert_eq!(words.len(), n_inputs, "bad vector length");
            let t0 = c as u64 * period;
            for i in 0..n_regs {
                let (_, q) = self.sim.comp.se_regs[i];
                let w = self.s.reg_state[i];
                self.inject(q, t0 + clk2q, w, active);
            }
            for (i, &w) in words.iter().enumerate() {
                self.inject(self.sim.comp.inputs[i], t0 + in_delay, w, active);
            }
            self.run_until(t0 + period);
            for i in 0..n_regs {
                let (d, _) = self.sim.comp.se_regs[i];
                self.s.reg_state[i] = self.s.vals[d.index()];
            }
            self.take_energy(c);
            self.capture_outputs();
        }
    }

    fn drive_wddl(&mut self, input_pairs: &[(NetId, NetId)], vectors: &[Vec<u64>], active: u64) {
        let comp = &self.sim.comp;
        let (period, clk2q, in_delay) =
            (comp.cfg.period_ps, comp.cfg.clk2q_ps, comp.cfg.input_delay_ps);
        let eval_start = comp.cfg.eval_start_ps();
        let n_regs = comp.wddl_regs.len();
        self.settle_initial();
        for (c, words) in vectors.iter().enumerate() {
            assert_eq!(words.len(), input_pairs.len(), "bad vector length");
            let t0 = c as u64 * period;
            let te = t0 + eval_start;

            // Precharge phase: everything to (0, 0).
            for i in 0..n_regs {
                let (_, _, qt, qf) = self.sim.comp.wddl_regs[i];
                self.inject(qt, t0 + clk2q, 0, active);
                self.inject(qf, t0 + clk2q, 0, active);
            }
            for &(t, f) in input_pairs {
                self.inject(t, t0 + in_delay, 0, active);
                self.inject(f, t0 + in_delay, 0, active);
            }
            // Evaluation phase: stored values and differential inputs.
            for i in 0..n_regs {
                let (_, _, qt, qf) = self.sim.comp.wddl_regs[i];
                let (wt, wf) = (self.s.reg_t[i], self.s.reg_f[i]);
                self.inject(qt, te + clk2q, wt, active);
                self.inject(qf, te + clk2q, wf, active);
            }
            for (i, &w) in words.iter().enumerate() {
                let (t, f) = input_pairs[i];
                self.inject(t, te + in_delay, w, active);
                self.inject(f, te + in_delay, !w, active);
            }
            self.run_until(t0 + period);

            // Capture at the rising edge; (0,0) pairs are DFA alarms.
            for i in 0..n_regs {
                let (dt, df, _, _) = self.sim.comp.wddl_regs[i];
                let vt = self.s.vals[dt.index()];
                let vf = self.s.vals[df.index()];
                let mut z = !vt & !vf & active;
                while z != 0 {
                    let l = z.trailing_zeros() as usize;
                    self.s.wddl_alarms[c * 64 + l] += 1;
                    z &= z - 1;
                }
                self.s.reg_t[i] = vt;
                self.s.reg_f[i] = vf;
            }
            self.take_energy(c);
            self.capture_outputs();
        }
    }
}

/// `NetId` from a dense index (the engine stores raw `usize`s).
#[inline]
fn ev_net(net: usize) -> NetId {
    NetId(net as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::EngineScratch;
    use secflow_netlist::GateKind;

    fn fixture() -> (Netlist, Library, SimConfig) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_net("w");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![w]);
        nl.add_gate("g1", "INV", GateKind::Comb, vec![w], vec![y]);
        nl.mark_output(y);
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        (nl, Library::lib180(), cfg)
    }

    /// Packs per-lane boolean vectors into lane words.
    fn pack(cycles: &[Vec<Vec<bool>>]) -> (Vec<Vec<u64>>, u64) {
        let lanes = cycles.len();
        let n_cycles = cycles[0].len();
        let n_inputs = cycles[0][0].len();
        let mut packed = vec![vec![0u64; n_inputs]; n_cycles];
        for (l, win) in cycles.iter().enumerate() {
            for (c, v) in win.iter().enumerate() {
                for (k, &bit) in v.iter().enumerate() {
                    if bit {
                        packed[c][k] |= 1 << l;
                    }
                }
            }
        }
        (packed, if lanes == 64 { !0 } else { (1u64 << lanes) - 1 })
    }

    #[test]
    fn lanes_match_scalar_event_kernel_bit_for_bit() {
        let (nl, lib, cfg) = fixture();
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let comp = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap();
        let sim = BitSim::build(&nl, &lib, &load, &cfg).unwrap();

        // 7 lanes (ragged), 3 cycles, all 4 input combinations cycled.
        let windows: Vec<Vec<Vec<bool>>> = (0..7u32)
            .map(|l| {
                (0..3u32)
                    .map(|c| vec![(l + c) & 1 == 1, (l + c) & 2 == 2])
                    .collect()
            })
            .collect();
        let (packed, active) = pack(&windows);
        let mut bs = BitScratch::new();
        sim.run_single_ended(&mut bs, &packed, active);

        let mut es = EngineScratch::new();
        for (l, win) in windows.iter().enumerate() {
            comp.run_single_ended(&mut es, win);
            let want: Vec<u64> = es.trace().iter().map(|x| x.to_bits()).collect();
            let got: Vec<u64> = bs.lane_trace(l).iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "trace lane {l}");
            for c in 0..3 {
                assert_eq!(
                    bs.cycle_energy_fj(c, l).to_bits(),
                    es.cycle_energy_fj()[c].to_bits(),
                    "energy lane {l} cycle {c}"
                );
                assert_eq!(bs.cycle_rises(c, l), es.cycle_rises()[c], "rises lane {l}");
                assert_eq!(bs.output_bit(c, 0, l), es.outputs(c)[0], "out lane {l}");
            }
        }
    }

    #[test]
    fn dead_lanes_contribute_nothing() {
        let (nl, lib, cfg) = fixture();
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let sim = BitSim::build(&nl, &lib, &load, &cfg).unwrap();
        let mut bs = BitScratch::new();
        // One live lane toggling hard; 63 dead lanes.
        let packed = vec![vec![1u64, 1u64], vec![0u64, 1u64], vec![1u64, 1u64]];
        sim.run_single_ended(&mut bs, &packed, 1);
        for l in 1..64 {
            assert_eq!(bs.cycle_rises(0, l), 0, "dead lane {l} rose");
            assert_eq!(bs.cycle_energy_fj(0, l), 0.0);
            assert!(bs.lane_trace(l).iter().all(|&x| x == 0.0));
        }
        assert!(bs.lane_trace(0).iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn record_waveform_is_a_typed_unsupported_error() {
        let (nl, lib, mut cfg) = fixture();
        cfg.record_waveform = true;
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let err = BitSim::build(&nl, &lib, &load, &cfg).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedConfig { .. }), "{err:?}");
    }

    #[test]
    fn backend_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(SimBackend::from_str("event").unwrap(), SimBackend::Event);
        assert_eq!(
            SimBackend::from_str("bitslice").unwrap(),
            SimBackend::Bitslice
        );
        assert!(SimBackend::from_str("spice").is_err());
        assert_eq!(SimBackend::Bitslice.to_string(), "bitslice");
        assert_eq!(SimBackend::default(), SimBackend::Event);
    }
}
