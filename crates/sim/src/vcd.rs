//! VCD (Value Change Dump) waveform export.
//!
//! Enable [`crate::SimConfig::record_waveform`] on a simulation and
//! feed the resulting [`crate::SimResult::waveform`] to [`write_vcd`]
//! to inspect any run in a standard waveform viewer — the digital
//! equivalent of probing the Hspice transient the paper works with.

use std::fmt::Write as _;

use secflow_netlist::{NetId, Netlist};

/// VCD identifier for wire number `i`: a short printable-ASCII code.
fn ident(mut i: usize) -> String {
    // Base-94 over '!'..='~'.
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Serializes a transition log as a VCD document.
///
/// `waveform` entries are `(time_ps, net, value)` and must be sorted by
/// time (simulation output already is). All nets of `nl` are declared;
/// nets without transitions stay at `0`.
pub fn write_vcd(nl: &Netlist, waveform: &[(u64, NetId, bool)], module: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "$date secflow simulation $end");
    let _ = writeln!(s, "$timescale 1ps $end");
    let _ = writeln!(s, "$scope module {module} $end");
    for id in nl.net_ids() {
        let net = nl.net(id);
        // Skip completely unused nets.
        if net.driver.is_none() && net.sinks.is_empty() && !nl.inputs().contains(&id) {
            continue;
        }
        let _ = writeln!(
            s,
            "$var wire 1 {} {} $end",
            ident(id.index()),
            sanitize(&net.name)
        );
    }
    let _ = writeln!(s, "$upscope $end");
    let _ = writeln!(s, "$enddefinitions $end");
    let _ = writeln!(s, "#0");
    let _ = writeln!(s, "$dumpvars");
    for id in nl.net_ids() {
        let net = nl.net(id);
        if net.driver.is_none() && net.sinks.is_empty() && !nl.inputs().contains(&id) {
            continue;
        }
        let _ = writeln!(s, "0{}", ident(id.index()));
    }
    let _ = writeln!(s, "$end");

    let mut last_time = 0u64;
    for &(t, net, v) in waveform {
        if t != last_time {
            let _ = writeln!(s, "#{t}");
            last_time = t;
        }
        let _ = writeln!(s, "{}{}", u8::from(v), ident(net.index()));
    }
    s
}

/// VCD reference names must not contain whitespace; bracketed bus bits
/// are kept (standard), everything else odd is replaced.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '[' | ']' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_single_ended, SimConfig};
    use secflow_cells::Library;
    use secflow_netlist::GateKind;

    #[test]
    fn ident_is_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 20,
            record_waveform: true,
            ..Default::default()
        };
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &[vec![true], vec![false]]).unwrap();
        assert!(!r.waveform.is_empty());
        let vcd = write_vcd(&nl, &r.waveform, "t");
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains(" a $end"));
        assert!(vcd.contains("$enddefinitions"));
        // `a` rises at t=100 (input delay).
        assert!(vcd.contains("#100"));
    }

    #[test]
    fn waveform_disabled_by_default() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 20,
            ..Default::default()
        };
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &[vec![true]]).unwrap();
        assert!(r.waveform.is_empty());
    }

    #[test]
    fn sanitize_keeps_bus_brackets() {
        assert_eq!(sanitize("pl[3]"), "pl[3]");
        assert_eq!(sanitize("a b"), "a_b");
    }
}
