//! Cycle drivers: single-ended CMOS and two-phase WDDL simulation
//! loops around the event engine.
//!
//! These one-shot entry points compile the netlist
//! ([`crate::CompiledSim::build`]) and run a single window. Campaign
//! code that simulates many windows of the same netlist should compile
//! once and call `CompiledSim::run_*` with a reused
//! [`crate::EngineScratch`] instead — same results, no per-window
//! setup.

use secflow_cells::Library;
use secflow_extract::Parasitics;
use secflow_netlist::{NetId, Netlist};

use crate::compiled::{CompiledSim, EngineScratch};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::load::LoadModel;
use crate::noise::add_gaussian_noise;

/// The output of a power simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Supply-current trace: charge (fC) drawn per sample bin,
    /// `cycles × samples_per_cycle` entries.
    pub trace: Vec<f64>,
    /// Energy drawn from the supply per cycle, in fJ.
    pub cycle_energy_fj: Vec<f64>,
    /// Rising-transition count per cycle (switching activity).
    pub cycle_rises: Vec<u64>,
    /// Primary-output net values sampled at the end of each cycle.
    pub outputs_per_cycle: Vec<Vec<bool>>,
    /// For WDDL runs: per cycle, the number of registers whose input
    /// pair was still `(0, 0)` at the capturing clock edge — the DFA
    /// alarm condition of §4.3.
    pub wddl_alarms: Vec<usize>,
    /// Net transitions `(time_ps, net, new value)` when
    /// [`SimConfig::record_waveform`] is enabled.
    pub waveform: Vec<(u64, NetId, bool)>,
}

impl SimResult {
    /// Mean energy per cycle in fJ.
    pub fn mean_energy_fj(&self) -> f64 {
        if self.cycle_energy_fj.is_empty() {
            return 0.0;
        }
        self.cycle_energy_fj.iter().sum::<f64>() / self.cycle_energy_fj.len() as f64
    }

    /// The samples of one cycle.
    pub fn cycle_trace(&self, cycle: usize, samples_per_cycle: usize) -> &[f64] {
        &self.trace[cycle * samples_per_cycle..(cycle + 1) * samples_per_cycle]
    }
}

/// Applies the post-simulation measurement-noise model, if configured.
fn finish(mut result: SimResult, cfg: &SimConfig) -> SimResult {
    if cfg.noise_sigma > 0.0 {
        add_gaussian_noise(&mut result.trace, cfg.noise_sigma, cfg.noise_seed);
    }
    result
}

/// Simulates a single-ended (regular CMOS) netlist.
///
/// `input_vectors[c][i]` is the value of primary input `i` (in
/// [`Netlist::inputs`] order) during cycle `c`. Registers reset to 0.
///
/// # Errors
///
/// [`SimError::UnknownCell`] if a gate references a cell missing from
/// `lib`; [`SimError::CombinationalCycle`] if the netlist is cyclic.
///
/// # Panics
///
/// Panics if any vector length differs from the input count.
pub fn simulate_single_ended(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let load = LoadModel::try_build(nl, lib, parasitics)?;
    simulate_single_ended_with_load(nl, lib, &load, cfg, input_vectors)
}

/// [`simulate_single_ended`] with a caller-built [`LoadModel`].
///
/// Building the load model walks every gate and net; callers that
/// simulate the same netlist many times (trace campaigns) build it
/// once and reuse it across runs — or better, compile a
/// [`CompiledSim`] once and skip per-window setup entirely.
///
/// # Errors
///
/// See [`simulate_single_ended`].
pub fn simulate_single_ended_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let comp = CompiledSim::build(nl, lib, load, cfg)?;
    let mut scratch = EngineScratch::new();
    comp.run_single_ended(&mut scratch, input_vectors);
    Ok(finish(scratch.take_sim_result(), cfg))
}

/// Simulates a WDDL differential netlist through the two-phase
/// precharge/evaluate protocol.
///
/// `input_pairs[i]` is the `(true-rail, false-rail)` net pair of
/// logical input `i`; `input_vectors[c][i]` its logical value during
/// cycle `c`. In the first (precharge) phase of every cycle all input
/// pairs and register outputs are driven to `(0, 0)`; in the
/// evaluation phase to `(v, ¬v)`.
///
/// # Errors
///
/// See [`simulate_single_ended`].
///
/// # Panics
///
/// Panics if vector lengths are inconsistent.
pub fn simulate_wddl(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let load = LoadModel::try_build(nl, lib, parasitics)?;
    simulate_wddl_with_load(nl, lib, &load, cfg, input_pairs, input_vectors)
}

/// [`simulate_wddl`] with a caller-built [`LoadModel`]; see
/// [`simulate_single_ended_with_load`].
///
/// # Errors
///
/// See [`simulate_single_ended`].
pub fn simulate_wddl_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let comp = CompiledSim::build(nl, lib, load, cfg)?;
    let mut scratch = EngineScratch::new();
    comp.run_wddl(&mut scratch, input_pairs, input_vectors);
    Ok(finish(scratch.take_sim_result(), cfg))
}

/// Simulates a single-ended netlist with an idealized **glitch-free**
/// power model: per cycle, every net settles directly to its final
/// value and draws `C·Vdd` once if it rose — the power a designer
/// might naively predict from switching activity alone. Comparing DPA
/// outcomes against [`simulate_single_ended`] isolates how much
/// leakage the glitches contribute (ablation of the inertial-delay
/// model).
///
/// The whole cycle's charge is deposited uniformly over the first
/// quarter of the cycle (temporal structure is not modelled).
///
/// # Errors
///
/// See [`simulate_single_ended`].
///
/// # Panics
///
/// Panics if vector lengths are inconsistent.
pub fn simulate_single_ended_glitch_free(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let load = LoadModel::try_build(nl, lib, parasitics)?;
    simulate_single_ended_glitch_free_with_load(nl, lib, &load, cfg, input_vectors)
}

/// [`simulate_single_ended_glitch_free`] with a caller-built
/// [`LoadModel`]; see [`simulate_single_ended_with_load`].
///
/// # Errors
///
/// See [`simulate_single_ended`].
pub fn simulate_single_ended_glitch_free_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> Result<SimResult, SimError> {
    let comp = CompiledSim::build(nl, lib, load, cfg)?;
    let mut scratch = EngineScratch::new();
    comp.run_single_ended_glitch_free(&mut scratch, input_vectors);
    Ok(finish(scratch.take_sim_result(), cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    /// y = a AND b, q = DFF(y).
    fn se_netlist() -> Netlist {
        let mut nl = Netlist::new("se");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![y], vec![q]);
        nl.mark_output(q);
        nl
    }

    #[test]
    fn single_ended_functional_behaviour() {
        let nl = se_netlist();
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let vectors = vec![
            vec![true, true],
            vec![false, true],
            vec![true, true],
            vec![true, true],
        ];
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &vectors).unwrap();
        // q lags y by one cycle: cycles observe q = prev cycle's a&b.
        let qs: Vec<bool> = r.outputs_per_cycle.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![false, true, false, true]);
        assert_eq!(r.trace.len(), 4 * cfg.samples_per_cycle);
    }

    #[test]
    fn single_ended_power_depends_on_data() {
        let nl = se_netlist();
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        // Cycle 1 with activity, cycle 2 without.
        let vectors = vec![vec![true, true], vec![true, true], vec![true, true]];
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &vectors).unwrap();
        // After the first cycle everything is stable: no switching.
        assert!(r.cycle_energy_fj[0] > 0.0);
        assert_eq!(r.cycle_energy_fj[2], 0.0);
    }

    #[test]
    fn unknown_cell_surfaces_as_error() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "NO_SUCH_CELL", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let err = simulate_single_ended(&nl, &lib, None, &cfg, &[vec![false]]).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownCell {
                gate: "g0".into(),
                cell: "NO_SUCH_CELL".into()
            }
        );
    }

    /// A tiny hand-built WDDL netlist: differential AND of one input
    /// pair with a register pair.
    /// (yt, yf) = WDDL-AND((at, af), (bt, bf)) = (at·bt, af+bf).
    fn wddl_netlist() -> (Netlist, Vec<(NetId, NetId)>) {
        let mut nl = Netlist::new("wddl");
        let at = nl.add_input("a_t");
        let af = nl.add_input("a_f");
        let bt = nl.add_input("b_t");
        let bf = nl.add_input("b_f");
        let yt = nl.add_net("y_t");
        let yf = nl.add_net("y_f");
        let qt = nl.add_net("q_t");
        let qf = nl.add_net("q_f");
        nl.add_gate("g_t", "AND2", GateKind::Comb, vec![at, bt], vec![yt]);
        nl.add_gate("g_f", "OR2", GateKind::Comb, vec![af, bf], vec![yf]);
        nl.add_gate("r0", "WDDLDFF", GateKind::Seq, vec![yt, yf], vec![qt, qf]);
        nl.mark_output(qt);
        nl.mark_output(qf);
        (nl, vec![(at, af), (bt, bf)])
    }

    /// Library with a WDDLDFF added.
    fn wddl_lib() -> Library {
        use secflow_cells::{CellFunction, LefMacro, LibCell};
        let mut cells: Vec<LibCell> = Library::lib180().cells().to_vec();
        cells.push(LibCell::new(
            "WDDLDFF",
            CellFunction::WddlDff,
            vec![2.8, 2.8],
            4.0,
            120.0,
            LefMacro::evenly_spread(24, 2, 2),
        ));
        Library::new(cells)
    }

    #[test]
    fn wddl_register_captures_differential_value() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        let cfg = SimConfig::default();
        let vectors = vec![vec![true, true], vec![false, true], vec![true, false]];
        let r = simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors).unwrap();
        // Outputs (qt, qf) show previous cycle's AND value.
        let got: Vec<(bool, bool)> = r.outputs_per_cycle.iter().map(|o| (o[0], o[1])).collect();
        // At the end of cycle c the register outputs hold the value
        // captured at the end of cycle c-1 (evaluation phase drove
        // them).
        assert_eq!(got[1], (true, false)); // a&b of cycle 0 = 1
        assert_eq!(got[2], (false, true)); // a&b of cycle 1 = 0
                                           // Every cycle completes: no alarms.
        assert_eq!(r.wddl_alarms, vec![0, 0, 0]);
    }

    #[test]
    fn wddl_switching_count_is_data_independent() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        let cfg = SimConfig::default();
        // Two very different input sequences.
        let run = |vectors: Vec<Vec<bool>>| {
            simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors).unwrap()
        };
        let r1 = run(vec![vec![true, true]; 4]);
        let r2 = run(vec![
            vec![false, false],
            vec![true, false],
            vec![false, true],
            vec![false, false],
        ]);
        // After the pipeline fills (cycle >= 1), each cycle has exactly
        // one rising event per dual-rail signal: identical counts.
        assert_eq!(r1.cycle_rises[2], r2.cycle_rises[2]);
        assert_eq!(r1.cycle_rises[3], r2.cycle_rises[3]);
    }

    #[test]
    fn short_evaluation_phase_raises_dfa_alarm() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        // Evaluation phase squeezed to 0.1% of the cycle (8 ps —
        // shorter than even the input driver delay): the wave cannot
        // reach the register.
        let cfg = SimConfig {
            precharge_fraction: 0.999,
            ..Default::default()
        };
        let vectors = vec![vec![true, true]; 3];
        let r = simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors).unwrap();
        assert!(r.wddl_alarms.iter().any(|&a| a > 0), "no alarm raised");
    }

    #[test]
    fn compiled_campaign_matches_one_shot_driver() {
        // The compile-once path must be byte-identical to the legacy
        // per-window entry point, including across scratch reuse.
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let load = LoadModel::try_build(&nl, &lib, None).unwrap();
        let comp = CompiledSim::build(&nl, &lib, &load, &cfg).unwrap();
        let mut scratch = EngineScratch::new();
        let windows = [
            vec![vec![true, true], vec![false, true]],
            vec![vec![false, false], vec![true, false], vec![true, true]],
        ];
        for vectors in &windows {
            let legacy = simulate_wddl(&nl, &lib, None, &cfg, &pairs, vectors).unwrap();
            comp.run_wddl(&mut scratch, &pairs, vectors);
            let legacy_bits: Vec<u64> = legacy.trace.iter().map(|x| x.to_bits()).collect();
            let compiled_bits: Vec<u64> = scratch.trace().iter().map(|x| x.to_bits()).collect();
            assert_eq!(legacy_bits, compiled_bits);
            assert_eq!(legacy.wddl_alarms, scratch.wddl_alarms());
        }
    }
}

#[cfg(test)]
mod glitch_free_tests {
    use super::*;
    use secflow_netlist::GateKind;

    #[test]
    fn glitch_free_matches_functional_outputs() {
        let mut nl = Netlist::new("gf");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![a, b], vec![y]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![y], vec![q]);
        nl.mark_output(q);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let vectors = vec![
            vec![true, false],
            vec![true, true],
            vec![false, true],
            vec![false, true],
            vec![false, true],
        ];
        let r = simulate_single_ended_glitch_free(&nl, &lib, None, &cfg, &vectors).unwrap();
        let qs: Vec<bool> = r.outputs_per_cycle.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![false, true, false, true, true]);
        // Fully settled last cycle (inputs and state unchanged): zero
        // energy.
        assert_eq!(*r.cycle_energy_fj.last().unwrap(), 0.0);
    }

    #[test]
    fn glitch_free_energy_is_a_lower_bound() {
        // Event-driven simulation of a glitchy cone must draw at least
        // as much energy as the glitch-free model.
        let mut nl = Netlist::new("gl");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![a, b], vec![x]);
        nl.add_gate("g1", "AND2", GateKind::Comb, vec![x, c], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let vectors: Vec<Vec<bool>> = (0..16u32)
            .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1])
            .collect();
        let ev = simulate_single_ended(&nl, &lib, None, &cfg, &vectors).unwrap();
        let gf = simulate_single_ended_glitch_free(&nl, &lib, None, &cfg, &vectors).unwrap();
        let ev_total: f64 = ev.cycle_energy_fj.iter().sum();
        let gf_total: f64 = gf.cycle_energy_fj.iter().sum();
        assert!(ev_total >= gf_total * 0.999, "{ev_total} < {gf_total}");
    }
}

#[cfg(test)]
mod crosstalk_tests {
    use super::*;
    use secflow_extract::{NetParasitics, Parasitics};
    use secflow_netlist::GateKind;

    /// `x = BUF(a)` and `y = INV(b)` with capacitively coupled
    /// outputs. The INV is faster than the BUF, so y's transition
    /// always commits before x's — deterministic crosstalk windows.
    fn coupled_fixture(cc: f64) -> (Netlist, Parasitics) {
        let mut nl = Netlist::new("xt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g1", "INV", GateKind::Comb, vec![b], vec![y]);
        nl.mark_output(x);
        nl.mark_output(y);
        let mut nets = vec![NetParasitics::default(); nl.net_count()];
        nets[x.index()].c_ground_ff = 10.0;
        nets[y.index()].c_ground_ff = 10.0;
        if cc > 0.0 {
            nets[x.index()].couplings.push((y, cc));
            nets[y.index()].couplings.push((x, cc));
        }
        (nl, Parasitics { nets })
    }

    fn cycle1_energy(nl: &Netlist, par: &Parasitics, vectors: Vec<Vec<bool>>) -> f64 {
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        simulate_single_ended(nl, &lib, Some(par), &cfg, &vectors)
            .unwrap()
            .cycle_energy_fj[1]
    }

    #[test]
    fn miller_doubling_on_opposite_transitions() {
        let (nl, par) = coupled_fixture(4.0);
        let vdd2 = 1.8f64 * 1.8;
        // Quiet neighbour: only x rises (b stays 0, y stays 1).
        let quiet = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, false]]);
        // Opposite: x rises while y falls just before it (b: 0 -> 1).
        let miller = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, true]]);
        // The Miller effect adds exactly cc * Vdd^2 on x's rise.
        let delta = miller - quiet;
        assert!(
            (delta - 4.0 * vdd2).abs() < 0.5,
            "Miller delta {delta}, expected {}",
            4.0 * vdd2
        );
    }

    #[test]
    fn same_direction_switching_saves_coupling_charge() {
        let (nl, par) = coupled_fixture(4.0);
        let vdd2 = 1.8f64 * 1.8;
        // Both rise: x rises (a: 0 -> 1), y rises (b: 1 -> 0 through
        // the INV, committing first).
        let same = cycle1_energy(&nl, &par, vec![vec![false, true], vec![true, false]]);
        // Independent single rises, neighbour quiet each time.
        let x_only = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, false]]);
        let y_only = cycle1_energy(&nl, &par, vec![vec![false, true], vec![false, false]]);
        // Moving together saves cc * Vdd^2 relative to the sum.
        let saving = x_only + y_only - same;
        assert!(
            (saving - 4.0 * vdd2).abs() < 0.5,
            "saving {saving}, expected {}",
            4.0 * vdd2
        );
    }
}
