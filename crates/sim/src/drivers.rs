//! Cycle drivers: single-ended CMOS and two-phase WDDL simulation
//! loops around the event engine.

use secflow_cells::Library;
use secflow_extract::Parasitics;
use secflow_netlist::{GateId, NetId, Netlist};

use crate::config::SimConfig;
use crate::engine::{is_wddl_register, Engine};
use crate::load::LoadModel;
use crate::noise::add_gaussian_noise;

/// The output of a power simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Supply-current trace: charge (fC) drawn per sample bin,
    /// `cycles × samples_per_cycle` entries.
    pub trace: Vec<f64>,
    /// Energy drawn from the supply per cycle, in fJ.
    pub cycle_energy_fj: Vec<f64>,
    /// Rising-transition count per cycle (switching activity).
    pub cycle_rises: Vec<u64>,
    /// Primary-output net values sampled at the end of each cycle.
    pub outputs_per_cycle: Vec<Vec<bool>>,
    /// For WDDL runs: per cycle, the number of registers whose input
    /// pair was still `(0, 0)` at the capturing clock edge — the DFA
    /// alarm condition of §4.3.
    pub wddl_alarms: Vec<usize>,
    /// Net transitions `(time_ps, net, new value)` when
    /// [`SimConfig::record_waveform`] is enabled.
    pub waveform: Vec<(u64, NetId, bool)>,
}

impl SimResult {
    /// Mean energy per cycle in fJ.
    pub fn mean_energy_fj(&self) -> f64 {
        if self.cycle_energy_fj.is_empty() {
            return 0.0;
        }
        self.cycle_energy_fj.iter().sum::<f64>() / self.cycle_energy_fj.len() as f64
    }

    /// The samples of one cycle.
    pub fn cycle_trace(&self, cycle: usize, samples_per_cycle: usize) -> &[f64] {
        &self.trace[cycle * samples_per_cycle..(cycle + 1) * samples_per_cycle]
    }
}

/// Simulates a single-ended (regular CMOS) netlist.
///
/// `input_vectors[c][i]` is the value of primary input `i` (in
/// [`Netlist::inputs`] order) during cycle `c`. Registers reset to 0.
///
/// # Panics
///
/// Panics if any vector length differs from the input count, or the
/// netlist is cyclic.
pub fn simulate_single_ended(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> SimResult {
    let load = LoadModel::build(nl, lib, parasitics);
    simulate_single_ended_with_load(nl, lib, &load, cfg, input_vectors)
}

/// [`simulate_single_ended`] with a caller-built [`LoadModel`].
///
/// Building the load model walks every gate and net; callers that
/// simulate the same netlist many times (trace campaigns) build it
/// once and reuse it across runs.
pub fn simulate_single_ended_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> SimResult {
    let n_cycles = input_vectors.len();
    let mut engine = Engine::new(nl, lib, load, cfg, n_cycles);
    engine.settle_initial();

    // Registers: (gate, d-net, q-net).
    let regs: Vec<(GateId, NetId, NetId)> = nl
        .gate_ids()
        .filter(|&g| nl.gate(g).kind == secflow_netlist::GateKind::Seq)
        .map(|g| (g, nl.gate(g).inputs[0], nl.gate(g).outputs[0]))
        .collect();
    let mut reg_state = vec![false; regs.len()];

    let mut result = SimResult {
        trace: Vec::new(),
        cycle_energy_fj: Vec::with_capacity(n_cycles),
        cycle_rises: Vec::with_capacity(n_cycles),
        outputs_per_cycle: Vec::with_capacity(n_cycles),
        wddl_alarms: Vec::new(),
        waveform: Vec::new(),
    };

    for (c, vector) in input_vectors.iter().enumerate() {
        assert_eq!(vector.len(), nl.inputs().len(), "bad vector length");
        let t0 = c as u64 * cfg.period_ps;
        for (i, (_, _, q)) in regs.iter().enumerate() {
            engine.inject(*q, t0 + cfg.clk2q_ps, reg_state[i]);
        }
        for (&net, &v) in nl.inputs().iter().zip(vector) {
            engine.inject(net, t0 + cfg.input_delay_ps, v);
        }
        engine.run_until(t0 + cfg.period_ps);
        for (i, (_, d, _)) in regs.iter().enumerate() {
            reg_state[i] = engine.value(*d);
        }
        let (e, rises) = engine.take_energy();
        result.cycle_energy_fj.push(e);
        result.cycle_rises.push(rises);
        result
            .outputs_per_cycle
            .push(nl.outputs().iter().map(|&o| engine.value(o)).collect());
    }
    result.waveform = std::mem::take(&mut engine.waveform);
    result.trace = engine.trace;
    if cfg.noise_sigma > 0.0 {
        add_gaussian_noise(&mut result.trace, cfg.noise_sigma, cfg.noise_seed);
    }
    result
}

/// Simulates a WDDL differential netlist through the two-phase
/// precharge/evaluate protocol.
///
/// `input_pairs[i]` is the `(true-rail, false-rail)` net pair of
/// logical input `i`; `input_vectors[c][i]` its logical value during
/// cycle `c`. In the first (precharge) phase of every cycle all input
/// pairs and register outputs are driven to `(0, 0)`; in the
/// evaluation phase to `(v, ¬v)`.
///
/// # Panics
///
/// Panics if vector lengths are inconsistent.
pub fn simulate_wddl(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    input_vectors: &[Vec<bool>],
) -> SimResult {
    let load = LoadModel::build(nl, lib, parasitics);
    simulate_wddl_with_load(nl, lib, &load, cfg, input_pairs, input_vectors)
}

/// [`simulate_wddl`] with a caller-built [`LoadModel`]; see
/// [`simulate_single_ended_with_load`].
pub fn simulate_wddl_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    input_vectors: &[Vec<bool>],
) -> SimResult {
    let n_cycles = input_vectors.len();
    let mut engine = Engine::new(nl, lib, load, cfg, n_cycles);
    // All-zero is the natural WDDL precharge state; the differential
    // netlist is positive-monotone, so no settling is required, but it
    // is harmless and handles tie cells.
    engine.settle_initial();

    // WDDL registers: (dt, df, qt, qf).
    let regs: Vec<(NetId, NetId, NetId, NetId)> = nl
        .gate_ids()
        .filter(|&g| is_wddl_register(nl.gate(g)))
        .map(|g| {
            let gate = nl.gate(g);
            (gate.inputs[0], gate.inputs[1], gate.outputs[0], gate.outputs[1])
        })
        .collect();
    // Reset to logical 0 as a *valid* code word (t, f) = (0, 1): a real
    // WDDL register initializes to a legal differential state.
    let mut reg_state: Vec<(bool, bool)> = vec![(false, true); regs.len()];

    let mut result = SimResult {
        trace: Vec::new(),
        cycle_energy_fj: Vec::with_capacity(n_cycles),
        cycle_rises: Vec::with_capacity(n_cycles),
        outputs_per_cycle: Vec::with_capacity(n_cycles),
        wddl_alarms: Vec::with_capacity(n_cycles),
        waveform: Vec::new(),
    };

    for (c, vector) in input_vectors.iter().enumerate() {
        assert_eq!(vector.len(), input_pairs.len(), "bad vector length");
        let t0 = c as u64 * cfg.period_ps;
        let te = t0 + cfg.eval_start_ps();

        // Precharge phase: everything to (0, 0).
        for (_, _, qt, qf) in &regs {
            engine.inject(*qt, t0 + cfg.clk2q_ps, false);
            engine.inject(*qf, t0 + cfg.clk2q_ps, false);
        }
        for &(t, f) in input_pairs {
            engine.inject(t, t0 + cfg.input_delay_ps, false);
            engine.inject(f, t0 + cfg.input_delay_ps, false);
        }
        // Evaluation phase: stored values and differential inputs.
        for (i, (_, _, qt, qf)) in regs.iter().enumerate() {
            engine.inject(*qt, te + cfg.clk2q_ps, reg_state[i].0);
            engine.inject(*qf, te + cfg.clk2q_ps, reg_state[i].1);
        }
        for (&(t, f), &v) in input_pairs.iter().zip(vector) {
            engine.inject(t, te + cfg.input_delay_ps, v);
            engine.inject(f, te + cfg.input_delay_ps, !v);
        }
        engine.run_until(t0 + cfg.period_ps);

        // Capture at the rising edge; (0,0) pairs are DFA alarms.
        let mut alarms = 0;
        for (i, (dt, df, _, _)) in regs.iter().enumerate() {
            let pair = (engine.value(*dt), engine.value(*df));
            if pair == (false, false) {
                alarms += 1;
            }
            reg_state[i] = pair;
        }
        result.wddl_alarms.push(alarms);
        let (e, rises) = engine.take_energy();
        result.cycle_energy_fj.push(e);
        result.cycle_rises.push(rises);
        result
            .outputs_per_cycle
            .push(nl.outputs().iter().map(|&o| engine.value(o)).collect());
    }
    result.trace = engine.trace;
    if cfg.noise_sigma > 0.0 {
        add_gaussian_noise(&mut result.trace, cfg.noise_sigma, cfg.noise_seed);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    /// y = a AND b, q = DFF(y).
    fn se_netlist() -> Netlist {
        let mut nl = Netlist::new("se");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![y], vec![q]);
        nl.mark_output(q);
        nl
    }

    #[test]
    fn single_ended_functional_behaviour() {
        let nl = se_netlist();
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let vectors = vec![
            vec![true, true],
            vec![false, true],
            vec![true, true],
            vec![true, true],
        ];
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &vectors);
        // q lags y by one cycle: cycles observe q = prev cycle's a&b.
        let qs: Vec<bool> = r.outputs_per_cycle.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![false, true, false, true]);
        assert_eq!(r.trace.len(), 4 * cfg.samples_per_cycle);
    }

    #[test]
    fn single_ended_power_depends_on_data() {
        let nl = se_netlist();
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        // Cycle 1 with activity, cycle 2 without.
        let vectors = vec![vec![true, true], vec![true, true], vec![true, true]];
        let r = simulate_single_ended(&nl, &lib, None, &cfg, &vectors);
        // After the first cycle everything is stable: no switching.
        assert!(r.cycle_energy_fj[0] > 0.0);
        assert_eq!(r.cycle_energy_fj[2], 0.0);
    }

    /// A tiny hand-built WDDL netlist: differential AND of one input
    /// pair with a register pair.
    /// (yt, yf) = WDDL-AND((at, af), (bt, bf)) = (at·bt, af+bf).
    fn wddl_netlist() -> (Netlist, Vec<(NetId, NetId)>) {
        let mut nl = Netlist::new("wddl");
        let at = nl.add_input("a_t");
        let af = nl.add_input("a_f");
        let bt = nl.add_input("b_t");
        let bf = nl.add_input("b_f");
        let yt = nl.add_net("y_t");
        let yf = nl.add_net("y_f");
        let qt = nl.add_net("q_t");
        let qf = nl.add_net("q_f");
        nl.add_gate("g_t", "AND2", GateKind::Comb, vec![at, bt], vec![yt]);
        nl.add_gate("g_f", "OR2", GateKind::Comb, vec![af, bf], vec![yf]);
        nl.add_gate("r0", "WDDLDFF", GateKind::Seq, vec![yt, yf], vec![qt, qf]);
        nl.mark_output(qt);
        nl.mark_output(qf);
        (nl, vec![(at, af), (bt, bf)])
    }

    /// Library with a WDDLDFF added.
    fn wddl_lib() -> Library {
        use secflow_cells::{CellFunction, LefMacro, LibCell};
        let mut cells: Vec<LibCell> = Library::lib180().cells().to_vec();
        cells.push(LibCell::new(
            "WDDLDFF",
            CellFunction::WddlDff,
            vec![2.8, 2.8],
            4.0,
            120.0,
            LefMacro::evenly_spread(24, 2, 2),
        ));
        Library::new(cells)
    }

    #[test]
    fn wddl_register_captures_differential_value() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        let cfg = SimConfig::default();
        let vectors = vec![vec![true, true], vec![false, true], vec![true, false]];
        let r = simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors);
        // Outputs (qt, qf) show previous cycle's AND value.
        let got: Vec<(bool, bool)> = r
            .outputs_per_cycle
            .iter()
            .map(|o| (o[0], o[1]))
            .collect();
        // At the end of cycle c the register outputs hold the value
        // captured at the end of cycle c-1 (evaluation phase drove
        // them).
        assert_eq!(got[1], (true, false)); // a&b of cycle 0 = 1
        assert_eq!(got[2], (false, true)); // a&b of cycle 1 = 0
        // Every cycle completes: no alarms.
        assert_eq!(r.wddl_alarms, vec![0, 0, 0]);
    }

    #[test]
    fn wddl_switching_count_is_data_independent() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        let cfg = SimConfig::default();
        // Two very different input sequences.
        let run = |vectors: Vec<Vec<bool>>| {
            simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors)
        };
        let r1 = run(vec![vec![true, true]; 4]);
        let r2 = run(vec![
            vec![false, false],
            vec![true, false],
            vec![false, true],
            vec![false, false],
        ]);
        // After the pipeline fills (cycle >= 1), each cycle has exactly
        // one rising event per dual-rail signal: identical counts.
        assert_eq!(r1.cycle_rises[2], r2.cycle_rises[2]);
        assert_eq!(r1.cycle_rises[3], r2.cycle_rises[3]);
    }

    #[test]
    fn short_evaluation_phase_raises_dfa_alarm() {
        let (nl, pairs) = wddl_netlist();
        let lib = wddl_lib();
        // Evaluation phase squeezed to 0.1% of the cycle (8 ps —
        // shorter than even the input driver delay): the wave cannot
        // reach the register.
        let cfg = SimConfig {
            precharge_fraction: 0.999,
            ..Default::default()
        };
        let vectors = vec![vec![true, true]; 3];
        let r = simulate_wddl(&nl, &lib, None, &cfg, &pairs, &vectors);
        assert!(r.wddl_alarms.iter().any(|&a| a > 0), "no alarm raised");
    }
}

/// Simulates a single-ended netlist with an idealized **glitch-free**
/// power model: per cycle, every net settles directly to its final
/// value and draws `C·Vdd` once if it rose — the power a designer
/// might naively predict from switching activity alone. Comparing DPA
/// outcomes against [`simulate_single_ended`] isolates how much
/// leakage the glitches contribute (ablation of the inertial-delay
/// model).
///
/// The whole cycle's charge is deposited uniformly over the first
/// quarter of the cycle (temporal structure is not modelled).
///
/// # Panics
///
/// Panics if vector lengths are inconsistent or the netlist is cyclic.
pub fn simulate_single_ended_glitch_free(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> SimResult {
    let load = LoadModel::build(nl, lib, parasitics);
    simulate_single_ended_glitch_free_with_load(nl, lib, &load, cfg, input_vectors)
}

/// [`simulate_single_ended_glitch_free`] with a caller-built
/// [`LoadModel`]; see [`simulate_single_ended_with_load`].
pub fn simulate_single_ended_glitch_free_with_load(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_vectors: &[Vec<bool>],
) -> SimResult {
    use crate::functional::eval_comb;

    let n_cycles = input_vectors.len();
    let spc = cfg.samples_per_cycle;
    let regs: Vec<(NetId, NetId)> = nl
        .gates()
        .iter()
        .filter(|g| g.kind == secflow_netlist::GateKind::Seq)
        .map(|g| (g.inputs[0], g.outputs[0]))
        .collect();
    let mut reg_state = vec![false; regs.len()];
    let mut prev_values = vec![false; nl.net_count()];
    // Consistent initial state (inverters settle high).
    {
        let forced: Vec<(NetId, bool)> = Vec::new();
        prev_values = eval_comb(nl, lib, &forced);
    }

    let mut result = SimResult {
        trace: vec![0.0; n_cycles * spc],
        cycle_energy_fj: Vec::with_capacity(n_cycles),
        cycle_rises: Vec::with_capacity(n_cycles),
        outputs_per_cycle: Vec::with_capacity(n_cycles),
        wddl_alarms: Vec::new(),
        waveform: Vec::new(),
    };
    let exempt: Vec<bool> = nl
        .net_ids()
        .map(|id| nl.inputs().contains(&id))
        .collect();

    for (c, vector) in input_vectors.iter().enumerate() {
        assert_eq!(vector.len(), nl.inputs().len());
        let mut forced: Vec<(NetId, bool)> = nl
            .inputs()
            .iter()
            .copied()
            .zip(vector.iter().copied())
            .collect();
        for ((_, q), &v) in regs.iter().zip(&reg_state) {
            forced.push((*q, v));
        }
        let values = eval_comb(nl, lib, &forced);
        let mut energy = 0.0;
        let mut rises = 0u64;
        for id in nl.net_ids() {
            let i = id.index();
            if values[i] && !prev_values[i] && !exempt[i] {
                energy += load.c_eff_ff[i] * cfg.vdd * cfg.vdd;
                rises += 1;
            }
        }
        // Deposit the charge over the first quarter of the cycle.
        let bins = (spc / 4).max(1);
        for b in 0..bins {
            result.trace[c * spc + b] += energy / cfg.vdd / bins as f64;
        }
        for (i, (d, _)) in regs.iter().enumerate() {
            reg_state[i] = values[d.index()];
        }
        result.cycle_energy_fj.push(energy);
        result.cycle_rises.push(rises);
        result
            .outputs_per_cycle
            .push(nl.outputs().iter().map(|&o| values[o.index()]).collect());
        prev_values = values;
    }
    if cfg.noise_sigma > 0.0 {
        add_gaussian_noise(&mut result.trace, cfg.noise_sigma, cfg.noise_seed);
    }
    result
}

#[cfg(test)]
mod glitch_free_tests {
    use super::*;
    use secflow_netlist::GateKind;

    #[test]
    fn glitch_free_matches_functional_outputs() {
        let mut nl = Netlist::new("gf");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![a, b], vec![y]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![y], vec![q]);
        nl.mark_output(q);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let vectors = vec![
            vec![true, false],
            vec![true, true],
            vec![false, true],
            vec![false, true],
            vec![false, true],
        ];
        let r = simulate_single_ended_glitch_free(&nl, &lib, None, &cfg, &vectors);
        let qs: Vec<bool> = r.outputs_per_cycle.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![false, true, false, true, true]);
        // Fully settled last cycle (inputs and state unchanged): zero
        // energy.
        assert_eq!(*r.cycle_energy_fj.last().unwrap(), 0.0);
    }

    #[test]
    fn glitch_free_energy_is_a_lower_bound() {
        // Event-driven simulation of a glitchy cone must draw at least
        // as much energy as the glitch-free model.
        let mut nl = Netlist::new("gl");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "XOR2", GateKind::Comb, vec![a, b], vec![x]);
        nl.add_gate("g1", "AND2", GateKind::Comb, vec![x, c], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        let vectors: Vec<Vec<bool>> = (0..16u32)
            .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1])
            .collect();
        let ev = simulate_single_ended(&nl, &lib, None, &cfg, &vectors);
        let gf = simulate_single_ended_glitch_free(&nl, &lib, None, &cfg, &vectors);
        let ev_total: f64 = ev.cycle_energy_fj.iter().sum();
        let gf_total: f64 = gf.cycle_energy_fj.iter().sum();
        assert!(ev_total >= gf_total * 0.999, "{ev_total} < {gf_total}");
    }
}

#[cfg(test)]
mod crosstalk_tests {
    use super::*;
    use secflow_extract::{NetParasitics, Parasitics};
    use secflow_netlist::GateKind;

    /// `x = BUF(a)` and `y = INV(b)` with capacitively coupled
    /// outputs. The INV is faster than the BUF, so y's transition
    /// always commits before x's — deterministic crosstalk windows.
    fn coupled_fixture(cc: f64) -> (Netlist, Parasitics) {
        let mut nl = Netlist::new("xt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g1", "INV", GateKind::Comb, vec![b], vec![y]);
        nl.mark_output(x);
        nl.mark_output(y);
        let mut nets = vec![NetParasitics::default(); nl.net_count()];
        nets[x.index()].c_ground_ff = 10.0;
        nets[y.index()].c_ground_ff = 10.0;
        if cc > 0.0 {
            nets[x.index()].couplings.push((y, cc));
            nets[y.index()].couplings.push((x, cc));
        }
        (nl, Parasitics { nets })
    }

    fn cycle1_energy(nl: &Netlist, par: &Parasitics, vectors: Vec<Vec<bool>>) -> f64 {
        let lib = Library::lib180();
        let cfg = SimConfig {
            samples_per_cycle: 40,
            ..Default::default()
        };
        simulate_single_ended(nl, &lib, Some(par), &cfg, &vectors).cycle_energy_fj[1]
    }

    #[test]
    fn miller_doubling_on_opposite_transitions() {
        let (nl, par) = coupled_fixture(4.0);
        let vdd2 = 1.8f64 * 1.8;
        // Quiet neighbour: only x rises (b stays 0, y stays 1).
        let quiet = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, false]]);
        // Opposite: x rises while y falls just before it (b: 0 -> 1).
        let miller = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, true]]);
        // The Miller effect adds exactly cc * Vdd^2 on x's rise.
        let delta = miller - quiet;
        assert!(
            (delta - 4.0 * vdd2).abs() < 0.5,
            "Miller delta {delta}, expected {}",
            4.0 * vdd2
        );
    }

    #[test]
    fn same_direction_switching_saves_coupling_charge() {
        let (nl, par) = coupled_fixture(4.0);
        let vdd2 = 1.8f64 * 1.8;
        // Both rise: x rises (a: 0 -> 1), y rises (b: 1 -> 0 through
        // the INV, committing first).
        let same = cycle1_energy(&nl, &par, vec![vec![false, true], vec![true, false]]);
        // Independent single rises, neighbour quiet each time.
        let x_only = cycle1_energy(&nl, &par, vec![vec![false, false], vec![true, false]]);
        let y_only = cycle1_energy(&nl, &par, vec![vec![false, true], vec![false, false]]);
        // Moving together saves cc * Vdd^2 relative to the sum.
        let saving = x_only + y_only - same;
        assert!(
            (saving - 4.0 * vdd2).abs() < 0.5,
            "saving {saving}, expected {}",
            4.0 * vdd2
        );
    }
}
