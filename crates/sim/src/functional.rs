//! Zero-delay functional simulation of mapped netlists, used for
//! verification (and by the logic equivalence checker's random-vector
//! mode).

use secflow_cells::{CellFunction, Library};
use secflow_netlist::{GateKind, NetId, Netlist};

use crate::SimError;

/// Evaluates the combinational portion of `nl` under the given
/// net-value assignments for primary inputs and sequential outputs,
/// returning the value of every net.
///
/// `forced` assigns values to source nets (primary inputs and register
/// outputs); unassigned sources default to 0.
///
/// # Errors
///
/// Returns [`SimError`] if the netlist is cyclic or references unknown
/// cells.
pub fn eval_comb(
    nl: &Netlist,
    lib: &Library,
    forced: &[(NetId, bool)],
) -> Result<Vec<bool>, SimError> {
    let mut values = vec![false; nl.net_count()];
    for &(n, v) in forced {
        values[n.index()] = v;
    }
    let order = secflow_netlist::topo_order(nl).ok_or_else(|| SimError::CombinationalCycle {
        netlist: nl.name.clone(),
    })?;
    for gid in order {
        let g = nl.gate(gid);
        if g.kind == GateKind::Seq {
            continue;
        }
        let cell = lib.by_name(&g.cell).ok_or_else(|| SimError::UnknownCell {
            gate: g.name.clone(),
            cell: g.cell.clone(),
        })?;
        match cell.function() {
            CellFunction::Comb(tt) => {
                let mut idx = 0u32;
                for (i, &inp) in g.inputs.iter().enumerate() {
                    if values[inp.index()] {
                        idx |= 1 << i;
                    }
                }
                values[g.outputs[0].index()] = tt.eval(idx);
            }
            CellFunction::Tie(v) => values[g.outputs[0].index()] = *v,
            CellFunction::Dff | CellFunction::WddlDff => {}
        }
    }
    Ok(values)
}

/// Cycle-accurate zero-delay simulation of a single-ended sequential
/// netlist. Registers reset to 0. Returns the primary-output values at
/// the end of each cycle.
///
/// # Errors
///
/// Returns [`SimError`] if the netlist is cyclic or references unknown
/// cells.
///
/// # Panics
///
/// Panics if an input vector's length does not match the netlist's
/// primary input count (caller contract).
pub fn run_cycles(
    nl: &Netlist,
    lib: &Library,
    input_vectors: &[Vec<bool>],
) -> Result<Vec<Vec<bool>>, SimError> {
    let regs: Vec<(NetId, NetId)> = nl
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Seq)
        .map(|g| (g.inputs[0], g.outputs[0]))
        .collect();
    let mut state = vec![false; regs.len()];
    let mut outs = Vec::with_capacity(input_vectors.len());
    for vector in input_vectors {
        assert_eq!(vector.len(), nl.inputs().len());
        let mut forced: Vec<(NetId, bool)> = nl
            .inputs()
            .iter()
            .copied()
            .zip(vector.iter().copied())
            .collect();
        for ((_, q), &v) in regs.iter().zip(&state) {
            forced.push((*q, v));
        }
        let values = eval_comb(nl, lib, &forced)?;
        for (i, (d, _)) in regs.iter().enumerate() {
            state[i] = values[d.index()];
        }
        outs.push(nl.outputs().iter().map(|&o| values[o.index()]).collect());
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_comb_computes_logic() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g", "NAND2", GateKind::Comb, vec![a, b], vec![y]);
        let v = eval_comb(&nl, &lib, &[(a, true), (b, true)]).unwrap();
        assert!(!v[y.index()]);
        let v = eval_comb(&nl, &lib, &[(a, true), (b, false)]).unwrap();
        assert!(v[y.index()]);
    }

    #[test]
    fn run_cycles_advances_registers() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        nl.add_gate("r", "DFF", GateKind::Seq, vec![a], vec![q]);
        nl.mark_output(q);
        let outs = run_cycles(&nl, &lib, &[vec![true], vec![false], vec![true]]).unwrap();
        // Output shows the previous cycle's input.
        assert_eq!(outs, vec![vec![false], vec![true], vec![false]]);
    }

    #[test]
    fn tie_cells_evaluate() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let hi = nl.add_net("hi");
        nl.add_gate("t1", "TIEHI", GateKind::Tie, vec![], vec![hi]);
        nl.mark_output(hi);
        let v = eval_comb(&nl, &lib, &[]).unwrap();
        assert!(v[hi.index()]);
    }

    #[test]
    fn unknown_cell_is_typed_error() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g", "BOGUS", GateKind::Comb, vec![a], vec![y]);
        let err = eval_comb(&nl, &lib, &[]).unwrap_err();
        assert_eq!(
            err,
            SimError::UnknownCell {
                gate: "g".into(),
                cell: "BOGUS".into()
            }
        );
    }

    #[test]
    fn combinational_cycle_is_typed_error() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("loopy");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, y], vec![x]);
        nl.add_gate("g1", "BUF", GateKind::Comb, vec![x], vec![y]);
        let err = eval_comb(&nl, &lib, &[]).unwrap_err();
        assert_eq!(
            err,
            SimError::CombinationalCycle {
                netlist: "loopy".into()
            }
        );
    }
}
