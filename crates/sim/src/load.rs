//! Per-net load and drive model.

use secflow_cells::{CellFunction, Library};
use secflow_extract::Parasitics;
use secflow_netlist::{NetId, Netlist};

use crate::error::SimError;

/// Default wire-load estimate (fF per sink) used before layout
/// parasitics exist.
const PRE_LAYOUT_WIRE_FF_PER_SINK: f64 = 1.5;

/// Load presented by an output pad driver on every primary-output net.
const OUTPUT_PAD_FF: f64 = 5.0;

/// Electrical context for simulation: effective switched capacitance
/// and drive resistance per net, plus coupling lists.
#[derive(Debug, Clone)]
pub struct LoadModel {
    /// Effective capacitance per net in fF: wire ground cap plus all
    /// static coupling cap plus sink pin caps.
    pub c_eff_ff: Vec<f64>,
    /// Drive resistance of each net's driver in kΩ (0 for undriven
    /// nets).
    pub drive_kohm: Vec<f64>,
    /// Coupling list per net: `(other net, fF)`.
    pub couplings: Vec<Vec<(NetId, f64)>>,
}

impl LoadModel {
    /// Builds the load model for `nl`, using extracted `parasitics`
    /// when available and a pre-layout wire-load estimate otherwise.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownCell`] if a gate references a cell missing
    /// from `lib`.
    pub fn try_build(
        nl: &Netlist,
        lib: &Library,
        parasitics: Option<&Parasitics>,
    ) -> Result<Self, SimError> {
        let n = nl.net_count();
        let mut c_eff = vec![0.0f64; n];
        let mut drive = vec![0.0f64; n];
        let mut couplings = vec![Vec::new(); n];
        let resolve = |gate: secflow_netlist::GateId| {
            let g = nl.gate(gate);
            lib.by_name(&g.cell).ok_or_else(|| SimError::UnknownCell {
                gate: g.name.clone(),
                cell: g.cell.clone(),
            })
        };

        for id in nl.net_ids() {
            let net = nl.net(id);
            let mut c = if nl.outputs().contains(&id) {
                OUTPUT_PAD_FF
            } else {
                0.0
            };
            for s in &net.sinks {
                let cell = resolve(s.gate)?;
                // Tie cells have no inputs; everything else has one
                // pin cap per input pin.
                if !matches!(cell.function(), CellFunction::Tie(_)) {
                    c += cell.pin_cap_ff(s.pin as usize);
                }
            }
            match parasitics {
                Some(p) => {
                    let np = p.net(id);
                    c += np.c_ground_ff;
                    c += np.couplings.iter().map(|&(_, cc)| cc).sum::<f64>();
                    couplings[id.index()] = np.couplings.clone();
                }
                None => {
                    c += PRE_LAYOUT_WIRE_FF_PER_SINK * net.sinks.len() as f64;
                }
            }
            c_eff[id.index()] = c;
            if let Some(d) = net.driver {
                drive[id.index()] = resolve(d.gate)?.drive_kohm();
            }
        }
        Ok(LoadModel {
            c_eff_ff: c_eff,
            drive_kohm: drive,
            couplings,
        })
    }

    /// Gate propagation delay in ps for the driver of `net`, using the
    /// linear delay model of `cell`.
    pub fn delay_ps(&self, intrinsic_ps: f64, drive_kohm: f64, net: NetId) -> f64 {
        intrinsic_ps + drive_kohm * self.c_eff_ff[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    #[test]
    fn pin_caps_accumulate() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g1", "AND2", GateKind::Comb, vec![x, a], vec![y]);
        let lm = LoadModel::try_build(&nl, &lib, None).unwrap();
        let and2_cap = lib.by_name("AND2").unwrap().pin_cap_ff(0);
        let inv_cap = lib.by_name("INV").unwrap().pin_cap_ff(0);
        // `a` feeds INV.A and AND2.B.
        let expect = inv_cap + and2_cap + 2.0 * PRE_LAYOUT_WIRE_FF_PER_SINK;
        assert!((lm.c_eff_ff[a.index()] - expect).abs() < 1e-9);
        // x is driven by INV.
        assert!((lm.drive_kohm[x.index()] - lib.by_name("INV").unwrap().drive_kohm()).abs() < 1e-9);
    }

    #[test]
    fn unconnected_net_has_zero_load() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let spare = nl.add_net("spare");
        let lm = LoadModel::try_build(&nl, &lib, None).unwrap();
        assert_eq!(lm.c_eff_ff[spare.index()], 0.0);
        assert_eq!(lm.drive_kohm[spare.index()], 0.0);
    }
}
