//! Simulation configuration.

use crate::bitslice::SimBackend;
use crate::error::SimError;

/// Timing, sampling and electrical parameters of a power simulation.
///
/// Defaults follow the paper's measurement setup: 125 MHz clock
/// (8000 ps period), 800 supply-current samples per clock cycle, and a
/// 1.8 V supply.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Clock period in ps.
    pub period_ps: u64,
    /// Supply-current samples per clock cycle.
    pub samples_per_cycle: usize,
    /// Supply voltage in V.
    pub vdd: f64,
    /// Clock-to-output delay of registers in ps.
    pub clk2q_ps: u64,
    /// Arrival time of primary-input changes after the clock edge, in
    /// ps.
    pub input_delay_ps: u64,
    /// Window within which two coupled transitions count as
    /// simultaneous for the crosstalk (Miller) adjustment, in ps.
    pub crosstalk_window_ps: u64,
    /// Standard deviation of additive Gaussian measurement noise on
    /// the current trace (0 disables noise), in the trace's charge
    /// units.
    pub noise_sigma: f64,
    /// RNG seed for the noise model.
    pub noise_seed: u64,
    /// Fraction of the period devoted to the WDDL precharge phase
    /// (0.5 in normal operation; the DFA glitch experiment shrinks the
    /// evaluation phase by raising it).
    pub precharge_fraction: f64,
    /// Record every net transition for waveform (VCD) export.
    pub record_waveform: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            period_ps: 8000,
            samples_per_cycle: 800,
            vdd: 1.8,
            clk2q_ps: 150,
            input_delay_ps: 100,
            crosstalk_window_ps: 60,
            noise_sigma: 0.0,
            noise_seed: 0,
            precharge_fraction: 0.5,
            record_waveform: false,
        }
    }
}

impl SimConfig {
    /// Trace sample width in ps.
    pub fn sample_ps(&self) -> f64 {
        self.period_ps as f64 / self.samples_per_cycle as f64
    }

    /// Time of the evaluation-phase start within a WDDL cycle, in ps.
    pub fn eval_start_ps(&self) -> u64 {
        (self.period_ps as f64 * self.precharge_fraction) as u64
    }

    /// Checks that every feature this configuration requests is
    /// supported by `backend` — the single validation point for
    /// backend/config combinations, meant to run at *option-validation
    /// time* (CLI parsing, job-request validation) so an unsupported
    /// combination fails with a typed error before any flow stage or
    /// campaign work is spent on it. The kernels call it again on
    /// build as a backstop, so the error is identical wherever it
    /// surfaces.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedConfig`] if `record_waveform` is
    /// requested on the bit-sliced backend (per-lane waveforms are not
    /// reconstructed — VCD dumps need the event kernel).
    pub fn validate_backend(&self, backend: SimBackend) -> Result<(), SimError> {
        if backend == SimBackend::Bitslice && self.record_waveform {
            return Err(SimError::UnsupportedConfig {
                backend: backend.name().into(),
                detail: "record_waveform requires the event backend".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.period_ps, 8000); // 125 MHz
        assert_eq!(c.samples_per_cycle, 800);
        assert!((c.sample_ps() - 10.0).abs() < 1e-9);
        assert_eq!(c.eval_start_ps(), 4000);
    }

    #[test]
    fn waveform_on_bitslice_is_rejected_at_validation() {
        let cfg = SimConfig {
            record_waveform: true,
            ..Default::default()
        };
        assert!(cfg.validate_backend(SimBackend::Event).is_ok());
        let err = cfg.validate_backend(SimBackend::Bitslice).unwrap_err();
        assert!(
            matches!(err, SimError::UnsupportedConfig { ref backend, .. } if backend == "bitslice"),
            "{err:?}"
        );
        let ok = SimConfig::default();
        assert!(ok.validate_backend(SimBackend::Bitslice).is_ok());
    }
}
