//! Gate-level timing and power simulation — the reproduction's
//! substitute for the paper's transistor-level Hspice runs.
//!
//! Two simulators are provided:
//!
//! * [`functional`] — zero-delay cycle-based evaluation, used for
//!   verification;
//! * the **event-driven power simulator** ([`simulate_single_ended`],
//!   [`simulate_wddl`]) — inertial gate delays (so single-ended CMOS
//!   logic *glitches*, a first-order DPA leakage source), a
//!   charge-based supply-current model (every rising output transition
//!   draws `Q = C_load · Vdd` from the supply, shaped over the driver's
//!   RC time constant), crosstalk adjustment for simultaneously
//!   switching coupled neighbours, and an optional Gaussian measurement
//!   noise model.
//!
//! The WDDL driver reproduces the paper's two-phase operation: in the
//! first half of each clock cycle every input and register output pair
//! is driven to `(0, 0)` (the pre-discharge wave), in the second half
//! to `(v, ¬v)` (the evaluation wave). Supply-current traces are
//! sampled exactly like the paper's measurements (800 samples per
//! cycle at 125 MHz by default).

//!
//! For trace campaigns (thousands of short windows over one netlist),
//! compile once with [`CompiledSim::build`] and reuse an
//! [`EngineScratch`] per worker thread: the compiled kernel resolves
//! cells, fanout adjacency, loads and the topological order up front
//! and performs zero heap allocations per steady-state window, while
//! staying byte-identical to the one-shot `simulate_*` drivers.

pub mod bitslice;
pub mod compiled;
mod config;
mod drivers;
mod engine;
mod error;
pub mod functional;
mod load;
mod noise;
pub mod sta;
pub mod vcd;

pub use bitslice::{BitScratch, BitSim, SimBackend};
pub use compiled::{CompiledSim, EngineScratch};
pub use config::SimConfig;
pub use drivers::{
    simulate_single_ended, simulate_single_ended_glitch_free,
    simulate_single_ended_glitch_free_with_load, simulate_single_ended_with_load, simulate_wddl,
    simulate_wddl_with_load, SimResult,
};
pub use engine::is_wddl_register;
pub use error::SimError;
pub use load::LoadModel;
pub use noise::add_gaussian_noise;
