//! Typed simulation errors.

use std::fmt;

/// Why a netlist could not be compiled for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A gate references a cell the library does not contain.
    UnknownCell {
        /// Instance name of the offending gate.
        gate: String,
        /// The unresolved cell name.
        cell: String,
    },
    /// The netlist's combinational portion contains a cycle, so no
    /// evaluation order exists.
    CombinationalCycle {
        /// Module name of the offending netlist.
        netlist: String,
    },
    /// The requested configuration is not supported by the selected
    /// simulation backend.
    UnsupportedConfig {
        /// The backend that rejected the configuration.
        backend: String,
        /// What is unsupported, and which backend to use instead.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownCell { gate, cell } => {
                write!(f, "gate `{gate}` references unknown cell `{cell}`")
            }
            SimError::CombinationalCycle { netlist } => {
                write!(f, "netlist `{netlist}` has a combinational cycle")
            }
            SimError::UnsupportedConfig { backend, detail } => {
                write!(f, "sim backend `{backend}` does not support this config: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
