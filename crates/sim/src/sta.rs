//! Static timing analysis: worst-case arrival times under the linear
//! delay model, used to confirm clock closure (and, for WDDL, that
//! both the precharge and the evaluation wave fit in their half
//! cycles).

use secflow_cells::{CellFunction, Library};
use secflow_extract::Parasitics;
use secflow_netlist::{GateKind, NetId, Netlist};

use crate::load::LoadModel;

/// The result of a static timing pass.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst-case arrival time at any register input or primary
    /// output, in ps (combinational sources start at 0).
    pub critical_path_ps: f64,
    /// The net where the worst arrival occurs.
    pub critical_net: Option<NetId>,
    /// Arrival time per net in ps.
    pub arrivals_ps: Vec<f64>,
}

impl TimingReport {
    /// True if the design closes timing at the given combinational
    /// budget (for single-ended designs: period minus clk-to-q and
    /// setup; for WDDL: the evaluation phase).
    pub fn closes_at(&self, budget_ps: f64) -> bool {
        self.critical_path_ps <= budget_ps
    }
}

/// Computes worst-case arrival times for the combinational portion of
/// `nl`. Sources (primary inputs, register and tie outputs) start at
/// time 0; every gate adds its loaded delay.
///
/// # Errors
///
/// Returns [`crate::SimError`] if the netlist is cyclic or references
/// unknown cells.
pub fn analyze(
    nl: &Netlist,
    lib: &Library,
    parasitics: Option<&Parasitics>,
) -> Result<TimingReport, crate::SimError> {
    let load = LoadModel::try_build(nl, lib, parasitics)?;
    let order =
        secflow_netlist::topo_order(nl).ok_or_else(|| crate::SimError::CombinationalCycle {
            netlist: nl.name.clone(),
        })?;
    let mut arrivals = vec![0.0f64; nl.net_count()];
    for gid in order {
        let g = nl.gate(gid);
        if g.kind != GateKind::Comb {
            continue;
        }
        let cell = lib.by_name(&g.cell).ok_or_else(|| crate::SimError::UnknownCell {
            gate: g.name.clone(),
            cell: g.cell.clone(),
        })?;
        if !matches!(cell.function(), CellFunction::Comb(_)) {
            continue;
        }
        let in_max = g
            .inputs
            .iter()
            .map(|&n| arrivals[n.index()])
            .fold(0.0f64, f64::max);
        let out = g.outputs[0];
        let delay = load.delay_ps(cell.intrinsic_delay_ps(), cell.drive_kohm(), out);
        arrivals[out.index()] = in_max + delay;
    }

    // Endpoints: register D pins and primary outputs.
    let mut worst = 0.0f64;
    let mut critical = None;
    let mut consider = |net: NetId, arrivals: &[f64]| {
        let a = arrivals[net.index()];
        if a > worst {
            worst = a;
            critical = Some(net);
        }
    };
    for g in nl.gates() {
        if g.kind == GateKind::Seq {
            for &d in &g.inputs {
                consider(d, &arrivals);
            }
        }
    }
    for &o in nl.outputs() {
        consider(o, &arrivals);
    }

    Ok(TimingReport {
        critical_path_ps: worst,
        critical_net: critical,
        arrivals_ps: arrivals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    #[test]
    fn chain_delay_accumulates() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let w = nl.add_net("w");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![w]);
        nl.add_gate("g1", "INV", GateKind::Comb, vec![w], vec![y]);
        nl.mark_output(y);
        let r = analyze(&nl, &lib, None).unwrap();
        assert!(r.critical_path_ps > 0.0);
        assert_eq!(r.critical_net, Some(y));
        // Two stages: strictly more than one stage's delay.
        assert!(r.arrivals_ps[y.index()] > r.arrivals_ps[w.index()]);
        assert!(r.closes_at(10_000.0));
        assert!(!r.closes_at(1.0));
    }

    #[test]
    fn register_inputs_are_endpoints() {
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let w = nl.add_net("w");
        let q = nl.add_net("q");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![w]);
        nl.add_gate("r0", "DFF", GateKind::Seq, vec![w], vec![q]);
        let r = analyze(&nl, &lib, None).unwrap();
        assert_eq!(r.critical_net, Some(w));
    }

    #[test]
    fn parasitics_increase_delay() {
        use secflow_extract::{NetParasitics, Parasitics};
        let lib = Library::lib180();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let fast = analyze(&nl, &lib, None).unwrap();
        let mut nets = vec![NetParasitics::default(); nl.net_count()];
        nets[y.index()].c_ground_ff = 100.0;
        let slow = analyze(&nl, &lib, Some(&Parasitics { nets })).unwrap();
        assert!(slow.critical_path_ps > fast.critical_path_ps);
    }
}
