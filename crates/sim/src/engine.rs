//! The event-driven simulation core: inertial gate delays, charge
//! deposits on rising transitions, crosstalk adjustment.
//!
//! [`Engine`] is a thin mutable view pairing an immutable
//! [`CompiledSim`] (cell table, fanout CSR, loads — see
//! [`crate::compiled`]) with one [`EngineScratch`] holding every array
//! the event loop writes. Constructing an engine `reset`s the scratch,
//! so a reused scratch behaves byte-identically to a fresh one while
//! allocating nothing.
//!
//! Events live on a circular timing wheel instead of a binary heap:
//! slots are indexed by `time mod wheel_size` and drained FIFO. The
//! wheel is sized past the maximum scheduling span, the `order`
//! counter is globally monotonic, and gate delays are at least 1 ps —
//! together these make the drain order exactly the heap's
//! `(time, order)` order, event for event.

use secflow_netlist::{Gate, GateId, GateKind, NetId};

use crate::compiled::{CellKind, CompiledSim, EngineScratch};

/// True if `gate` is a WDDL register (sequential, dual-rail: two
/// inputs `(Dt, Df)` and two outputs `(Qt, Qf)`).
pub fn is_wddl_register(gate: &Gate) -> bool {
    gate.kind == GateKind::Seq && gate.outputs.len() == 2 && gate.inputs.len() == 2
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    pub(crate) time: u64,
    pub(crate) order: u64,
    pub(crate) net: NetId,
    pub(crate) value: bool,
    /// Cancellation ticket: for gate-driven events, must match the
    /// gate's current sequence number.
    pub(crate) gate: Option<(GateId, u64)>,
}

/// The event-driven engine. Drivers inject net-change events at
/// absolute times and advance simulated time with
/// [`Engine::run_until`].
pub(crate) struct Engine<'a> {
    comp: &'a CompiledSim,
    s: &'a mut EngineScratch,
}

impl<'a> Engine<'a> {
    /// Binds `scratch` to `comp` for one `n_cycles`-cycle window,
    /// resetting it to the initial engine state.
    pub fn new(comp: &'a CompiledSim, scratch: &'a mut EngineScratch, n_cycles: usize) -> Self {
        scratch.reset(comp, n_cycles);
        Engine { comp, s: scratch }
    }

    /// Current logical value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.s.values[net.index()]
    }

    /// Establishes a consistent initial state by zero-delay evaluation
    /// in (cached) topological order, without recording any power.
    pub fn settle_initial(&mut self) {
        let comp = self.comp;
        for &gid in &comp.topo {
            match comp.cells[gid.index()] {
                CellKind::Tie(v) => {
                    let out = comp.out_net[gid.index()];
                    self.s.values[out.index()] = v;
                }
                CellKind::Comb { tt, .. } => {
                    let v = tt.eval(self.input_index(gid));
                    self.s.values[comp.out_net[gid.index()].index()] = v;
                }
                // Registers start at 0 (reset state).
                CellKind::Dff | CellKind::WddlDff => {}
            }
        }
    }

    /// Packs the gate's current input values into a truth-table index.
    #[inline]
    fn input_index(&self, gid: GateId) -> u32 {
        let lo = self.comp.in_offsets[gid.index()] as usize;
        let hi = self.comp.in_offsets[gid.index() + 1] as usize;
        let mut idx = 0u32;
        for (i, &inp) in self.comp.in_nets[lo..hi].iter().enumerate() {
            if self.s.values[inp.index()] {
                idx |= 1 << i;
            }
        }
        idx
    }

    /// Schedules `ev` on the timing wheel. Events at or beyond the
    /// window horizon are dropped: the final `run_until` stops there,
    /// so they could never be processed anyway (the heap-based engine
    /// kept them enqueued, unread — observationally identical).
    #[inline]
    fn push_event(&mut self, ev: Event) {
        if ev.time >= self.s.horizon {
            return;
        }
        debug_assert!(
            ev.time >= self.s.cursor && ev.time - self.s.cursor <= self.s.wheel_mask,
            "event outside the wheel span"
        );
        let slot = (ev.time & self.s.wheel_mask) as usize;
        self.s.wheel[slot].push(ev);
        self.s.occupancy[slot >> 6] |= 1 << (slot & 63);
        self.s.wheel_pending += 1;
        if self.s.wheel_pending > self.s.wheel_peak {
            self.s.wheel_peak = self.s.wheel_pending;
        }
    }

    /// Injects an externally driven net change (primary input or
    /// register output) at absolute time `time`.
    pub fn inject(&mut self, net: NetId, time: u64, value: bool) {
        self.s.order += 1;
        let ev = Event {
            time,
            order: self.s.order,
            net,
            value,
            gate: None,
        };
        self.push_event(ev);
    }

    /// Processes all events strictly before `t_end`, in `(time,
    /// order)` order: the occupancy bitmap finds the next non-empty
    /// bucket, and buckets drain FIFO (pushes are `order`-monotonic).
    pub fn run_until(&mut self, t_end: u64) {
        let mask = self.s.wheel_mask;
        let mut t = self.s.cursor;
        'scan: while t < t_end {
            let p = (t & mask) as usize;
            let mut word = self.s.occupancy[p >> 6] >> (p & 63);
            if word == 0 {
                // Skip to the next word boundary, then whole words.
                t += 64 - (t & 63);
                loop {
                    if t >= t_end {
                        break 'scan;
                    }
                    let q = (t & mask) as usize;
                    word = self.s.occupancy[q >> 6];
                    if word != 0 {
                        break;
                    }
                    t += 64;
                }
            }
            t += word.trailing_zeros() as u64;
            if t >= t_end {
                // Occupied, but next window cycle's work.
                break;
            }
            // Drain the bucket at absolute time `t`. Every event it
            // holds has exactly this timestamp (pending events span
            // less than the wheel), and processing can only schedule
            // into strictly later buckets (delays are >= 1 ps), so
            // taking the Vec out is safe and keeps its capacity.
            let slot = (t & mask) as usize;
            self.s.occupancy[slot >> 6] &= !(1u64 << (slot & 63));
            let mut bucket = std::mem::take(&mut self.s.wheel[slot]);
            self.s.events_processed += bucket.len() as u64;
            self.s.wheel_pending -= bucket.len() as u64;
            for &ev in &bucket {
                self.process_event(ev);
            }
            bucket.clear();
            self.s.wheel[slot] = bucket;
            t += 1;
        }
        self.s.cursor = t_end;
    }

    #[inline]
    fn process_event(&mut self, ev: Event) {
        let comp = self.comp;
        // Stale gate event?
        if let Some((g, seq)) = ev.gate {
            if self.s.gate_seq[g.index()] != seq {
                return;
            }
            self.s.pending[g.index()] = None;
        }
        if self.s.values[ev.net.index()] == ev.value {
            self.s.last_transition[ev.net.index()] = Some((ev.time, ev.value));
            return;
        }
        self.s.values[ev.net.index()] = ev.value;
        self.s.last_transition[ev.net.index()] = Some((ev.time, ev.value));
        if comp.cfg.record_waveform {
            self.s.waveform.push((ev.time, ev.net, ev.value));
        }
        if ev.value && !comp.exempt[ev.net.index()] {
            self.record_rise(ev.net, ev.time);
        }
        // Re-evaluate fanout gates (CSR slice: no allocation).
        for &g in comp.fanout.fanout(ev.net) {
            self.evaluate_gate(g, ev.time);
        }
    }

    fn evaluate_gate(&mut self, gid: GateId, now: u64) {
        let CellKind::Comb { tt, delay_ps } = self.comp.cells[gid.index()] else {
            return; // registers are driven by the cycle driver
        };
        self.s.gate_evals += 1;
        let out = self.comp.out_net[gid.index()];
        let v = tt.eval(self.input_index(gid));
        let effective = self.s.pending[gid.index()].unwrap_or(self.s.values[out.index()]);
        if v == effective {
            return;
        }
        // Cancel any pending opposite event (inertial filtering).
        self.s.gate_seq[gid.index()] += 1;
        self.s.pending[gid.index()] = None;
        if v != self.s.values[out.index()] {
            self.s.order += 1;
            self.s.pending[gid.index()] = Some(v);
            let ev = Event {
                time: now + delay_ps,
                order: self.s.order,
                net: out,
                value: v,
                gate: Some((gid, self.s.gate_seq[gid.index()])),
            };
            self.push_event(ev);
        }
    }

    /// Records the supply charge of a rising transition on `net`.
    fn record_rise(&mut self, net: NetId, time: u64) {
        let comp = self.comp;
        let mut q_fc = comp.c_eff_ff[net.index()] * comp.cfg.vdd;
        // Crosstalk adjustment for coupled neighbours that switched
        // within the simultaneity window.
        for &(other, cc) in comp.couplings(net) {
            if let Some((t2, v2)) = self.s.last_transition[other.index()] {
                if time.saturating_sub(t2) <= comp.cfg.crosstalk_window_ps {
                    if v2 {
                        // Both rising: the coupling cap sees no swing.
                        q_fc -= cc * comp.cfg.vdd;
                    } else {
                        // Opposite transitions: Miller doubling.
                        q_fc += cc * comp.cfg.vdd;
                    }
                }
            }
        }
        let q_fc = q_fc.max(0.0);
        self.s.energy_fj += q_fc * comp.cfg.vdd;
        self.s.rising_events += 1;

        // Spread the charge over the driver's RC time constant.
        let r = comp.drive_kohm[net.index()];
        let c = comp.c_eff_ff[net.index()];
        let sample_ps = comp.sample_ps;
        let tau_ps = (2.0 * r * c).max(sample_ps);
        let first = (time as f64 / sample_ps) as usize;
        let nbins = (tau_ps / sample_ps).ceil().max(1.0) as usize;
        let per_bin = q_fc / nbins as f64;
        for b in first..(first + nbins).min(self.s.trace.len()) {
            self.s.trace[b] += per_bin;
        }
    }

    /// Returns and resets the accumulated energy (fJ) and rising-event
    /// count.
    pub fn take_energy(&mut self) -> (f64, u64) {
        let e = (self.s.energy_fj, self.s.rising_events);
        self.s.energy_fj = 0.0;
        self.s.rising_events = 0;
        e
    }

    /// The single-ended cycle protocol: per cycle, inject register
    /// outputs and primary inputs, run the event loop to the cycle
    /// boundary, capture register inputs and results into the scratch.
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the input count.
    pub fn drive_single_ended(&mut self, input_vectors: &[Vec<bool>]) {
        let comp = self.comp;
        self.settle_initial();
        for (c, vector) in input_vectors.iter().enumerate() {
            assert_eq!(vector.len(), comp.inputs.len(), "bad vector length");
            let t0 = c as u64 * comp.cfg.period_ps;
            for i in 0..comp.se_regs.len() {
                let (_, q) = comp.se_regs[i];
                let v = self.s.reg_state[i];
                self.inject(q, t0 + comp.cfg.clk2q_ps, v);
            }
            for (i, &v) in vector.iter().enumerate() {
                self.inject(comp.inputs[i], t0 + comp.cfg.input_delay_ps, v);
            }
            self.run_until(t0 + comp.cfg.period_ps);
            for (i, &(d, _)) in comp.se_regs.iter().enumerate() {
                self.s.reg_state[i] = self.value(d);
            }
            let (e, rises) = self.take_energy();
            self.s.cycle_energy_fj.push(e);
            self.s.cycle_rises.push(rises);
            for &o in &comp.outputs {
                let v = self.s.values[o.index()];
                self.s.outputs_flat.push(v);
            }
        }
    }

    /// The WDDL two-phase protocol: precharge every pair to `(0, 0)`,
    /// evaluate to `(v, ¬v)`, capture at the cycle boundary and count
    /// `(0, 0)` register inputs as DFA alarms.
    ///
    /// # Panics
    ///
    /// Panics if any vector length differs from the pair count.
    pub fn drive_wddl(&mut self, input_pairs: &[(NetId, NetId)], input_vectors: &[Vec<bool>]) {
        let comp = self.comp;
        // All-zero is the natural WDDL precharge state; the
        // differential netlist is positive-monotone, so no settling is
        // required, but it is harmless and handles tie cells.
        self.settle_initial();
        for (c, vector) in input_vectors.iter().enumerate() {
            assert_eq!(vector.len(), input_pairs.len(), "bad vector length");
            let t0 = c as u64 * comp.cfg.period_ps;
            let te = t0 + comp.cfg.eval_start_ps();

            // Precharge phase: everything to (0, 0).
            for &(_, _, qt, qf) in &comp.wddl_regs {
                self.inject(qt, t0 + comp.cfg.clk2q_ps, false);
                self.inject(qf, t0 + comp.cfg.clk2q_ps, false);
            }
            for &(t, f) in input_pairs {
                self.inject(t, t0 + comp.cfg.input_delay_ps, false);
                self.inject(f, t0 + comp.cfg.input_delay_ps, false);
            }
            // Evaluation phase: stored values and differential inputs.
            for i in 0..comp.wddl_regs.len() {
                let (_, _, qt, qf) = comp.wddl_regs[i];
                let (vt, vf) = self.s.reg_state_pairs[i];
                self.inject(qt, te + comp.cfg.clk2q_ps, vt);
                self.inject(qf, te + comp.cfg.clk2q_ps, vf);
            }
            for (i, &v) in vector.iter().enumerate() {
                let (t, f) = input_pairs[i];
                self.inject(t, te + comp.cfg.input_delay_ps, v);
                self.inject(f, te + comp.cfg.input_delay_ps, !v);
            }
            self.run_until(t0 + comp.cfg.period_ps);

            // Capture at the rising edge; (0,0) pairs are DFA alarms.
            let mut alarms = 0;
            for (i, &(dt, df, _, _)) in comp.wddl_regs.iter().enumerate() {
                let pair = (self.value(dt), self.value(df));
                if pair == (false, false) {
                    alarms += 1;
                }
                self.s.reg_state_pairs[i] = pair;
            }
            self.s.wddl_alarms.push(alarms);
            let (e, rises) = self.take_energy();
            self.s.cycle_energy_fj.push(e);
            self.s.cycle_rises.push(rises);
            for &o in &comp.outputs {
                let v = self.s.values[o.index()];
                self.s.outputs_flat.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::load::LoadModel;
    use secflow_cells::Library;
    use secflow_netlist::{GateKind, Netlist};

    fn engine_fixture() -> (Netlist, Library, SimConfig) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        (nl, Library::lib180(), SimConfig::default())
    }

    fn compile(nl: &Netlist, lib: &Library, cfg: &SimConfig) -> CompiledSim {
        let load = LoadModel::try_build(nl, lib, None).unwrap();
        CompiledSim::build(nl, lib, &load, cfg).expect("compiles")
    }

    #[test]
    fn rising_output_draws_charge() {
        let (nl, lib, cfg) = engine_fixture();
        let comp = compile(&nl, &lib, &cfg);
        let mut s = EngineScratch::new();
        let mut e = Engine::new(&comp, &mut s, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(a, 100, true);
        e.inject(b, 100, true);
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(e.value(y));
        let (energy, rises) = e.take_energy();
        assert!(energy > 0.0);
        assert_eq!(rises, 1);
        assert!(s.trace().iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn primary_input_transitions_are_exempt() {
        let (nl, lib, cfg) = engine_fixture();
        let comp = compile(&nl, &lib, &cfg);
        let mut s = EngineScratch::new();
        let mut e = Engine::new(&comp, &mut s, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        e.inject(a, 100, true); // AND output stays 0
        e.run_until(8000);
        let (energy, rises) = e.take_energy();
        assert_eq!(energy, 0.0);
        assert_eq!(rises, 0);
    }

    #[test]
    fn short_glitch_is_filtered_inertially() {
        // Pulse shorter than the gate delay must not propagate.
        let (nl, lib, cfg) = engine_fixture();
        let comp = compile(&nl, &lib, &cfg);
        let mut s = EngineScratch::new();
        let mut e = Engine::new(&comp, &mut s, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(b, 0, true);
        e.inject(a, 100, true);
        e.inject(a, 101, false); // 1 ps pulse, well under the delay
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(!e.value(y));
        let (_, rises) = e.take_energy();
        assert_eq!(rises, 0, "glitch leaked through");
    }

    #[test]
    fn wide_pulse_produces_glitch_power() {
        let (nl, lib, cfg) = engine_fixture();
        let comp = compile(&nl, &lib, &cfg);
        let mut s = EngineScratch::new();
        let mut e = Engine::new(&comp, &mut s, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(b, 0, true);
        e.inject(a, 100, true);
        e.inject(a, 2000, false); // long pulse: y rises then falls
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(!e.value(y));
        let (energy, rises) = e.take_energy();
        assert_eq!(rises, 1);
        assert!(energy > 0.0);
    }

    #[test]
    fn settle_handles_inverting_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let comp = compile(&nl, &lib, &cfg);
        let mut s = EngineScratch::new();
        let mut e = Engine::new(&comp, &mut s, 1);
        e.settle_initial();
        assert!(e.value(y), "INV of 0 must settle to 1");
        let _ = a;
    }

    #[test]
    fn wddl_register_detection() {
        let mut nl = Netlist::new("t");
        let dt = nl.add_input("dt");
        let df = nl.add_input("df");
        let qt = nl.add_net("qt");
        let qf = nl.add_net("qf");
        nl.add_gate("r0", "WDDLDFF", GateKind::Seq, vec![dt, df], vec![qt, qf]);
        assert!(is_wddl_register(nl.gate(secflow_netlist::GateId(0))));
        let _ = (qt, qf);
    }
}
