//! The event-driven simulation core: inertial gate delays, charge
//! deposits on rising transitions, crosstalk adjustment.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use secflow_cells::{CellFunction, Library, TruthTable};
use secflow_netlist::{Gate, GateId, GateKind, NetId, Netlist};

use crate::config::SimConfig;
use crate::load::LoadModel;

/// True if `gate` is a WDDL register (sequential, dual-rail: two
/// inputs `(Dt, Df)` and two outputs `(Qt, Qf)`).
pub fn is_wddl_register(gate: &Gate) -> bool {
    gate.kind == GateKind::Seq && gate.outputs.len() == 2 && gate.inputs.len() == 2
}

/// Per-gate resolved simulation behaviour.
#[derive(Debug, Clone)]
enum CellSim {
    Comb {
        tt: TruthTable,
        intrinsic_ps: f64,
        drive_kohm: f64,
    },
    Dff,
    WddlDff,
    Tie(bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    order: u64,
    net: NetId,
    value: bool,
    /// Cancellation ticket: for gate-driven events, must match the
    /// gate's current sequence number.
    gate: Option<(GateId, u64)>,
}

/// The event-driven engine. Drivers inject net-change events at
/// absolute times and advance simulated time with
/// [`Engine::run_until`].
pub(crate) struct Engine<'a> {
    nl: &'a Netlist,
    load: &'a LoadModel,
    cfg: &'a SimConfig,
    cells: Vec<CellSim>,
    values: Vec<bool>,
    /// Monotonic tie-break counter for deterministic event order.
    order: u64,
    /// Per-gate cancellation sequence.
    gate_seq: Vec<u64>,
    /// Value the gate's pending output event will establish.
    pending: Vec<Option<bool>>,
    queue: BinaryHeap<Reverse<Event>>,
    /// Last transition per net: (time, new value).
    last_transition: Vec<Option<(u64, bool)>>,
    /// Nets whose transitions draw no supply current (primary inputs —
    /// the paper excludes the input-driver circuitry from its
    /// measurements).
    exempt: Vec<bool>,
    /// Supply-current trace: charge (fC) per sample bin.
    pub trace: Vec<f64>,
    /// Net transitions `(time, net, new value)`, recorded when
    /// [`SimConfig::record_waveform`] is set.
    pub waveform: Vec<(u64, NetId, bool)>,
    /// Energy drawn since the last [`Engine::take_energy`] call, in fJ.
    energy_fj: f64,
    /// Total rising transitions since the last take (activity metric).
    rising_events: u64,
}

impl<'a> Engine<'a> {
    pub fn new(
        nl: &'a Netlist,
        lib: &Library,
        load: &'a LoadModel,
        cfg: &'a SimConfig,
        n_cycles: usize,
    ) -> Self {
        let cells = nl
            .gates()
            .iter()
            .map(|g| {
                let cell = lib
                    .by_name(&g.cell)
                    .unwrap_or_else(|| panic!("unknown cell `{}`", g.cell));
                match cell.function() {
                    CellFunction::Comb(tt) => CellSim::Comb {
                        tt: *tt,
                        intrinsic_ps: cell.intrinsic_delay_ps(),
                        drive_kohm: cell.drive_kohm(),
                    },
                    CellFunction::Dff if is_wddl_register(g) => CellSim::WddlDff,
                    CellFunction::Dff => CellSim::Dff,
                    CellFunction::WddlDff => CellSim::WddlDff,
                    CellFunction::Tie(v) => CellSim::Tie(*v),
                }
            })
            .collect();
        let mut exempt = vec![false; nl.net_count()];
        for &i in nl.inputs() {
            exempt[i.index()] = true;
        }
        Engine {
            nl,
            load,
            cfg,
            cells,
            values: vec![false; nl.net_count()],
            order: 0,
            gate_seq: vec![0; nl.gate_count()],
            pending: vec![None; nl.gate_count()],
            queue: BinaryHeap::new(),
            last_transition: vec![None; nl.net_count()],
            exempt,
            trace: vec![0.0; n_cycles * cfg.samples_per_cycle],
            waveform: Vec::new(),
            energy_fj: 0.0,
            rising_events: 0,
        }
    }

    /// Current logical value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Establishes a consistent initial state by zero-delay evaluation
    /// in topological order, without recording any power.
    pub fn settle_initial(&mut self) {
        let order = secflow_netlist::topo_order(self.nl).expect("acyclic netlist");
        for gid in order {
            match &self.cells[gid.index()] {
                CellSim::Tie(v) => {
                    let out = self.nl.gate(gid).outputs[0];
                    self.values[out.index()] = *v;
                }
                CellSim::Comb { tt, .. } => {
                    let g = self.nl.gate(gid);
                    let mut idx = 0u32;
                    for (i, &inp) in g.inputs.iter().enumerate() {
                        if self.values[inp.index()] {
                            idx |= 1 << i;
                        }
                    }
                    let v = tt.eval(idx);
                    self.values[g.outputs[0].index()] = v;
                }
                // Registers start at 0 (reset state).
                CellSim::Dff | CellSim::WddlDff => {}
            }
        }
    }

    /// Injects an externally driven net change (primary input or
    /// register output) at absolute time `time`.
    pub fn inject(&mut self, net: NetId, time: u64, value: bool) {
        self.order += 1;
        self.queue.push(Reverse(Event {
            time,
            order: self.order,
            net,
            value,
            gate: None,
        }));
    }

    /// Processes all events strictly before `t_end`.
    pub fn run_until(&mut self, t_end: u64) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time >= t_end {
                break;
            }
            self.queue.pop();
            // Stale gate event?
            if let Some((g, seq)) = ev.gate {
                if self.gate_seq[g.index()] != seq {
                    continue;
                }
                self.pending[g.index()] = None;
            }
            if self.values[ev.net.index()] == ev.value {
                self.last_transition[ev.net.index()] = Some((ev.time, ev.value));
                continue;
            }
            self.values[ev.net.index()] = ev.value;
            self.last_transition[ev.net.index()] = Some((ev.time, ev.value));
            if self.cfg.record_waveform {
                self.waveform.push((ev.time, ev.net, ev.value));
            }
            if ev.value && !self.exempt[ev.net.index()] {
                self.record_rise(ev.net, ev.time);
            }
            // Re-evaluate fanout gates.
            let sinks: Vec<GateId> = self
                .nl
                .net(ev.net)
                .sinks
                .iter()
                .map(|s| s.gate)
                .collect();
            for g in sinks {
                self.evaluate_gate(g, ev.time);
            }
        }
    }

    fn evaluate_gate(&mut self, gid: GateId, now: u64) {
        let CellSim::Comb {
            tt,
            intrinsic_ps,
            drive_kohm,
        } = self.cells[gid.index()].clone()
        else {
            return; // registers are driven by the cycle driver
        };
        let g = self.nl.gate(gid);
        let out = g.outputs[0];
        let mut idx = 0u32;
        for (i, &inp) in g.inputs.iter().enumerate() {
            if self.values[inp.index()] {
                idx |= 1 << i;
            }
        }
        let v = tt.eval(idx);
        let effective = self.pending[gid.index()].unwrap_or(self.values[out.index()]);
        if v == effective {
            return;
        }
        // Cancel any pending opposite event (inertial filtering).
        self.gate_seq[gid.index()] += 1;
        self.pending[gid.index()] = None;
        if v != self.values[out.index()] {
            let delay = self.load.delay_ps(intrinsic_ps, drive_kohm, out).max(1.0) as u64;
            self.order += 1;
            self.pending[gid.index()] = Some(v);
            self.queue.push(Reverse(Event {
                time: now + delay,
                order: self.order,
                net: out,
                value: v,
                gate: Some((gid, self.gate_seq[gid.index()])),
            }));
        }
    }

    /// Records the supply charge of a rising transition on `net`.
    fn record_rise(&mut self, net: NetId, time: u64) {
        let mut q_fc = self.load.c_eff_ff[net.index()] * self.cfg.vdd;
        // Crosstalk adjustment for coupled neighbours that switched
        // within the simultaneity window.
        for &(other, cc) in &self.load.couplings[net.index()] {
            if let Some((t2, v2)) = self.last_transition[other.index()] {
                if time.saturating_sub(t2) <= self.cfg.crosstalk_window_ps {
                    if v2 {
                        // Both rising: the coupling cap sees no swing.
                        q_fc -= cc * self.cfg.vdd;
                    } else {
                        // Opposite transitions: Miller doubling.
                        q_fc += cc * self.cfg.vdd;
                    }
                }
            }
        }
        let q_fc = q_fc.max(0.0);
        self.energy_fj += q_fc * self.cfg.vdd;
        self.rising_events += 1;

        // Spread the charge over the driver's RC time constant.
        let r = self.load.drive_kohm[net.index()];
        let c = self.load.c_eff_ff[net.index()];
        let tau_ps = (2.0 * r * c).max(self.cfg.sample_ps());
        let sample_ps = self.cfg.sample_ps();
        let first = (time as f64 / sample_ps) as usize;
        let nbins = (tau_ps / sample_ps).ceil().max(1.0) as usize;
        let per_bin = q_fc / nbins as f64;
        for b in first..(first + nbins).min(self.trace.len()) {
            self.trace[b] += per_bin;
        }
    }

    /// Returns and resets the accumulated energy (fJ) and rising-event
    /// count.
    pub fn take_energy(&mut self) -> (f64, u64) {
        let e = (self.energy_fj, self.rising_events);
        self.energy_fj = 0.0;
        self.rising_events = 0;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    fn engine_fixture() -> (Netlist, Library, SimConfig) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        (nl, Library::lib180(), SimConfig::default())
    }

    #[test]
    fn rising_output_draws_charge() {
        let (nl, lib, cfg) = engine_fixture();
        let load = LoadModel::build(&nl, &lib, None);
        let mut e = Engine::new(&nl, &lib, &load, &cfg, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(a, 100, true);
        e.inject(b, 100, true);
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(e.value(y));
        let (energy, rises) = e.take_energy();
        assert!(energy > 0.0);
        assert_eq!(rises, 1);
        assert!(e.trace.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn primary_input_transitions_are_exempt() {
        let (nl, lib, cfg) = engine_fixture();
        let load = LoadModel::build(&nl, &lib, None);
        let mut e = Engine::new(&nl, &lib, &load, &cfg, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        e.inject(a, 100, true); // AND output stays 0
        e.run_until(8000);
        let (energy, rises) = e.take_energy();
        assert_eq!(energy, 0.0);
        assert_eq!(rises, 0);
    }

    #[test]
    fn short_glitch_is_filtered_inertially() {
        // Pulse shorter than the gate delay must not propagate.
        let (nl, lib, cfg) = engine_fixture();
        let load = LoadModel::build(&nl, &lib, None);
        let mut e = Engine::new(&nl, &lib, &load, &cfg, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(b, 0, true);
        e.inject(a, 100, true);
        e.inject(a, 101, false); // 1 ps pulse, well under the delay
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(!e.value(y));
        let (_, rises) = e.take_energy();
        assert_eq!(rises, 0, "glitch leaked through");
    }

    #[test]
    fn wide_pulse_produces_glitch_power() {
        let (nl, lib, cfg) = engine_fixture();
        let load = LoadModel::build(&nl, &lib, None);
        let mut e = Engine::new(&nl, &lib, &load, &cfg, 1);
        e.settle_initial();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        e.inject(b, 0, true);
        e.inject(a, 100, true);
        e.inject(a, 2000, false); // long pulse: y rises then falls
        e.run_until(8000);
        let y = nl.net_by_name("y").unwrap();
        assert!(!e.value(y));
        let (energy, rises) = e.take_energy();
        assert_eq!(rises, 1);
        assert!(energy > 0.0);
    }

    #[test]
    fn settle_handles_inverting_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let lib = Library::lib180();
        let cfg = SimConfig::default();
        let load = LoadModel::build(&nl, &lib, None);
        let mut e = Engine::new(&nl, &lib, &load, &cfg, 1);
        e.settle_initial();
        assert!(e.value(y), "INV of 0 must settle to 1");
    }

    #[test]
    fn wddl_register_detection() {
        let mut nl = Netlist::new("t");
        let dt = nl.add_input("dt");
        let df = nl.add_input("df");
        let qt = nl.add_net("qt");
        let qf = nl.add_net("qf");
        nl.add_gate("r0", "WDDLDFF", GateKind::Seq, vec![dt, df], vec![qt, qf]);
        assert!(is_wddl_register(nl.gate(secflow_netlist::GateId(0))));
    }
}
