//! Additive Gaussian measurement noise (Box–Muller on a seeded RNG).

use secflow_rand::{RngExt, SeedableRng, StdRng};

/// Adds zero-mean Gaussian noise with standard deviation `sigma` to
/// every sample of `trace`. Deterministic for a fixed `seed`.
pub fn add_gaussian_noise(trace: &mut [f64], sigma: f64, seed: u64) {
    if sigma <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut iter = trace.iter_mut();
    while let Some(a) = iter.next() {
        // Box–Muller transform produces two independent normals.
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        *a += sigma * r * theta.cos();
        if let Some(b) = iter.next() {
            *b += sigma * r * theta.sin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_statistics_are_plausible() {
        let mut trace = vec![0.0; 100_000];
        add_gaussian_noise(&mut trace, 2.0, 42);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var = trace.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trace.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_noop() {
        let mut trace = vec![1.0, 2.0, 3.0];
        add_gaussian_noise(&mut trace, 0.0, 1);
        assert_eq!(trace, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        add_gaussian_noise(&mut a, 1.0, 7);
        add_gaussian_noise(&mut b, 1.0, 7);
        assert_eq!(a, b);
    }
}
