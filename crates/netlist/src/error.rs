use std::fmt;

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by more than one gate output or primary input.
    MultipleDrivers {
        /// Name of the offending net.
        net: String,
    },
    /// A net has no driver (and is not a primary input).
    NoDriver {
        /// Name of the offending net.
        net: String,
    },
    /// A primary output net does not exist or was never driven.
    DanglingOutput {
        /// Name of the offending net.
        net: String,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalCycle {
        /// Instance name of a gate on the cycle.
        gate: String,
    },
    /// Two gates share the same instance name.
    DuplicateGateName {
        /// The duplicated instance name.
        name: String,
    },
    /// Two nets share the same name.
    DuplicateNetName {
        /// The duplicated net name.
        name: String,
    },
    /// A parse error in the structural Verilog reader.
    Parse {
        /// 1-based line number of the error.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::NoDriver { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::DanglingOutput { net } => {
                write!(f, "primary output `{net}` is dangling")
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate `{gate}`")
            }
            NetlistError::DuplicateGateName { name } => {
                write!(f, "duplicate gate instance name `{name}`")
            }
            NetlistError::DuplicateNetName { name } => {
                write!(f, "duplicate net name `{name}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
