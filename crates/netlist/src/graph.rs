//! Graph algorithms over the combinational structure of a netlist.
//!
//! Sequential gates ([`GateKind::Seq`]) break paths: their outputs are
//! treated as sources (like primary inputs) and their inputs as sinks
//! (like primary outputs), so the combinational portion forms a DAG in
//! any legal synchronous design.

use crate::netlist::{GateId, GateKind, NetId, Netlist};

/// Returns the gates in a topological order of the combinational
/// graph: every combinational gate appears after all combinational
/// gates driving its inputs. Sequential and tie gates appear first (they
/// are sources).
///
/// Returns `None` if the combinational portion contains a cycle; use
/// [`find_combinational_cycle`] to locate it.
pub fn topo_order(nl: &Netlist) -> Option<Vec<GateId>> {
    let n = nl.gate_count();
    // In-degree counts only combinational predecessor gates.
    let mut indeg = vec![0usize; n];
    for gid in nl.gate_ids() {
        let g = nl.gate(gid);
        if g.kind != GateKind::Comb {
            continue;
        }
        for &inp in &g.inputs {
            if let Some(d) = nl.net(inp).driver {
                if nl.gate(d.gate).kind == GateKind::Comb {
                    indeg[gid.index()] += 1;
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<GateId> = Vec::new();
    // Sources first: seq/tie gates, then zero-indegree comb gates.
    for gid in nl.gate_ids() {
        if nl.gate(gid).kind != GateKind::Comb {
            order.push(gid);
        } else if indeg[gid.index()] == 0 {
            queue.push(gid);
        }
    }
    let mut seen_comb = 0usize;
    while let Some(gid) = queue.pop() {
        order.push(gid);
        seen_comb += 1;
        for &out in &nl.gate(gid).outputs {
            for sink in &nl.net(out).sinks {
                let sg = sink.gate;
                if nl.gate(sg).kind == GateKind::Comb {
                    indeg[sg.index()] -= 1;
                    if indeg[sg.index()] == 0 {
                        queue.push(sg);
                    }
                }
            }
        }
    }
    let comb_total = nl
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Comb)
        .count();
    if seen_comb == comb_total {
        Some(order)
    } else {
        None
    }
}

/// Finds one gate on a combinational cycle, if any exists.
pub fn find_combinational_cycle(nl: &Netlist) -> Option<GateId> {
    // DFS with colors over combinational gates only.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; nl.gate_count()];
    for start in nl.gate_ids() {
        if nl.gate(start).kind != GateKind::Comb || color[start.index()] != Color::White {
            continue;
        }
        // Iterative DFS: stack of (gate, next-successor-index).
        let mut stack: Vec<(GateId, usize, usize)> = vec![(start, 0, 0)];
        color[start.index()] = Color::Gray;
        'dfs: while let Some(&mut (g, ref mut oi, ref mut si)) = stack.last_mut() {
            let gate = nl.gate(g);
            while *oi < gate.outputs.len() {
                let net = nl.net(gate.outputs[*oi]);
                while *si < net.sinks.len() {
                    let succ = net.sinks[*si].gate;
                    *si += 1;
                    if nl.gate(succ).kind != GateKind::Comb {
                        continue;
                    }
                    match color[succ.index()] {
                        Color::Gray => return Some(succ),
                        Color::White => {
                            color[succ.index()] = Color::Gray;
                            stack.push((succ, 0, 0));
                            continue 'dfs;
                        }
                        Color::Black => {}
                    }
                }
                *oi += 1;
                *si = 0;
            }
            color[g.index()] = Color::Black;
            stack.pop();
        }
    }
    None
}

/// Assigns each net a combinational level: primary inputs, tie outputs
/// and sequential outputs are level 0; every other net is
/// `1 + max(level of driving gate's inputs)`.
///
/// Returns `None` if the netlist has a combinational cycle.
pub fn combinational_levels(nl: &Netlist) -> Option<Vec<u32>> {
    let order = topo_order(nl)?;
    let mut level = vec![0u32; nl.net_count()];
    for gid in order {
        let g = nl.gate(gid);
        if g.kind != GateKind::Comb {
            continue;
        }
        let lmax = g
            .inputs
            .iter()
            .map(|&i| level[i.index()])
            .max()
            .unwrap_or(0);
        for &o in &g.outputs {
            level[o.index()] = lmax + 1;
        }
    }
    Some(level)
}

/// Returns, for each net, the number of gate input pins it drives.
pub fn fanout_map(nl: &Netlist) -> Vec<usize> {
    nl.net_ids().map(|n| nl.net(n).sinks.len()).collect()
}

/// Compressed-sparse-row fanout adjacency: for every net, the gates
/// reading it, flattened into one contiguous array.
///
/// The per-net slice preserves the order of [`crate::Net::sinks`], so a
/// walk over [`FanoutCsr::fanout`] visits gates in exactly the order a
/// walk over the sink list would — a drop-in, allocation-free
/// replacement for collecting `net.sinks` per event in simulation hot
/// loops. A gate reading the same net on several pins appears once per
/// reading pin, exactly like the sink list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCsr {
    /// `offsets[n]..offsets[n + 1]` indexes `gates` for net `n`;
    /// `net_count + 1` entries.
    offsets: Vec<u32>,
    /// Sink gates of all nets, concatenated in net-id order.
    gates: Vec<GateId>,
}

impl FanoutCsr {
    /// Builds the fanout adjacency of `nl`.
    pub fn build(nl: &Netlist) -> Self {
        let mut offsets = Vec::with_capacity(nl.net_count() + 1);
        let mut gates = Vec::new();
        offsets.push(0);
        for id in nl.net_ids() {
            gates.extend(nl.net(id).sinks.iter().map(|s| s.gate));
            offsets.push(gates.len() as u32);
        }
        FanoutCsr { offsets, gates }
    }

    /// The gates reading `net`, in sink order.
    #[inline]
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        let lo = self.offsets[net.index()] as usize;
        let hi = self.offsets[net.index() + 1] as usize;
        &self.gates[lo..hi]
    }

    /// Number of nets covered.
    pub fn net_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{GateKind, Netlist};

    /// a -> g0 -> x -> g1 -> y (chain) plus DFF breaking a feedback arc.
    fn chain() -> Netlist {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g1", "BUF", GateKind::Comb, vec![x], vec![y]);
        nl.mark_output(y);
        nl
    }

    #[test]
    fn topo_respects_dependencies() {
        let nl = chain();
        let order = topo_order(&nl).unwrap();
        let pos: Vec<usize> = nl
            .gate_ids()
            .map(|g| order.iter().position(|&o| o == g).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn levels_increase_along_chain() {
        let nl = chain();
        let lv = combinational_levels(&nl).unwrap();
        let a = nl.net_by_name("a").unwrap();
        let x = nl.net_by_name("x").unwrap();
        let y = nl.net_by_name("y").unwrap();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[x.index()], 1);
        assert_eq!(lv[y.index()], 2);
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("loop");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![y], vec![x]);
        nl.add_gate("g1", "BUF", GateKind::Comb, vec![x], vec![y]);
        assert!(topo_order(&nl).is_none());
        assert!(find_combinational_cycle(&nl).is_some());
        assert!(combinational_levels(&nl).is_none());
    }

    #[test]
    fn seq_gate_breaks_cycle() {
        let mut nl = Netlist::new("reg_loop");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_gate("inv", "INV", GateKind::Comb, vec![q], vec![x]);
        nl.add_gate("ff", "DFF", GateKind::Seq, vec![x], vec![q]);
        assert!(topo_order(&nl).is_some());
        assert!(find_combinational_cycle(&nl).is_none());
    }

    #[test]
    fn fanout_csr_matches_sink_lists() {
        let mut nl = Netlist::new("csr");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![x]);
        nl.add_gate("g1", "OR2", GateKind::Comb, vec![a, x], vec![y]);
        // A gate reading the same net twice appears once per pin.
        let z = nl.add_net("z");
        nl.add_gate("g2", "AND2", GateKind::Comb, vec![b, b], vec![z]);
        let csr = FanoutCsr::build(&nl);
        assert_eq!(csr.net_count(), nl.net_count());
        for id in nl.net_ids() {
            let expect: Vec<GateId> = nl.net(id).sinks.iter().map(|s| s.gate).collect();
            assert_eq!(csr.fanout(id), expect.as_slice(), "net {id}");
        }
        assert_eq!(csr.fanout(b).len(), 3);
    }

    #[test]
    fn fanout_counts_sinks() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g1", "BUF", GateKind::Comb, vec![a], vec![y]);
        let f = fanout_map(&nl);
        assert_eq!(f[a.index()], 2);
        assert_eq!(f[x.index()], 0);
    }
}
