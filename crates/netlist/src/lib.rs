//! Gate-level netlist database for the secure design flow.
//!
//! This crate provides the central data structure that every stage of the
//! flow manipulates: a flat, technology-mapped [`Netlist`] of gate
//! instances connected by nets, together with graph utilities
//! (topological ordering, levelization, fanout maps), validation, and a
//! reader/writer for a structural-Verilog-like text format (the `rtl.v`,
//! `fat.v` and `diff.v` artifacts of the paper's flow).
//!
//! The netlist is deliberately independent of any particular cell
//! library: gate instances reference library cells *by name* and carry a
//! [`GateKind`] flag distinguishing combinational from sequential
//! elements, so the graph algorithms work without consulting electrical
//! data.
//!
//! # Example
//!
//! ```
//! use secflow_netlist::{Netlist, GateKind};
//!
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let s = nl.add_net("s");
//! let c = nl.add_net("c");
//! nl.add_gate("u_xor", "XOR2", GateKind::Comb, vec![a, b], vec![s]);
//! nl.add_gate("u_and", "AND2", GateKind::Comb, vec![a, b], vec![c]);
//! nl.mark_output(s);
//! nl.mark_output(c);
//! assert!(nl.validate().is_ok());
//! assert_eq!(nl.gate_count(), 2);
//! ```

mod error;
mod graph;
mod netlist;
mod stats;
mod validate;
mod verilog;

pub use error::NetlistError;
pub use graph::{
    combinational_levels, fanout_map, find_combinational_cycle, topo_order, FanoutCsr,
};
pub use netlist::{Gate, GateId, GateKind, Net, NetId, Netlist, PinRef};
pub use stats::NetlistStats;
pub use verilog::{parse_verilog, structurally_equal, write_verilog};
