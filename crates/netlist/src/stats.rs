//! Summary statistics for reporting.

use std::fmt;

use crate::graph::combinational_levels;
use crate::netlist::{GateKind, Netlist};

/// Summary statistics of a netlist, used in flow reports.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total gate instances.
    pub gates: usize,
    /// Combinational gate instances.
    pub comb_gates: usize,
    /// Sequential gate instances.
    pub seq_gates: usize,
    /// Total nets.
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Maximum combinational depth in gate levels (0 if cyclic).
    pub depth: u32,
    /// Total gate input pins (an estimate of wiring demand).
    pub pins: usize,
}

impl NetlistStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let depth = combinational_levels(nl)
            .map(|lv| lv.into_iter().max().unwrap_or(0))
            .unwrap_or(0);
        NetlistStats {
            gates: nl.gate_count(),
            comb_gates: nl
                .gates()
                .iter()
                .filter(|g| g.kind == GateKind::Comb)
                .count(),
            seq_gates: nl
                .gates()
                .iter()
                .filter(|g| g.kind == GateKind::Seq)
                .count(),
            nets: nl.net_count(),
            inputs: nl.inputs().len(),
            outputs: nl.outputs().len(),
            depth,
            pins: nl.gates().iter().map(|g| g.inputs.len()).sum(),
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({} comb, {} seq), {} nets, {} PI, {} PO, depth {}, {} pins",
            self.gates,
            self.comb_gates,
            self.seq_gates,
            self.nets,
            self.inputs,
            self.outputs,
            self.depth,
            self.pins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{GateKind, Netlist};

    #[test]
    fn stats_of_small_netlist() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("ff", "DFF", GateKind::Seq, vec![x], vec![q]);
        nl.mark_output(q);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.gates, 2);
        assert_eq!(s.comb_gates, 1);
        assert_eq!(s.seq_gates, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.pins, 2);
        let text = s.to_string();
        assert!(text.contains("2 gates"));
    }
}
