//! Structural validation of a netlist.

use std::collections::HashSet;

use crate::error::NetlistError;
use crate::graph::find_combinational_cycle;
use crate::netlist::Netlist;

impl Netlist {
    /// Checks the structural invariants a legal netlist must satisfy:
    ///
    /// * every net that feeds a gate or a primary output has exactly one
    ///   driver (a gate output or a primary input);
    /// * gate instance names are unique;
    /// * the combinational portion is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        let input_set: HashSet<_> = self.inputs().iter().copied().collect();
        for id in self.net_ids() {
            let net = self.net(id);
            let used = !net.sinks.is_empty() || self.outputs().contains(&id);
            let driven = net.driver.is_some() || input_set.contains(&id);
            if used && !driven {
                return Err(NetlistError::NoDriver {
                    net: net.name.clone(),
                });
            }
            if net.driver.is_some() && input_set.contains(&id) {
                return Err(NetlistError::MultipleDrivers {
                    net: net.name.clone(),
                });
            }
        }
        let mut names = HashSet::new();
        for g in self.gates() {
            if !names.insert(g.name.as_str()) {
                return Err(NetlistError::DuplicateGateName {
                    name: g.name.clone(),
                });
            }
        }
        if let Some(g) = find_combinational_cycle(self) {
            return Err(NetlistError::CombinationalCycle {
                gate: self.gate(g).name.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::error::NetlistError;
    use crate::netlist::{GateKind, Netlist};

    #[test]
    fn valid_netlist_passes() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn undriven_net_fails() {
        let mut nl = Netlist::new("bad");
        let float = nl.add_net("float");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![float], vec![y]);
        nl.mark_output(y);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::NoDriver { net }) if net == "float"
        ));
    }

    #[test]
    fn duplicate_gate_name_fails() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g", "BUF", GateKind::Comb, vec![a], vec![x]);
        nl.add_gate("g", "BUF", GateKind::Comb, vec![a], vec![y]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::DuplicateGateName { .. })
        ));
    }

    #[test]
    fn cycle_fails() {
        let mut nl = Netlist::new("bad");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate("g0", "BUF", GateKind::Comb, vec![y], vec![x]);
        nl.add_gate("g1", "BUF", GateKind::Comb, vec![x], vec![y]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn unused_undriven_net_is_fine() {
        let mut nl = Netlist::new("ok");
        nl.add_net("spare");
        assert!(nl.validate().is_ok());
    }
}
