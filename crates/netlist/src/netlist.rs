use std::collections::HashMap;
use std::fmt;

/// Index of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

/// Index of a gate instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl NetId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Distinguishes combinational gates from sequential (state-holding)
/// elements without consulting a cell library.
///
/// Sequential gates break combinational paths: their outputs act as
/// sources and their inputs as sinks for topological ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A combinational gate (output is a pure function of its inputs).
    Comb,
    /// A clocked storage element (D flip-flop or WDDL register).
    Seq,
    /// A constant driver (tie-low / tie-high cell).
    Tie,
}

/// A reference to one pin of one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The gate owning the pin.
    pub gate: GateId,
    /// Pin position: index into the gate's input or output list.
    pub pin: u32,
    /// True if this is an output pin.
    pub is_output: bool,
}

/// A gate instance: a named reference to a library cell plus its
/// connections.
///
/// Input and output pins are positional; the structural Verilog
/// writer/reader maps positions to the conventional pin names
/// `A, B, C, D, E, F` (inputs) and `Y` / `Q` (outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Unique instance name.
    pub name: String,
    /// Library cell name, e.g. `"AOI32"`.
    pub cell: String,
    /// Combinational / sequential / tie classification.
    pub kind: GateKind,
    /// Nets connected to the input pins, in pin order.
    pub inputs: Vec<NetId>,
    /// Nets driven by the output pins, in pin order.
    pub outputs: Vec<NetId>,
}

/// A net: a single electrical node connecting one driver to zero or
/// more sinks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Net {
    /// Unique net name.
    pub name: String,
    /// The gate output pin driving this net, if any. Primary inputs
    /// have no driver.
    pub driver: Option<PinRef>,
    /// All gate input pins reading this net.
    pub sinks: Vec<PinRef>,
}

/// A flat, technology-mapped gate-level netlist.
///
/// Nets and gates are stored in arenas and referenced by [`NetId`] /
/// [`GateId`]. Connectivity (driver and sink pin lists per net) is
/// maintained automatically by [`Netlist::add_gate`].
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds an internal net. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a net with the same name already exists; net names must
    /// be unique (use [`Netlist::fresh_net`] for auto-generated names).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = NetId(self.nets.len() as u32);
        assert!(
            self.net_names.insert(name.clone(), id).is_none(),
            "duplicate net name `{name}`"
        );
        self.nets.push(Net {
            name,
            driver: None,
            sinks: Vec::new(),
        });
        id
    }

    /// Adds a net with a guaranteed-fresh generated name based on `stem`.
    pub fn fresh_net(&mut self, stem: &str) -> NetId {
        let mut n = self.nets.len();
        loop {
            let candidate = format!("{stem}_{n}");
            if !self.net_names.contains_key(&candidate) {
                return self.add_net(candidate);
            }
            n += 1;
        }
    }

    /// Adds a primary input: a net driven from outside the module.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds a gate instance and wires up driver/sink records on the
    /// connected nets. Returns the new gate's id.
    ///
    /// # Panics
    ///
    /// Panics if any output net already has a driver.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell: impl Into<String>,
        kind: GateKind,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> GateId {
        let gid = GateId(self.gates.len() as u32);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].sinks.push(PinRef {
                gate: gid,
                pin: pin as u32,
                is_output: false,
            });
        }
        for (pin, &net) in outputs.iter().enumerate() {
            let slot = &mut self.nets[net.index()].driver;
            assert!(
                slot.is_none(),
                "net `{}` already has a driver",
                self.nets[net.index()].name
            );
            *slot = Some(PinRef {
                gate: gid,
                pin: pin as u32,
                is_output: true,
            });
        }
        self.gates.push(Gate {
            name: name.into(),
            cell: cell.into(),
            kind,
            inputs,
            outputs,
        });
        gid
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Returns the net record for `id`.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Returns the gate record for `id`.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gates, indexable by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Iterator over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Iterator over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Replaces every read of net `from` with a read of net `to`,
    /// updating sink records on both nets. The driver of `from` is left
    /// untouched. Used by inverter sweeping and buffer removal.
    pub fn rewire_sinks(&mut self, from: NetId, to: NetId) {
        if from == to {
            return;
        }
        let moved = std::mem::take(&mut self.nets[from.index()].sinks);
        for pin in &moved {
            let g = &mut self.gates[pin.gate.index()];
            g.inputs[pin.pin as usize] = to;
        }
        self.nets[to.index()].sinks.extend(moved);
        // Primary outputs reading `from` move too.
        for out in &mut self.outputs {
            if *out == from {
                *out = to;
            }
        }
    }

    /// Removes gates for which `dead(gate)` returns true, compacting the
    /// gate arena and fixing up all pin references. Nets are preserved
    /// (their driver records are cleared when the driver dies).
    pub fn retain_gates(&mut self, mut keep: impl FnMut(&Gate) -> bool) {
        let mut remap: Vec<Option<GateId>> = vec![None; self.gates.len()];
        let mut new_gates = Vec::with_capacity(self.gates.len());
        for (i, g) in self.gates.drain(..).enumerate() {
            if keep(&g) {
                remap[i] = Some(GateId(new_gates.len() as u32));
                new_gates.push(g);
            }
        }
        self.gates = new_gates;
        for net in &mut self.nets {
            if let Some(d) = net.driver {
                match remap[d.gate.index()] {
                    Some(ng) => net.driver = Some(PinRef { gate: ng, ..d }),
                    None => net.driver = None,
                }
            }
            net.sinks.retain_mut(|s| match remap[s.gate.index()] {
                Some(ng) => {
                    s.gate = ng;
                    true
                }
                None => false,
            });
        }
    }

    /// Per-cell-name instance histogram, sorted by name.
    pub fn cell_histogram(&self) -> Vec<(String, usize)> {
        let mut map: HashMap<&str, usize> = HashMap::new();
        for g in &self.gates {
            *map.entry(g.cell.as_str()).or_insert(0) += 1;
        }
        let mut v: Vec<(String, usize)> =
            map.into_iter().map(|(k, n)| (k.to_string(), n)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = tiny();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.net_count(), 3);
        let y = nl.net_by_name("y").unwrap();
        let d = nl.net(y).driver.unwrap();
        assert_eq!(nl.gate(d.gate).cell, "AND2");
        assert_eq!(nl.net(nl.net_by_name("a").unwrap()).sinks.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already has a driver")]
    fn double_drive_panics() {
        let mut nl = tiny();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        let y = nl.net_by_name("y").unwrap();
        nl.add_gate("g1", "OR2", GateKind::Comb, vec![a, b], vec![y]);
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_panics() {
        let mut nl = tiny();
        nl.add_net("a");
    }

    #[test]
    fn fresh_net_is_unique() {
        let mut nl = tiny();
        let n1 = nl.fresh_net("w");
        let n2 = nl.fresh_net("w");
        assert_ne!(n1, n2);
        assert_ne!(nl.net(n1).name, nl.net(n2).name);
    }

    #[test]
    fn rewire_sinks_moves_loads() {
        let mut nl = tiny();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        nl.rewire_sinks(b, a);
        assert_eq!(nl.net(a).sinks.len(), 2);
        assert!(nl.net(b).sinks.is_empty());
        let g = nl.gate(GateId(0));
        assert_eq!(g.inputs, vec![a, a]);
    }

    #[test]
    fn retain_gates_fixes_references() {
        let mut nl = tiny();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        let z = nl.add_net("z");
        nl.add_gate("g1", "OR2", GateKind::Comb, vec![a, b], vec![z]);
        nl.retain_gates(|g| g.name != "g0");
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gate(GateId(0)).name, "g1");
        let y = nl.net_by_name("y").unwrap();
        assert!(nl.net(y).driver.is_none());
        let d = nl.net(z).driver.unwrap();
        assert_eq!(d.gate, GateId(0));
        assert_eq!(nl.net(a).sinks.len(), 1);
    }

    #[test]
    fn histogram_counts_cells() {
        let mut nl = tiny();
        let a = nl.net_by_name("a").unwrap();
        let b = nl.net_by_name("b").unwrap();
        let z = nl.add_net("z");
        nl.add_gate("g1", "AND2", GateKind::Comb, vec![a, b], vec![z]);
        let h = nl.cell_histogram();
        assert_eq!(h, vec![("AND2".to_string(), 2)]);
    }
}
