//! Reader and writer for a structural-Verilog-like exchange format.
//!
//! The paper's flow passes `rtl.v`, `fat.v` and the differential netlist
//! between tools as structural Verilog. This module reproduces that
//! interface with a deliberately small subset:
//!
//! ```verilog
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w1;
//!   AND2 u1 (.A(a), .B(b), .Y(w1));
//!   BUF  u2 (.A(w1), .Y(y));
//! endmodule
//! ```
//!
//! Pin naming is positional-by-convention: input pins are `A, B, C, D,
//! E, F, G, H` (then `I8, I9, ...`), the single data input of a
//! sequential cell is `D`, combinational outputs are `Y` (then `Y1,
//! Y2, ...`) and sequential outputs are `Q` (then `Q1, ...`).

use crate::error::NetlistError;
use crate::netlist::{GateKind, NetId, Netlist};

const INPUT_NAMES: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];

/// Returns the conventional name of input pin `idx` for a gate of
/// `kind`.
pub(crate) fn input_pin_name(kind: GateKind, idx: usize, n_inputs: usize) -> String {
    if kind == GateKind::Seq && n_inputs == 1 {
        return "D".to_string();
    }
    if idx < INPUT_NAMES.len() {
        INPUT_NAMES[idx].to_string()
    } else {
        format!("I{idx}")
    }
}

/// Returns the conventional name of output pin `idx` for a gate of
/// `kind`.
pub(crate) fn output_pin_name(kind: GateKind, idx: usize) -> String {
    let stem = if kind == GateKind::Seq { "Q" } else { "Y" };
    if idx == 0 {
        stem.to_string()
    } else {
        format!("{stem}{idx}")
    }
}

/// Serializes `nl` as structural Verilog.
pub fn write_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let port_list: Vec<&str> = nl
        .inputs()
        .iter()
        .chain(nl.outputs().iter())
        .map(|&n| nl.net(n).name.as_str())
        .collect();
    s.push_str(&format!("module {} ({});\n", nl.name, port_list.join(", ")));
    for &i in nl.inputs() {
        s.push_str(&format!("  input {};\n", nl.net(i).name));
    }
    for &o in nl.outputs() {
        s.push_str(&format!("  output {};\n", nl.net(o).name));
    }
    for id in nl.net_ids() {
        if nl.inputs().contains(&id) || nl.outputs().contains(&id) {
            continue;
        }
        let net = nl.net(id);
        if net.driver.is_some() || !net.sinks.is_empty() {
            s.push_str(&format!("  wire {};\n", net.name));
        }
    }
    for g in nl.gates() {
        let mut conns = Vec::new();
        for (i, &n) in g.inputs.iter().enumerate() {
            conns.push(format!(
                ".{}({})",
                input_pin_name(g.kind, i, g.inputs.len()),
                nl.net(n).name
            ));
        }
        for (i, &n) in g.outputs.iter().enumerate() {
            conns.push(format!(
                ".{}({})",
                output_pin_name(g.kind, i),
                nl.net(n).name
            ));
        }
        s.push_str(&format!(
            "  {} {} ({});\n",
            g.cell,
            g.name,
            conns.join(", ")
        ));
    }
    s.push_str("endmodule\n");
    s
}

/// Parses the structural subset written by [`write_verilog`].
///
/// `seq_cells` lists the library cell names that must be treated as
/// sequential; everything else is combinational (tie cells are
/// recognized by the names `TIELO`/`TIEHI`).
///
/// The parsed netlist is [`Netlist::validate`]d before it is returned,
/// so a successful parse never yields a partially wired module
/// (truncated files surface as missing drivers or an unterminated
/// statement, not as a silently smaller netlist).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input (including
/// duplicate net declarations and doubly driven nets), or the
/// underlying [`NetlistError`] when the completed netlist fails
/// validation.
pub fn parse_verilog(text: &str, seq_cells: &[&str]) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new("parsed");
    let mut outputs: Vec<String> = Vec::new();
    /// One parsed instance: (line, cell, name, pin->net connections).
    type RawInstance = (usize, String, String, Vec<(String, String)>);
    let mut instances: Vec<RawInstance> = Vec::new();

    // First pass: declarations.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    let mut saw_endmodule = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_line = ln + 1;
        }
        pending.push_str(line);
        pending.push(' ');
        if line.ends_with(';') || line.starts_with("endmodule") {
            statements.push((pending_line, pending.trim().to_string()));
            pending.clear();
        }
    }
    if !pending.trim().is_empty() {
        return Err(NetlistError::Parse {
            line: pending_line,
            message: format!(
                "unterminated statement `{}` (truncated file?)",
                pending.trim()
            ),
        });
    }

    for (ln, stmt) in &statements {
        let stmt = stmt.trim_end_matches(';').trim();
        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest.split('(').next().unwrap_or("").trim();
            nl.name = name.to_string();
        } else if let Some(rest) = stmt.strip_prefix("input ") {
            for n in rest.split(',') {
                let n = n.trim();
                if n.is_empty() {
                    return Err(NetlistError::Parse {
                        line: *ln,
                        message: "empty input name".into(),
                    });
                }
                if nl.net_by_name(n).is_some() {
                    return Err(NetlistError::Parse {
                        line: *ln,
                        message: format!("duplicate declaration of net `{n}`"),
                    });
                }
                nl.add_input(n);
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for n in rest.split(',') {
                let n = n.trim();
                if n.is_empty() {
                    return Err(NetlistError::Parse {
                        line: *ln,
                        message: "empty output name".into(),
                    });
                }
                if outputs.iter().any(|o| o == n) || nl.net_by_name(n).is_some() {
                    return Err(NetlistError::Parse {
                        line: *ln,
                        message: format!("duplicate declaration of net `{n}`"),
                    });
                }
                outputs.push(n.to_string());
            }
        } else if let Some(rest) = stmt.strip_prefix("wire ") {
            for n in rest.split(',') {
                let n = n.trim();
                if n.is_empty() {
                    return Err(NetlistError::Parse {
                        line: *ln,
                        message: "empty wire name".into(),
                    });
                }
                if nl.net_by_name(n).is_none() {
                    nl.add_net(n);
                }
            }
        } else if stmt == "endmodule" {
            saw_endmodule = true;
            break;
        } else {
            // Instance: CELL name ( .PIN(net), ... )
            let open = stmt.find('(').ok_or(NetlistError::Parse {
                line: *ln,
                message: "expected `(` in instance".into(),
            })?;
            let head: Vec<&str> = stmt[..open].split_whitespace().collect();
            if head.len() != 2 {
                return Err(NetlistError::Parse {
                    line: *ln,
                    message: format!("bad instance header `{}`", &stmt[..open]),
                });
            }
            let body = stmt[open + 1..].trim_end_matches(')');
            let mut conns = Vec::new();
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let part = part.strip_prefix('.').ok_or(NetlistError::Parse {
                    line: *ln,
                    message: format!("expected named connection, got `{part}`"),
                })?;
                let p_open = part.find('(').ok_or(NetlistError::Parse {
                    line: *ln,
                    message: format!("expected `(` in connection `{part}`"),
                })?;
                let pin = part[..p_open].trim().to_string();
                let net = part[p_open + 1..].trim_end_matches(')').trim().to_string();
                conns.push((pin, net));
            }
            instances.push((*ln, head[0].to_string(), head[1].to_string(), conns));
        }
    }
    if !saw_endmodule {
        return Err(NetlistError::Parse {
            line: statements.last().map_or(0, |(ln, _)| *ln),
            message: "missing `endmodule` (truncated file?)".into(),
        });
    }

    // Create output nets that were not also declared as wires/inputs,
    // capturing their ids here so net-id creation order stays: module
    // inputs, wires, output nets, then instance-created nets.
    let port_output_ids: Vec<_> = outputs
        .iter()
        .map(|name| match nl.net_by_name(name) {
            Some(id) => id,
            None => nl.add_net(name.clone()),
        })
        .collect();

    // Second pass: instances.
    for (ln, cell, inst, conns) in instances {
        let kind = if seq_cells.contains(&cell.as_str()) {
            GateKind::Seq
        } else if cell == "TIELO" || cell == "TIEHI" {
            GateKind::Tie
        } else {
            GateKind::Comb
        };
        let mut ins: Vec<(usize, String, NetId)> = Vec::new();
        let mut outs: Vec<(usize, String, NetId)> = Vec::new();
        for (pin, net) in conns {
            let id = match nl.net_by_name(&net) {
                Some(id) => id,
                None => nl.add_net(net.clone()),
            };
            let (is_out, idx) = classify_pin(&pin, kind).ok_or(NetlistError::Parse {
                line: ln,
                message: format!("unknown pin name `{pin}`"),
            })?;
            if is_out {
                outs.push((idx, net, id));
            } else {
                ins.push((idx, net, id));
            }
        }
        ins.sort();
        outs.sort();
        // `add_gate` asserts single drivers; turn violations into a
        // parse error up front so a corrupt file cannot panic.
        for (k, (_, net, id)) in outs.iter().enumerate() {
            if nl.net(*id).driver.is_some() || outs[..k].iter().any(|(_, _, prev)| prev == id) {
                return Err(NetlistError::Parse {
                    line: ln,
                    message: format!("net `{net}` already has a driver"),
                });
            }
        }
        let input_ids = ins.into_iter().map(|(_, _, id)| id).collect();
        let output_ids = outs.into_iter().map(|(_, _, id)| id).collect();
        nl.add_gate(inst, cell, kind, input_ids, output_ids);
    }

    for id in port_output_ids {
        nl.mark_output(id);
    }
    nl.validate()?;
    Ok(nl)
}

/// Maps a conventional pin name to (is_output, position). `D` is the
/// data pin of a sequential cell but the fourth input of a
/// combinational one.
fn classify_pin(pin: &str, kind: GateKind) -> Option<(bool, usize)> {
    match pin {
        "D" if kind == GateKind::Seq => return Some((false, 0)),
        "Y" | "Q" => return Some((true, 0)),
        _ => {}
    }
    if let Some(i) = INPUT_NAMES.iter().position(|&p| p == pin) {
        return Some((false, i));
    }
    if let Some(rest) = pin.strip_prefix('I') {
        return rest.parse::<usize>().ok().map(|i| (false, i));
    }
    if let Some(rest) = pin.strip_prefix('Y').or_else(|| pin.strip_prefix('Q')) {
        return rest.parse::<usize>().ok().map(|i| (true, i));
    }
    None
}

/// Checks that two netlists are structurally identical up to gate and
/// net ordering: same module name, ports, and the same multiset of
/// (cell, input-net-names, output-net-names) instances.
pub fn structurally_equal(a: &Netlist, b: &Netlist) -> bool {
    let sig = |nl: &Netlist| -> Vec<String> {
        let mut v: Vec<String> = nl
            .gates()
            .iter()
            .map(|g| {
                let ins: Vec<&str> = g.inputs.iter().map(|&n| nl.net(n).name.as_str()).collect();
                let outs: Vec<&str> = g.outputs.iter().map(|&n| nl.net(n).name.as_str()).collect();
                format!("{}|{}|{}", g.cell, ins.join(","), outs.join(","))
            })
            .collect();
        v.sort();
        v
    };
    let ports = |nl: &Netlist| -> (Vec<String>, Vec<String>) {
        (
            nl.inputs()
                .iter()
                .map(|&n| nl.net(n).name.clone())
                .collect(),
            nl.outputs()
                .iter()
                .map(|&n| nl.net(n).name.clone())
                .collect(),
        )
    };
    a.name == b.name && ports(a) == ports(b) && sig(a) == sig(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{GateKind, Netlist};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("top");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let w = nl.add_net("w1");
        let q = nl.add_net("q");
        nl.add_gate("u1", "AND2", GateKind::Comb, vec![a, b], vec![w]);
        nl.add_gate("u2", "DFF", GateKind::Seq, vec![w], vec![q]);
        nl.mark_output(q);
        nl
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = sample();
        let text = write_verilog(&nl);
        let parsed = parse_verilog(&text, &["DFF"]).unwrap();
        assert!(structurally_equal(&nl, &parsed));
        assert!(parsed.validate().is_ok());
    }

    #[test]
    fn writer_emits_expected_syntax() {
        let text = write_verilog(&sample());
        assert!(text.contains("module top (a, b, q);"));
        assert!(text.contains("AND2 u1 (.A(a), .B(b), .Y(w1));"));
        assert!(text.contains("DFF u2 (.D(w1), .Q(q));"));
        assert!(text.ends_with("endmodule\n"));
    }

    #[test]
    fn parse_error_reports_line() {
        let bad = "module x (a);\n  input a;\n  AND2 u1 u2 (.A(a));\nendmodule\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn multiline_instance_parses() {
        let text =
            "module m (a, y);\n input a;\n output y;\n BUF u1 (.A(a),\n   .Y(y));\nendmodule\n";
        let nl = parse_verilog(text, &[]).unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.gate(crate::netlist::GateId(0)).cell, "BUF");
    }

    #[test]
    fn comments_are_stripped() {
        let text = "// header\nmodule m (a, y); // ports\n input a;\n output y;\n BUF u1 (.A(a), .Y(y));\nendmodule\n";
        let nl = parse_verilog(text, &[]).unwrap();
        assert_eq!(nl.name, "m");
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn truncated_statement_is_parse_error() {
        // The final instance statement is missing its terminator.
        let bad = "module m (a, y);\n input a;\n output y;\n BUF u1 (.A(a), .Y(y)\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn missing_endmodule_is_parse_error() {
        let bad = "module m (a, y);\n input a;\n output y;\n BUF u1 (.A(a), .Y(y));\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
    }

    #[test]
    fn duplicate_input_is_parse_error() {
        let bad = "module m (a, a);\n input a, a;\nendmodule\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn doubly_driven_net_is_parse_error() {
        let bad = "module m (a, y);\n input a;\n output y;\n BUF u1 (.A(a), .Y(y));\n BUF u2 (.A(a), .Y(y));\nendmodule\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 5, .. }), "{err}");
    }

    #[test]
    fn undriven_output_fails_validation() {
        let bad = "module m (a, y);\n input a;\n output y;\nendmodule\n";
        let err = parse_verilog(bad, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::NoDriver { .. }), "{err}");
    }

    #[test]
    fn structural_equality_detects_difference() {
        let a = sample();
        let mut b = sample();
        let x = b.add_net("x");
        let w = b.net_by_name("w1").unwrap();
        b.add_gate("u3", "INV", GateKind::Comb, vec![w], vec![x]);
        assert!(!structurally_equal(&a, &b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::netlist::{GateKind, Netlist};

    /// Any randomly wired netlist survives the Verilog round trip.
    #[test]
    fn verilog_round_trips_random_netlists() {
        secflow_testkit::prop_check!(cases: 32, seed: 0x7E11_0001, |g| {
            let n_inputs = g.random_range(1..6usize);
            let gates = g.vec_with(1..30, |g| {
                (
                    g.random_range(0..6u8),
                    g.random::<u16>(),
                    g.random::<u16>(),
                    g.random::<u16>(),
                    g.random::<bool>(),
                )
            });
            let mut nl = Netlist::new("rand");
            let mut nets: Vec<_> = (0..n_inputs)
                .map(|i| nl.add_input(format!("in{i}")))
                .collect();
            for (gi, (cell_pick, a, b, c, seq)) in gates.iter().enumerate() {
                let out = nl.add_net(format!("n{gi}"));
                let pick = |v: u16, nets: &Vec<_>| nets[v as usize % nets.len()];
                if *seq {
                    nl.add_gate(
                        format!("r{gi}"),
                        "DFF",
                        GateKind::Seq,
                        vec![pick(*a, &nets)],
                        vec![out],
                    );
                } else {
                    let (cell, n_in) = match cell_pick % 5 {
                        0 => ("INV", 1),
                        1 => ("NAND2", 2),
                        2 => ("NOR2", 2),
                        3 => ("AOI21", 3),
                        _ => ("NAND4", 4),
                    };
                    let srcs = [*a, *b, *c, a ^ b];
                    let ins = (0..n_in).map(|i| pick(srcs[i], &nets)).collect();
                    nl.add_gate(format!("g{gi}"), cell, GateKind::Comb, ins, vec![out]);
                }
                nets.push(out);
            }
            nl.mark_output(*nets.last().expect("nets"));
            assert!(nl.validate().is_ok());

            let text = write_verilog(&nl);
            let parsed = parse_verilog(&text, &["DFF"]).expect("parse");
            assert!(structurally_equal(&nl, &parsed));
            assert!(parsed.validate().is_ok());
        });
    }
}
