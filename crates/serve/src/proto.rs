//! The job-server wire protocol.
//!
//! Transport: length-prefixed frames — a 4-byte big-endian `u32`
//! length followed by that many bytes — over a Unix-domain or TCP
//! stream. One request frame (a JSON object) yields exactly **two**
//! response frames:
//!
//! 1. the **envelope**: a JSON object with `ok`, per-job `serve.*`
//!    metrics (cache hits/misses, queue depth, wall time) and, on
//!    failure, the structured error with its stage exit code;
//! 2. the **payload**: the job's deterministic result bytes.
//!
//! The split is what keeps the cache contract checkable: the payload
//! of a warm resubmission is byte-identical to the cold run (the CI
//! gate `cmp`s it), while the envelope is free to carry
//! run-dependent metrics. The `secflow submit` CLI prints the payload
//! to stdout and the envelope to stderr, mirroring the workspace's
//! stdout-determinism convention.

use std::collections::HashSet;
use std::fmt;
use std::io::{self, Read, Write};

use secflow_core::{DecomposeStyle, FlowOptions};
use secflow_sim::SimConfig;

use crate::value::Value;

/// Upper bound on a frame body; a length above this is a protocol
/// error, not an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects bodies over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", data.len()),
        ));
    }
    w.write_all(&(data.len() as u32).to_be_bytes())?;
    w.write_all(data)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; a length prefix over [`MAX_FRAME`] is
/// reported as `InvalidData` without allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// A malformed or unsupported request. Reported to the client with
/// usage exit code 2 (the same code the CLIs use for option errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError(pub String);

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RequestError {}

fn bad(msg: impl Into<String>) -> RequestError {
    RequestError(msg.into())
}

/// Which attack analyses a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Difference-of-means DPA (Fig. 6).
    Dpa,
    /// Pearson-correlation CPA.
    Cpa,
}

impl AttackKind {
    /// Stable name used in requests and payloads.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Dpa => "dpa",
            AttackKind::Cpa => "cpa",
        }
    }
}

/// How campaign traces flow from the simulator to the attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePath {
    /// Materialize the full trace set (cached as a stage artifact,
    /// O(traces × points) memory).
    Materialize,
    /// Stream simulator blocks straight into one-pass accumulators
    /// (O(points × guesses) memory; no trace-set artifact). Results
    /// are byte-identical to the materialized path.
    Streaming,
}

impl TracePath {
    /// Stable name used in requests.
    pub fn name(self) -> &'static str {
        match self {
            TracePath::Materialize => "materialize",
            TracePath::Streaming => "streaming",
        }
    }
}

/// A measurement campaign + attack job on the built-in Fig. 4 DES
/// module.
#[derive(Debug, Clone)]
pub struct CampaignRequest {
    /// Secure (WDDL) implementation, or the regular reference one.
    pub secure: bool,
    /// Which attack to run on the collected traces.
    pub attack: AttackKind,
    /// Materialized trace set or fused streaming accumulation.
    pub trace_path: TracePath,
    /// Run the MTD scan in addition to the full-trace attack.
    pub mtd: bool,
    /// Number of encryptions.
    pub n: usize,
    /// Plaintext-stream seed.
    pub seed: u64,
    /// The secret key under attack (0–63).
    pub key: u8,
    /// Flow options for building the implementation.
    pub opts: FlowOptions,
    /// Simulation configuration for the campaign.
    pub cfg: SimConfig,
}

/// A flow job: run the regular or secure backend on submitted
/// structural Verilog.
#[derive(Debug, Clone)]
pub struct FlowRequest {
    /// Secure flow or regular reference flow.
    pub secure: bool,
    /// The netlist text (the CLI's `rtl.v` contents). Hashing uses
    /// these exact bytes: any one-byte edit is a different job.
    pub netlist: String,
    /// Flow options.
    pub opts: FlowOptions,
}

/// A parsed job request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a flow backend on submitted Verilog.
    Flow(FlowRequest),
    /// Build the DES module, collect traces, attack.
    Campaign(CampaignRequest),
    /// Cache and job-count statistics.
    Stats,
    /// Acknowledge, then stop accepting connections.
    Shutdown,
}

fn known_keys(obj: &Value, allowed: &[&str], ctx: &str) -> Result<(), RequestError> {
    if let Value::Obj(m) = obj {
        let allow: HashSet<&str> = allowed.iter().copied().collect();
        for k in m.keys() {
            if !allow.contains(k.as_str()) {
                return Err(bad(format!("unknown {ctx} field `{k}`")));
            }
        }
    }
    Ok(())
}

fn get_u64(obj: &Value, key: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_f64(obj: &Value, key: &str) -> Result<Option<f64>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a number"))),
    }
}

fn get_bool(obj: &Value, key: &str) -> Result<Option<bool>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a boolean"))),
    }
}

fn get_str<'v>(obj: &'v Value, key: &str) -> Result<Option<&'v str>, RequestError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a string"))),
    }
}

/// Applies the request's `options` object onto [`FlowOptions`]
/// defaults. Field names mirror the struct; unknown names are
/// rejected so typos fail loudly instead of silently running with
/// defaults.
fn parse_flow_options(obj: &Value) -> Result<FlowOptions, RequestError> {
    let mut opts = FlowOptions::default();
    let Some(o) = obj.get("options") else {
        return Ok(opts);
    };
    if !matches!(o, Value::Obj(_)) {
        return Err(bad("`options` must be an object"));
    }
    known_keys(
        o,
        &[
            "fill_factor",
            "aspect_ratio",
            "anneal_moves_per_gate",
            "place_restarts",
            "seed",
            "route_max_iterations",
            "route_layers",
            "decompose_style",
            "verify",
            "bdd_gate_limit",
            "sim_backend",
        ],
        "options",
    )?;
    if let Some(v) = get_f64(o, "fill_factor")? {
        opts.fill_factor = v;
    }
    if let Some(v) = get_f64(o, "aspect_ratio")? {
        opts.aspect_ratio = v;
    }
    if let Some(v) = get_u64(o, "anneal_moves_per_gate")? {
        opts.anneal_moves_per_gate = v as usize;
    }
    if let Some(v) = get_u64(o, "place_restarts")? {
        if v == 0 {
            return Err(bad("`place_restarts` must be at least 1"));
        }
        opts.place_restarts = v as usize;
    }
    if let Some(v) = get_u64(o, "seed")? {
        opts.seed = v;
    }
    if let Some(v) = get_u64(o, "route_max_iterations")? {
        opts.route.max_iterations = v as usize;
    }
    if let Some(v) = get_u64(o, "route_layers")? {
        opts.route.layers =
            u8::try_from(v).map_err(|_| bad("`route_layers` out of range"))?;
    }
    if let Some(v) = get_str(o, "decompose_style")? {
        opts.decompose_style = match v {
            "dense" => DecomposeStyle::Dense,
            "spaced" => DecomposeStyle::Spaced,
            "shielded" => DecomposeStyle::Shielded,
            other => {
                return Err(bad(format!(
                    "`decompose_style` must be dense|spaced|shielded, got `{other}`"
                )))
            }
        };
    }
    if let Some(v) = get_bool(o, "verify")? {
        opts.verify = v;
    }
    if let Some(v) = get_u64(o, "bdd_gate_limit")? {
        opts.bdd_gate_limit = v as usize;
    }
    if let Some(v) = get_str(o, "sim_backend")? {
        opts.sim_backend = v
            .parse()
            .map_err(|_| bad("`sim_backend` must be `event` or `bitslice`"))?;
    }
    Ok(opts)
}

/// Applies the request's `sim` object onto the paper's default
/// [`SimConfig`].
fn parse_sim_config(obj: &Value) -> Result<SimConfig, RequestError> {
    let mut cfg = SimConfig::default();
    let Some(o) = obj.get("sim") else {
        return Ok(cfg);
    };
    if !matches!(o, Value::Obj(_)) {
        return Err(bad("`sim` must be an object"));
    }
    known_keys(
        o,
        &[
            "period_ps",
            "samples_per_cycle",
            "noise_sigma",
            "noise_seed",
            "precharge_fraction",
            "record_waveform",
        ],
        "sim",
    )?;
    if let Some(v) = get_u64(o, "period_ps")? {
        cfg.period_ps = v;
    }
    if let Some(v) = get_u64(o, "samples_per_cycle")? {
        if v == 0 {
            return Err(bad("`samples_per_cycle` must be positive"));
        }
        cfg.samples_per_cycle = v as usize;
    }
    if let Some(v) = get_f64(o, "noise_sigma")? {
        cfg.noise_sigma = v;
    }
    if let Some(v) = get_u64(o, "noise_seed")? {
        cfg.noise_seed = v;
    }
    if let Some(v) = get_f64(o, "precharge_fraction")? {
        cfg.precharge_fraction = v;
    }
    if let Some(v) = get_bool(o, "record_waveform")? {
        cfg.record_waveform = v;
    }
    Ok(cfg)
}

fn parse_implementation(obj: &Value) -> Result<bool, RequestError> {
    match get_str(obj, "implementation")? {
        None | Some("secure") => Ok(true),
        Some("regular") => Ok(false),
        Some(other) => Err(bad(format!(
            "`implementation` must be secure|regular, got `{other}`"
        ))),
    }
}

impl Request {
    /// Parses and validates a request frame.
    ///
    /// Backend/config combinations are validated here — at
    /// option-validation time — so e.g. `record_waveform` on the
    /// bit-sliced backend fails before the job is ever queued (see
    /// [`SimConfig::validate_backend`]).
    ///
    /// # Errors
    ///
    /// [`RequestError`] on malformed JSON, unknown fields or jobs,
    /// out-of-range values, or unsupported option combinations.
    pub fn parse(frame: &[u8]) -> Result<Request, RequestError> {
        let text = std::str::from_utf8(frame).map_err(|_| bad("request is not UTF-8"))?;
        let v = Value::parse(text).map_err(|e| bad(e.to_string()))?;
        if !matches!(v, Value::Obj(_)) {
            return Err(bad("request must be a JSON object"));
        }
        let job = get_str(&v, "job")?.ok_or_else(|| bad("missing `job` field"))?;
        match job {
            "stats" => {
                known_keys(&v, &["job"], "request")?;
                Ok(Request::Stats)
            }
            "shutdown" => {
                known_keys(&v, &["job"], "request")?;
                Ok(Request::Shutdown)
            }
            "flow" => {
                known_keys(
                    &v,
                    &["job", "implementation", "netlist", "options"],
                    "request",
                )?;
                let netlist = get_str(&v, "netlist")?
                    .ok_or_else(|| bad("flow job requires a `netlist` field"))?
                    .to_string();
                Ok(Request::Flow(FlowRequest {
                    secure: parse_implementation(&v)?,
                    netlist,
                    opts: parse_flow_options(&v)?,
                }))
            }
            "campaign" | "attack" => {
                known_keys(
                    &v,
                    &[
                        "job",
                        "implementation",
                        "attack",
                        "trace_path",
                        "n",
                        "seed",
                        "key",
                        "options",
                        "sim",
                    ],
                    "request",
                )?;
                let attack = match get_str(&v, "attack")? {
                    None | Some("dpa") => AttackKind::Dpa,
                    Some("cpa") => AttackKind::Cpa,
                    Some(other) => {
                        return Err(bad(format!("`attack` must be dpa|cpa, got `{other}`")))
                    }
                };
                let trace_path = match get_str(&v, "trace_path")? {
                    None | Some("materialize") => TracePath::Materialize,
                    Some("streaming") => TracePath::Streaming,
                    Some(other) => {
                        return Err(bad(format!(
                            "`trace_path` must be materialize|streaming, got `{other}`"
                        )))
                    }
                };
                let n = get_u64(&v, "n")?.unwrap_or(2000) as usize;
                if n == 0 {
                    return Err(bad("`n` must be at least 1"));
                }
                let key = get_u64(&v, "key")?.unwrap_or(u64::from(
                    secflow_crypto::dpa_module::PAPER_KEY,
                ));
                if key >= 64 {
                    return Err(bad("`key` must be in 0..64"));
                }
                let opts = parse_flow_options(&v)?;
                let cfg = parse_sim_config(&v)?;
                // Satellite-2 contract: unsupported backend/config
                // combinations die here, not mid-campaign.
                cfg.validate_backend(opts.sim_backend)
                    .map_err(|e| bad(e.to_string()))?;
                Ok(Request::Campaign(CampaignRequest {
                    secure: parse_implementation(&v)?,
                    attack,
                    trace_path,
                    mtd: job == "campaign",
                    n,
                    seed: get_u64(&v, "seed")?.unwrap_or(1),
                    key: key as u8,
                    opts,
                    cfg,
                }))
            }
            other => Err(bad(format!(
                "unknown job `{other}` (expected flow|campaign|attack|stats|shutdown)"
            ))),
        }
    }
}

/// Renders a parsed [`Value`] back to canonical JSON: object keys
/// sorted (`Value::Obj` is a `BTreeMap`), no whitespace, shortest
/// round-trip float formatting. Two requests that parse to the same
/// value — regardless of field order or whitespace — render to the
/// same bytes, which is what the response cache hashes.
pub fn canonical_json(v: &Value) -> String {
    let mut out = String::new();
    render(v, &mut out);
    out
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => {
            out.push('"');
            out.push_str(&secflow_obs::json::escape(s));
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&secflow_obs::json::escape(k));
                out.push_str("\":");
                render(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // EOF
    }

    #[test]
    fn oversized_frame_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn campaign_request_parses_with_defaults() {
        let r = Request::parse(br#"{"job":"campaign","n":150}"#).unwrap();
        match r {
            Request::Campaign(c) => {
                assert!(c.secure);
                assert!(c.mtd);
                assert_eq!(c.attack, AttackKind::Dpa);
                assert_eq!(c.n, 150);
                assert_eq!(c.seed, 1);
                assert_eq!(c.key, secflow_crypto::dpa_module::PAPER_KEY);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_and_jobs_are_rejected() {
        assert!(Request::parse(br#"{"job":"campaign","bogus":1}"#).is_err());
        assert!(Request::parse(br#"{"job":"frobnicate"}"#).is_err());
        assert!(Request::parse(br#"{"job":"campaign","options":{"typo_field":1}}"#).is_err());
        assert!(Request::parse(br#"{"job":"flow"}"#).is_err()); // no netlist
    }

    #[test]
    fn waveform_on_bitslice_is_rejected_at_request_validation() {
        let e = Request::parse(
            br#"{"job":"campaign","options":{"sim_backend":"bitslice"},"sim":{"record_waveform":true}}"#,
        )
        .unwrap_err();
        assert!(e.0.contains("record_waveform"), "{e}");
        // Same combination on the event backend is fine.
        assert!(Request::parse(
            br#"{"job":"campaign","options":{"sim_backend":"event"},"sim":{"record_waveform":true}}"#,
        )
        .is_ok());
    }

    #[test]
    fn canonical_json_is_order_and_whitespace_insensitive() {
        let a = Value::parse(r#"{"b": 2, "a": {"y": 1.5, "x": [1, 2]}}"#).unwrap();
        let b = Value::parse(r#"{"a":{"x":[1,2],"y":1.5},"b":2}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_json(&a), r#"{"a":{"x":[1,2],"y":1.5},"b":2}"#);
    }
}
