//! Content hashing for the artifact cache: SipHash-2-4 implemented
//! in-repo (the workspace is hermetic — no registry crates), extended
//! to a 128-bit [`ContentHash`] by hashing the same bytes under two
//! fixed, distinct keys.
//!
//! SipHash was chosen over FNV for its far better diffusion: cache
//! keys must change for *any* single-field option edit or one-byte
//! netlist edit (pinned by `tests/cache_key.rs`), and SipHash-2-4's
//! avalanche behaviour makes accidental collisions between the short,
//! highly structured canonical encodings vanishingly unlikely. The
//! keys are fixed constants — the cache is a determinism aid, not a
//! DoS-hardened hash table, and stable hashes across processes are
//! exactly what a persistent on-disk tier needs.

/// One lane of the 128-bit content hash: SipHash-2-4 over `data` with
/// key `(k0, k1)`. Reference: Aumasson & Bernstein, "SipHash: a fast
/// short-input PRF".
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rest = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, &b) in rest.iter().enumerate() {
        last |= u64::from(b) << (8 * i);
    }
    v3 ^= last;
    sipround!();
    sipround!();
    v0 ^= last;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Fixed keys for the two hash lanes. Arbitrary distinct constants
/// (`sha256("secflow-serve")` prefix bytes); changing them invalidates
/// every on-disk cache, so they are part of the cache format.
const LANE_A: (u64, u64) = (0x7365_6366_6c6f_7731, 0x6172_7469_6661_6374);
const LANE_B: (u64, u64) = (0x7365_6366_6c6f_7732, 0x6361_6368_6530_3031);

/// A 128-bit content hash: two independent SipHash-2-4 lanes over the
/// same bytes. 64 bits would already make collisions unlikely; 128
/// makes them irrelevant for a cache that may persist across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u64, pub u64);

impl ContentHash {
    /// Hashes `data` into both lanes.
    pub fn of(data: &[u8]) -> ContentHash {
        ContentHash(
            siphash24(LANE_A.0, LANE_A.1, data),
            siphash24(LANE_B.0, LANE_B.1, data),
        )
    }

    /// Lowercase 32-digit hex form — the on-disk cache file stem.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors (reference implementation's
    /// `vectors_sip64`): key 000102...0f, messages 00, 0001, 000102...
    #[test]
    fn siphash24_matches_reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let expected: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let msg: Vec<u8> = (0u8..8).collect();
        for (len, &want) in expected.iter().enumerate() {
            assert_eq!(
                siphash24(k0, k1, &msg[..len]),
                want,
                "vector for message length {len}"
            );
        }
    }

    #[test]
    fn lanes_are_independent() {
        let h = ContentHash::of(b"secflow");
        assert_ne!(h.0, h.1);
        assert_ne!(ContentHash::of(b"secflow"), ContentHash::of(b"secfloW"));
        assert_eq!(ContentHash::of(b"secflow"), ContentHash::of(b"secflow"));
    }

    #[test]
    fn hex_is_32_digits() {
        let h = ContentHash(1, 0x0a);
        assert_eq!(h.to_hex(), format!("{:016x}{:016x}", 1, 10));
        assert_eq!(h.to_hex().len(), 32);
        assert_eq!(h.to_string(), h.to_hex());
    }
}
