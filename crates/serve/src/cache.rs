//! The content-addressed artifact store: an in-memory LRU tier of
//! typed artifacts (`Arc<dyn Any>` under 128-bit content keys) with an
//! optional on-disk tier for byte artifacts.
//!
//! * **Hits are byte-identical to cold runs by construction** — a hit
//!   returns the same immutable `Arc` the cold run produced, and every
//!   derivation downstream of it is deterministic (the workspace's
//!   determinism contract).
//! * **Eviction is LRU** over an approximate byte size, bounded by the
//!   server's `--cache-bytes`. Typed artifacts are dropped on
//!   eviction; byte artifacts (rendered response payloads) are spilled
//!   to the disk tier when one is configured, so a long-running server
//!   keeps warm responses beyond its memory budget.
//! * **Counters** (`serve.cache.{hit,miss,evict}`) go both to local
//!   atomics (always, for response envelopes) and to `secflow-obs`
//!   when a session is armed.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use secflow_obs as obs;

use crate::hash::ContentHash;

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    seq: u64,
}

struct Inner {
    map: HashMap<ContentHash, Entry>,
    /// LRU order: recency sequence → key. `BTreeMap` gives O(log n)
    /// oldest-first eviction without an intrusive list.
    order: BTreeMap<u64, ContentHash>,
    total: usize,
    next_seq: u64,
}

/// Point-in-time cache statistics for response envelopes and the
/// `stats` job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evicts: u64,
    /// Live in-memory entries.
    pub entries: usize,
    /// Approximate bytes held in memory.
    pub bytes: usize,
}

/// The in-memory + on-disk artifact store.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity: usize,
    disk_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicts: AtomicU64,
}

impl ArtifactCache {
    /// A cache bounded at `capacity` approximate bytes, spilling byte
    /// artifacts into `disk_dir` (created on first use) when set.
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                total: 0,
                next_seq: 0,
            }),
            capacity,
            disk_dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicts: AtomicU64::new(0),
        }
    }

    fn disk_path(&self, key: ContentHash) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{key}.bin")))
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        obs::add(obs::Counter::ServeCacheHits, 1);
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::add(obs::Counter::ServeCacheMisses, 1);
    }

    /// Looks up a typed artifact, refreshing its recency on a hit.
    /// A present entry of the wrong type counts as a miss (it cannot
    /// happen under stage-tagged keys, but must not panic).
    pub fn get<T: Any + Send + Sync>(&self, key: ContentHash) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let found = match inner.map.get(&key) {
            Some(e) => Arc::downcast::<T>(Arc::clone(&e.value)).ok(),
            None => None,
        };
        match found {
            Some(v) => {
                let seq = inner.next_seq;
                inner.next_seq += 1;
                // The entry is still present — the lock is held since
                // the lookup above — but a hit without the recency
                // refresh is still correct, so avoid unwrapping.
                if let Some(e) = inner.map.get_mut(&key) {
                    let old = std::mem::replace(&mut e.seq, seq);
                    inner.order.remove(&old);
                    inner.order.insert(seq, key);
                }
                drop(inner);
                self.record_hit();
                Some(v)
            }
            None => {
                drop(inner);
                self.record_miss();
                None
            }
        }
    }

    /// Inserts a typed artifact with an approximate byte size and
    /// evicts LRU entries until the store fits the budget again. An
    /// artifact larger than the whole budget is still served to the
    /// current caller but not retained.
    pub fn put<T: Any + Send + Sync>(&self, key: ContentHash, value: Arc<T>, bytes: usize) {
        if bytes > self.capacity {
            return;
        }
        let mut spilled: Vec<(ContentHash, Arc<dyn Any + Send + Sync>)> = Vec::new();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let seq = inner.next_seq;
            inner.next_seq += 1;
            if let Some(old) = inner.map.insert(
                key,
                Entry {
                    value,
                    bytes,
                    seq,
                },
            ) {
                inner.order.remove(&old.seq);
                inner.total -= old.bytes;
            }
            inner.order.insert(seq, key);
            inner.total += bytes;
            while inner.total > self.capacity {
                // `order` mirrors `map`, so a victim always exists
                // while `total` is positive; the fallbacks below keep
                // the loop panic-free and terminating regardless
                // (each iteration shrinks `order`).
                let Some((&oldest, &victim)) = inner.order.iter().next() else {
                    break;
                };
                inner.order.remove(&oldest);
                let Some(entry) = inner.map.remove(&victim) else {
                    continue;
                };
                inner.total -= entry.bytes;
                self.evicts.fetch_add(1, Ordering::Relaxed);
                obs::add(obs::Counter::ServeCacheEvicts, 1);
                if self.disk_dir.is_some() && entry.value.is::<Vec<u8>>() {
                    spilled.push((victim, entry.value));
                }
            }
        }
        // Spill evicted byte artifacts outside the lock.
        for (k, v) in spilled {
            if let (Some(path), Some(data)) = (self.disk_path(k), v.downcast_ref::<Vec<u8>>()) {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::write(&path, data);
            }
        }
    }

    /// `get` or build-and-`put`: the staged-pipeline primitive. The
    /// builder runs outside the lock; concurrent same-key misses may
    /// build twice (both results are identical by determinism, last
    /// insert wins).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; nothing is cached on failure.
    pub fn get_or_try<T, E, B, S>(
        &self,
        key: ContentHash,
        build: B,
        size_of: S,
    ) -> Result<Arc<T>, E>
    where
        T: Any + Send + Sync,
        B: FnOnce() -> Result<T, E>,
        S: FnOnce(&T) -> usize,
    {
        if let Some(v) = self.get::<T>(key) {
            return Ok(v);
        }
        let built = Arc::new(build()?);
        let bytes = size_of(&built);
        self.put(key, Arc::clone(&built), bytes);
        Ok(built)
    }

    /// Looks up a byte artifact: memory first, then the disk tier.
    /// A disk hit is promoted back into memory.
    pub fn get_bytes(&self, key: ContentHash) -> Option<Arc<Vec<u8>>> {
        if let Some(v) = self.get::<Vec<u8>>(key) {
            return Some(v);
        }
        let path = self.disk_path(key)?;
        let data = std::fs::read(&path).ok()?;
        // The memory-tier miss above stays counted; the disk restore
        // is recorded as a hit of its own, so a disk round-trip shows
        // up as miss+hit while a pure cold lookup is miss-only.
        self.record_hit();
        let arc = Arc::new(data);
        let bytes = arc.len();
        self.put(key, Arc::clone(&arc), bytes);
        Some(arc)
    }

    /// Stores a byte artifact in memory (and eventually on disk via
    /// LRU spill).
    pub fn put_bytes(&self, key: ContentHash, data: Arc<Vec<u8>>) {
        let bytes = data.len();
        self.put(key, data, bytes);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicts: self.evicts.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentHash {
        ContentHash(n, !n)
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = ArtifactCache::new(1 << 20, None);
        let v = Arc::new(vec![1u8, 2, 3]);
        cache.put(key(1), Arc::clone(&v), 3);
        let got = cache.get::<Vec<u8>>(key(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &v));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn wrong_type_is_a_miss_not_a_panic() {
        let cache = ArtifactCache::new(1 << 20, None);
        cache.put(key(2), Arc::new(42u64), 8);
        assert!(cache.get::<String>(key(2)).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_first_and_recency_protects() {
        let cache = ArtifactCache::new(30, None);
        cache.put(key(1), Arc::new(vec![0u8; 10]), 10);
        cache.put(key(2), Arc::new(vec![0u8; 10]), 10);
        cache.put(key(3), Arc::new(vec![0u8; 10]), 10);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get::<Vec<u8>>(key(1)).is_some());
        cache.put(key(4), Arc::new(vec![0u8; 10]), 10);
        assert!(cache.get::<Vec<u8>>(key(2)).is_none(), "victim survived");
        assert!(cache.get::<Vec<u8>>(key(1)).is_some());
        assert!(cache.get::<Vec<u8>>(key(3)).is_some());
        assert!(cache.get::<Vec<u8>>(key(4)).is_some());
        let s = cache.stats();
        assert_eq!(s.evicts, 1);
        assert_eq!(s.entries, 3);
        assert_eq!(s.bytes, 30);
    }

    #[test]
    fn oversized_artifact_is_not_retained() {
        let cache = ArtifactCache::new(10, None);
        cache.put(key(9), Arc::new(vec![0u8; 100]), 100);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn get_or_try_builds_once_then_hits() {
        let cache = ArtifactCache::new(1 << 20, None);
        let mut builds = 0;
        for _ in 0..3 {
            let v: Arc<u64> = cache
                .get_or_try(key(7), || -> Result<u64, ()> {
                    builds += 1;
                    Ok(99)
                }, |_| 8)
                .unwrap();
            assert_eq!(*v, 99);
        }
        assert_eq!(builds, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn disk_tier_spills_and_restores_bytes() {
        let dir = std::env::temp_dir().join(format!(
            "secflow_serve_cache_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(16, Some(dir.clone()));
        cache.put_bytes(key(1), Arc::new(b"payload-one!".to_vec())); // 12 bytes
        cache.put_bytes(key(2), Arc::new(b"payload-two!".to_vec())); // evicts 1 → disk
        assert_eq!(cache.stats().evicts, 1);
        let restored = cache.get_bytes(key(1)).expect("disk tier restore");
        assert_eq!(restored.as_slice(), b"payload-one!");
        // The restore displaced entry 2 from memory; it spilled too.
        let two = cache.get_bytes(key(2)).expect("second spill restore");
        assert_eq!(two.as_slice(), b"payload-two!");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
