//! The job server: accept loop, bounded job queue, runner pool.
//!
//! One acceptor thread polls a non-blocking listener (Unix-domain
//! socket by default, TCP via `--listen`) and enqueues connections;
//! `--job-workers` runner threads drain the queue, each reading the
//! request frame, executing it on the shared [`Engine`], and writing
//! the two response frames (envelope, payload). Flow and campaign
//! stages already parallelise internally through `secflow-exec`, so
//! one runner saturates a machine; more runners trade per-job latency
//! for concurrent small jobs.
//!
//! A `shutdown` job acknowledges, then flips the stop flag: the
//! acceptor closes, queued jobs drain, runners exit, and (for Unix
//! sockets) the socket file is unlinked.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use secflow_obs as obs;

use crate::engine::{render_envelope, Engine};
use crate::proto::{read_frame, write_frame, Request};
use crate::value::Value;

/// Where the server listens (or a client connects).
#[derive(Debug, Clone)]
pub enum Bind {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7457`.
    Tcp(String),
}

/// One accepted connection, unified over both transports.
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl Stream {
    fn configure(&self) -> io::Result<()> {
        // Accepted sockets must block (the listener is non-blocking),
        // but a dead client must not pin a runner forever.
        let timeout = Some(Duration::from_secs(30));
        match self {
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
        }
    }
}

/// Connects to a server at `bind`.
///
/// # Errors
///
/// Propagates the underlying connect error.
pub fn connect(bind: &Bind) -> io::Result<Stream> {
    match bind {
        Bind::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        Bind::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(bind: &Bind) -> io::Result<Listener> {
        match bind {
            Bind::Unix(path) => {
                // A stale socket file from a crashed server would make
                // bind fail; refuse only if something is listening.
                if path.exists() && UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("{} already has a live server", path.display()),
                    ));
                }
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.clone()))
            }
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address.
    pub bind: Bind,
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// On-disk spill directory for byte artifacts.
    pub cache_dir: Option<PathBuf>,
    /// Runner threads draining the job queue.
    pub job_workers: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            bind: Bind::Unix(PathBuf::from("secflow.sock")),
            cache_bytes: 256 << 20,
            cache_dir: None,
            job_workers: 1,
        }
    }
}

struct Queue {
    jobs: Mutex<Vec<Stream>>,
    ready: Condvar,
    stop: AtomicBool,
    depth_peak: AtomicUsize,
}

impl Queue {
    fn push(&self, s: Stream) {
        let depth = {
            let mut q = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            q.push(s);
            q.len()
        };
        self.depth_peak.fetch_max(depth, Ordering::Relaxed);
        obs::gauge_max(obs::Gauge::ServeQueuePeak, depth as u64);
        self.ready.notify_one();
    }

    /// Pops the oldest queued connection, or `None` once stopped and
    /// drained. Returns the queue depth left behind.
    fn pop(&self) -> Option<(Stream, usize)> {
        let mut q = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !q.is_empty() {
                let s = q.remove(0);
                return Some((s, q.len()));
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }
}

fn handle_connection(engine: &Engine, queue: &Queue, mut stream: Stream, depth: usize) {
    if stream.configure().is_err() {
        return;
    }
    let frame = match read_frame(&mut stream) {
        Ok(f) => f,
        Err(_) => return, // client went away before sending a request
    };
    let parsed = Request::parse(&frame);
    let canonical = std::str::from_utf8(&frame)
        .ok()
        .and_then(|t| Value::parse(t).ok())
        .map(|v| crate::proto::canonical_json(&v))
        .unwrap_or_default();
    let before = engine.cache.stats();
    let result = match &parsed {
        Ok(req) => engine.execute(&canonical, req),
        Err(e) => Err(e.clone().into()),
    };
    let after = engine.cache.stats();
    let envelope = render_envelope(&result, before, after, depth);
    let payload: &[u8] = match &result {
        Ok(out) => &out.payload,
        Err(_) => b"",
    };
    let _ = write_frame(&mut stream, envelope.as_bytes())
        .and_then(|()| write_frame(&mut stream, payload));
    if matches!(parsed, Ok(Request::Shutdown)) {
        queue.stop.store(true, Ordering::SeqCst);
        queue.ready.notify_all();
    }
}

/// Runs the server until a `shutdown` job arrives.
///
/// # Errors
///
/// Returns the bind error if the listen address cannot be acquired,
/// or the spawn error if a worker thread cannot be started;
/// per-connection I/O errors are contained to their connection.
pub fn serve(opts: &ServerOptions) -> io::Result<()> {
    let listener = Listener::bind(&opts.bind)?;
    let engine = Arc::new(Engine::new(opts.cache_bytes, opts.cache_dir.clone()));
    let queue = Arc::new(Queue {
        jobs: Mutex::new(Vec::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
        depth_peak: AtomicUsize::new(0),
    });

    let workers = (0..opts.job_workers.max(1))
        .map(|i| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("secflow-serve-{i}"))
                .spawn(move || {
                    while let Some((stream, depth)) = queue.pop() {
                        handle_connection(&engine, &queue, stream, depth);
                    }
                })
        })
        .collect::<io::Result<Vec<_>>>()?;

    while !queue.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => queue.push(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("secflow serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    queue.ready.notify_all();
    for w in workers {
        let _ = w.join();
    }
    eprintln!(
        "secflow serve: shut down after {} jobs (cache: {:?})",
        engine.jobs(),
        engine.cache.stats()
    );
    Ok(())
}
