//! Cache-key derivation: canonical byte encodings of the option
//! structs and the stage-keyed content hash.
//!
//! A cached artifact is addressed by
//! `H(canonical input bytes ‖ canonical options bytes ‖ stage tag)`
//! where `H` is the 128-bit [`ContentHash`]. The encodings are
//! *canonical*: every field is emitted, in a fixed order, framed as
//! `name \0 length value`, floats as `f64::to_bits` (so `0.1 + 0.2`
//! artifacts can never alias `0.3` ones and keys are bit-stable across
//! platforms), and set-valued fields in sorted order. Any single-field
//! change therefore changes the key (`tests/cache_key.rs` pins this
//! property and a golden hash).
//!
//! Keys are deliberately coarse: each stage is keyed on the *whole*
//! option struct, not the subset of fields it reads. A `via_cost` edit
//! thus also misses on the placement artifact — a small amount of
//! redundant recompute, in exchange for a derivation that cannot
//! silently go stale when a stage grows a new option dependency.

use secflow_core::{DecomposeStyle, FlowOptions};
use secflow_sim::{SimBackend, SimConfig};

use crate::hash::ContentHash;

/// The cacheable artifacts of the flow-and-campaign pipeline, used as
/// the final tag of every cache key so two stages can never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheStage {
    /// Parsed (and validated) netlist from submitted Verilog text.
    Parse,
    /// Technology-mapped netlist of the built-in campaign design.
    Map,
    /// WDDL cell-substitution artifacts (fat + differential netlists).
    Substitute,
    /// Placement (of the mapped or fat netlist).
    Place,
    /// Routed design.
    Route,
    /// Decomposed differential design.
    Decompose,
    /// Extracted parasitics.
    Extract,
    /// Compiled simulation program (event or bit-sliced kernel).
    Program,
    /// Collected measurement campaign (trace set).
    Traces,
    /// Rendered response payload bytes for a whole request.
    Response,
}

impl CacheStage {
    /// Stable tag mixed into the cache key and shown in cache stats.
    pub fn name(self) -> &'static str {
        match self {
            CacheStage::Parse => "parse",
            CacheStage::Map => "map",
            CacheStage::Substitute => "substitute",
            CacheStage::Place => "place",
            CacheStage::Route => "route",
            CacheStage::Decompose => "decompose",
            CacheStage::Extract => "extract",
            CacheStage::Program => "program",
            CacheStage::Traces => "traces",
            CacheStage::Response => "response",
        }
    }
}

/// Canonical field framing: `name \0 u64-le(len) value-bytes`. The
/// name ends the previous frame unambiguously and makes the encoding
/// self-describing enough to debug with `xxd`.
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn frame(&mut self, name: &str, value: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.push(0);
        self.buf
            .extend_from_slice(&(value.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(value);
        self
    }

    /// Frames an unsigned integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.frame(name, &v.to_le_bytes())
    }

    /// Frames a signed integer field.
    pub fn i64(&mut self, name: &str, v: i64) -> &mut Self {
        self.frame(name, &v.to_le_bytes())
    }

    /// Frames an `f64` by its bit pattern.
    pub fn f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.frame(name, &v.to_bits().to_le_bytes())
    }

    /// Frames an `f32` by its bit pattern.
    pub fn f32(&mut self, name: &str, v: f32) -> &mut Self {
        self.frame(name, &v.to_bits().to_le_bytes())
    }

    /// Frames a boolean.
    pub fn bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.frame(name, &[u8::from(v)])
    }

    /// Frames a string field.
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        self.frame(name, v.as_bytes())
    }

    /// Frames raw bytes.
    pub fn bytes(&mut self, name: &str, v: &[u8]) -> &mut Self {
        self.frame(name, v)
    }

    /// The finished canonical byte string.
    pub fn build(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Enc {
    fn default() -> Self {
        Enc::new()
    }
}

/// Canonical bytes of a [`FlowOptions`]: every field (nested structs
/// flattened with dotted names), floats by bit pattern, the
/// `allowed_cells` set sorted.
pub fn flow_options_bytes(opts: &FlowOptions) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64("map.cut_size", u64::from(opts.map.cut_size))
        .u64("map.cuts_per_node", opts.map.cuts_per_node as u64);
    match &opts.map.allowed_cells {
        None => {
            e.bool("map.allowed_cells.some", false);
        }
        Some(cells) => {
            e.bool("map.allowed_cells.some", true);
            let mut sorted: Vec<&String> = cells.iter().collect();
            sorted.sort();
            for (i, c) in sorted.iter().enumerate() {
                e.str(&format!("map.allowed_cells.{i}"), c);
            }
        }
    };
    e.f64("fill_factor", opts.fill_factor)
        .f64("aspect_ratio", opts.aspect_ratio)
        .u64("anneal_moves_per_gate", opts.anneal_moves_per_gate as u64)
        .u64("place_restarts", opts.place_restarts as u64)
        .u64("seed", opts.seed)
        .u64("route.max_iterations", opts.route.max_iterations as u64)
        .f64("route.via_cost", opts.route.via_cost)
        .f32("route.history_increment", opts.route.history_increment)
        .u64("route.layers", u64::from(opts.route.layers))
        .f64("tech.r_ohm_per_track", opts.tech.r_ohm_per_track)
        .f64("tech.c_ground_ff_per_track", opts.tech.c_ground_ff_per_track)
        .f64(
            "tech.c_coupling_ff_per_track",
            opts.tech.c_coupling_ff_per_track,
        )
        .i64("tech.coupling_range", i64::from(opts.tech.coupling_range))
        .f64("tech.r_via_ohm", opts.tech.r_via_ohm)
        .f64("tech.c_via_ff", opts.tech.c_via_ff)
        .str(
            "decompose_style",
            match opts.decompose_style {
                DecomposeStyle::Dense => "dense",
                DecomposeStyle::Spaced => "spaced",
                DecomposeStyle::Shielded => "shielded",
            },
        )
        .bool("verify", opts.verify)
        .u64("bdd_gate_limit", opts.bdd_gate_limit as u64)
        .str(
            "sim_backend",
            match opts.sim_backend {
                SimBackend::Event => "event",
                SimBackend::Bitslice => "bitslice",
            },
        );
    e.build()
}

/// Canonical bytes of a [`SimConfig`].
pub fn sim_config_bytes(cfg: &SimConfig) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64("period_ps", cfg.period_ps)
        .u64("samples_per_cycle", cfg.samples_per_cycle as u64)
        .f64("vdd", cfg.vdd)
        .u64("clk2q_ps", cfg.clk2q_ps)
        .u64("input_delay_ps", cfg.input_delay_ps)
        .u64("crosstalk_window_ps", cfg.crosstalk_window_ps)
        .f64("noise_sigma", cfg.noise_sigma)
        .u64("noise_seed", cfg.noise_seed)
        .f64("precharge_fraction", cfg.precharge_fraction)
        .bool("record_waveform", cfg.record_waveform);
    e.build()
}

/// The cache key of one stage artifact:
/// `H(len(input) ‖ input ‖ len(opts) ‖ opts ‖ stage-tag)`. `input` is
/// the job's canonical input bytes (submitted netlist text, or a fixed
/// tag for the built-in campaign design); `opts` is a canonical
/// encoding from this module, extended with campaign parameters where
/// the stage needs them.
pub fn stage_key(input: &[u8], opts: &[u8], stage: CacheStage) -> ContentHash {
    let mut data =
        Vec::with_capacity(input.len() + opts.len() + stage.name().len() + 2 * 8);
    data.extend_from_slice(&(input.len() as u64).to_le_bytes());
    data.extend_from_slice(input);
    data.extend_from_slice(&(opts.len() as u64).to_le_bytes());
    data.extend_from_slice(opts);
    data.extend_from_slice(stage.name().as_bytes());
    ContentHash::of(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tag_separates_keys() {
        let opts = flow_options_bytes(&FlowOptions::default());
        let a = stage_key(b"x", &opts, CacheStage::Place);
        let b = stage_key(b"x", &opts, CacheStage::Route);
        assert_ne!(a, b);
    }

    #[test]
    fn framing_is_injective_at_boundaries() {
        // "ab" + "c" must not alias "a" + "bc".
        let mut e1 = Enc::new();
        e1.str("x", "ab").str("y", "c");
        let mut e2 = Enc::new();
        e2.str("x", "a").str("y", "bc");
        assert_ne!(e1.build(), e2.build());
    }

    #[test]
    fn float_bits_are_keyed() {
        let mut a = FlowOptions::default();
        a.fill_factor = 0.1 + 0.2;
        let mut b = FlowOptions::default();
        b.fill_factor = 0.3;
        assert_ne!(flow_options_bytes(&a), flow_options_bytes(&b));
    }
}
