//! A minimal JSON reader for job requests.
//!
//! The workspace's shared `secflow_obs::json` module is writer-only
//! (metrics exports, error reports); the job server also has to *read*
//! requests, so this module adds a small recursive-descent parser for
//! the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). It is not streaming — requests are a few
//! hundred bytes — and it rejects trailing garbage.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept in a `BTreeMap`: request
/// re-rendering must be canonical (sorted keys) so that two
/// differently-ordered but equal requests share one response cache
/// entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; request integers are small).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses `text` as a single JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with a byte offset on malformed input or
    /// trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON syntax error at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn want(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.want(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.want(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.want(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.want(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.at = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        // The scanned span is ASCII digits/sign/dot/exponent only, but
        // route the impossible failure through `ParseError` anyway.
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_request_shape() {
        let v = Value::parse(
            r#"{"job":"campaign","n":150,"noise":0.5,"opts":{"verify":true,"cells":["AND2","OR2"]},"x":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("job").and_then(Value::as_str), Some("campaign"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(150));
        assert_eq!(v.get("noise").and_then(Value::as_f64), Some(0.5));
        assert_eq!(
            v.get("opts").and_then(|o| o.get("verify")).and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::parse(r#""a\"b\\c\nd A 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd A \u{1f600}"));
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse(r#"{"a":}"#).is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("01a").is_err());
    }

    #[test]
    fn object_keys_are_sorted() {
        let v = Value::parse(r#"{"b":1,"a":2}"#).unwrap();
        if let Value::Obj(m) = &v {
            let keys: Vec<&String> = m.keys().collect();
            assert_eq!(keys, ["a", "b"]);
        } else {
            panic!("not an object");
        }
    }
}
