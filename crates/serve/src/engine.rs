//! Job execution over the content-addressed cache.
//!
//! The engine mirrors `secflow_core`'s staged flow sequence, but with
//! a cache lookup between every stage: parsed netlist → (substitute)
//! → placement → routing → (decompose) → extraction → compiled
//! simulation program → trace set → rendered response. Each artifact
//! is keyed by `H(input ‖ options ‖ stage)` (see [`crate::key`]), so
//! two jobs that share a prefix of the pipeline share the work: a
//! campaign resubmitted with a different `n` reuses everything up to
//! the compiled program, a `cpa` attack reuses the `dpa` job's trace
//! set, and an identical resubmission is answered from the response
//! cache without executing any stage at all.
//!
//! Responses are split payload/envelope (see [`crate::proto`]): the
//! payload rendered here contains only deterministic values — no
//! wall-clock times, no cache statistics — so a warm hit is
//! byte-identical to the cold run by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use secflow_cells::Library;
use secflow_core::{
    decompose_styled, run_regular_backend, run_secure_backend, substitute, FlowError, FlowReport,
    Substitution,
};
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::error::{AnalysisError, CampaignError, ANALYSIS_EXIT_CODE};
use secflow_dpa::harness::{
    analyze_trace_set, collect_des_analysis_streaming, collect_des_traces_with, AnalysisPlan,
    CampaignAnalysis, CampaignProgram, DesTarget, TraceSet,
};
use secflow_extract::{try_extract, Parasitics};
use secflow_netlist::{parse_verilog, Netlist};
use secflow_obs as obs;
use secflow_obs::json::{Arr, Obj};
use secflow_pnr::{place_best_of, route, GridPitch, PlaceOptions, PlacedDesign, RoutedDesign};
use secflow_sim::SimConfig;
use secflow_synth::map_design;

use crate::cache::{ArtifactCache, CacheStats};
use crate::key::{flow_options_bytes, sim_config_bytes, stage_key, CacheStage, Enc};
use crate::proto::{AttackKind, CampaignRequest, FlowRequest, Request, RequestError, TracePath};

/// A structured job failure: the `FlowError` taxonomy (stage name,
/// variant kind, detail, stage exit code 10–19) plus the `request`
/// pseudo-stage for protocol/validation errors (usage exit code 2).
#[derive(Debug, Clone)]
pub struct JobError {
    /// Originating stage name (`parse` … `sim`, or `request`).
    pub stage: String,
    /// Error variant name.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// The exit code a CLI run of the same job would have used.
    pub exit_code: i32,
}

impl From<FlowError> for JobError {
    fn from(e: FlowError) -> JobError {
        JobError {
            stage: e.stage().name().to_string(),
            kind: e.kind(),
            detail: e.to_string(),
            exit_code: e.exit_code(),
        }
    }
}

impl From<RequestError> for JobError {
    fn from(e: RequestError) -> JobError {
        JobError {
            stage: "request".to_string(),
            kind: "BadRequest".to_string(),
            detail: e.0,
            exit_code: 2,
        }
    }
}

impl From<AnalysisError> for JobError {
    fn from(e: AnalysisError) -> JobError {
        JobError {
            stage: "analysis".to_string(),
            kind: e.kind().to_string(),
            detail: e.to_string(),
            exit_code: ANALYSIS_EXIT_CODE,
        }
    }
}

impl From<CampaignError> for JobError {
    fn from(e: CampaignError) -> JobError {
        match e {
            CampaignError::Sim(e) => FlowError::Sim(e).into(),
            CampaignError::Analysis(e) => e.into(),
            CampaignError::Store(e) => JobError {
                stage: "analysis".to_string(),
                kind: "Store".to_string(),
                detail: e.to_string(),
                exit_code: ANALYSIS_EXIT_CODE,
            },
        }
    }
}

/// The outcome of one executed job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The deterministic result payload (second response frame).
    pub payload: Arc<Vec<u8>>,
    /// Whether the payload came straight from the response cache.
    pub cached_response: bool,
}

/// The job engine: the base library, the artifact cache, and job
/// counters. Shared (`&self`) across the server's worker threads.
pub struct Engine {
    lib: Library,
    /// The content-addressed artifact store.
    pub cache: ArtifactCache,
    jobs: AtomicU64,
}

/// Rough per-artifact sizes for the LRU budget. These are heuristics
/// — the cache bounds *approximate* memory, and uniform over-estimates
/// only make eviction slightly eager.
mod size {
    use super::*;

    pub fn netlist(nl: &Netlist) -> usize {
        nl.gate_count() * 128 + 4096
    }

    pub fn substitution(s: &Substitution) -> usize {
        netlist(&s.fat) + netlist(&s.differential) + s.pairs.len() * 64 + (64 << 10)
    }

    pub fn placed(p: &PlacedDesign) -> usize {
        p.cells.len() * 32 + (p.input_pads.len() + p.output_pads.len()) * 16 + 1024
    }

    pub fn routed(r: &RoutedDesign) -> usize {
        placed(&r.placed) + r.total_wirelength().unsigned_abs() as usize * 16 + 1024
    }

    pub fn parasitics(p: &Parasitics) -> usize {
        p.nets
            .iter()
            .map(|n| 32 + n.couplings.len() * 16)
            .sum::<usize>()
            + 1024
    }

    pub fn program(nl: &Netlist, cfg: &SimConfig) -> usize {
        nl.gate_count() * 256 + cfg.samples_per_cycle * 8 + (16 << 10)
    }

    pub fn traces(t: &TraceSet) -> usize {
        t.traces.len() * (t.samples_per_trace * 8 + 64) + 1024
    }
}

impl Engine {
    /// An engine with a cache bounded at `cache_bytes`, spilling byte
    /// artifacts to `cache_dir` when given.
    pub fn new(cache_bytes: usize, cache_dir: Option<std::path::PathBuf>) -> Engine {
        Engine {
            lib: Library::lib180(),
            cache: ArtifactCache::new(cache_bytes, cache_dir),
            jobs: AtomicU64::new(0),
        }
    }

    /// Total jobs executed (including cached responses).
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Executes one parsed request against the cache. `canonical` is
    /// the canonical re-rendering of the request JSON (sorted keys, no
    /// whitespace) — the response-cache key, so equal requests hit
    /// regardless of field order or whitespace.
    ///
    /// # Errors
    ///
    /// Returns the structured [`JobError`] for the first failing
    /// stage; nothing is cached for failed jobs.
    pub fn execute(&self, canonical: &str, req: &Request) -> Result<JobOutcome, JobError> {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        obs::add(obs::Counter::ServeJobs, 1);
        // Stats snapshots are point-in-time and shutdown is an ack;
        // neither goes through the response cache.
        if matches!(req, Request::Stats | Request::Shutdown) {
            let payload = match req {
                Request::Stats => render_stats(self.jobs(), self.cache.stats()),
                _ => b"{\"ok\":true,\"shutting_down\":true}".to_vec(),
            };
            return Ok(JobOutcome {
                payload: Arc::new(payload),
                cached_response: false,
            });
        }
        let response_key = stage_key(canonical.as_bytes(), &[], CacheStage::Response);
        if let Some(hit) = self.cache.get_bytes(response_key) {
            return Ok(JobOutcome {
                payload: hit,
                cached_response: true,
            });
        }
        let payload = Arc::new(match req {
            Request::Campaign(c) => self.campaign(c)?,
            Request::Flow(f) => self.flow(f)?,
            Request::Stats | Request::Shutdown => unreachable!("handled above"),
        });
        self.cache.put_bytes(response_key, Arc::clone(&payload));
        Ok(JobOutcome {
            payload,
            cached_response: false,
        })
    }

    /// The mapped netlist of the built-in Fig. 4 DES module.
    fn des_mapped(&self, opts_bytes: &[u8], c: &CampaignRequest) -> Result<Arc<Netlist>, FlowError> {
        self.cache.get_or_try(
            stage_key(CAMPAIGN_INPUT, opts_bytes, CacheStage::Map),
            || {
                let _s = obs::span("synth");
                map_design(&des_dpa_design(), &self.lib, &c.opts.map).map_err(FlowError::Map)
            },
            size::netlist,
        )
    }

    fn place_opts(c: &CampaignRequest, pitch: GridPitch) -> PlaceOptions {
        PlaceOptions {
            fill_factor: c.opts.fill_factor,
            aspect_ratio: c.opts.aspect_ratio,
            anneal_moves_per_gate: c.opts.anneal_moves_per_gate,
            seed: c.opts.seed,
            pitch,
        }
    }

    /// Runs a measurement campaign + attack on the built-in DES
    /// module, caching every stage artifact along the way.
    fn campaign(&self, c: &CampaignRequest) -> Result<Vec<u8>, JobError> {
        let ob = flow_options_bytes(&c.opts);
        let mapped = self.des_mapped(&ob, c)?;
        // Downstream stage keys carry the implementation tag: the
        // secure pipeline's placement must never alias the regular
        // one's.
        let impl_input: Vec<u8> = [
            CAMPAIGN_INPUT,
            if c.secure { b"/secure" } else { b"/regular" },
        ]
        .concat();
        let key_of = |stage| stage_key(&impl_input, &ob, stage);

        // Build (or recall) the implementation's artifacts, then the
        // campaign target borrowing from them. The intermediate
        // placement/routing Arcs are dropped once extraction has run —
        // the cache keeps them alive if they are retained at all.
        let sub_opt: Option<Arc<Substitution>>;
        let parasitics: Arc<Parasitics>;
        if c.secure {
            let sub = self.cache.get_or_try(
                key_of(CacheStage::Substitute),
                || {
                    let _s = obs::span("substitute");
                    substitute(&mapped, &self.lib).map_err(FlowError::from)
                },
                size::substitution,
            )?;
            let placed = self.cache.get_or_try(
                key_of(CacheStage::Place),
                || {
                    let _s = obs::span("place");
                    place_best_of(
                        &sub.fat,
                        &sub.fat_lib,
                        &Self::place_opts(c, GridPitch::Fat),
                        c.opts.place_restarts,
                    )
                    .map_err(FlowError::from)
                },
                size::placed,
            )?;
            let routed = self.cache.get_or_try(
                key_of(CacheStage::Route),
                || {
                    let _s = obs::span("route");
                    route(&sub.fat, &sub.fat_lib, &placed, &c.opts.route).map_err(FlowError::from)
                },
                size::routed,
            )?;
            let decomposed = self.cache.get_or_try(
                key_of(CacheStage::Decompose),
                || {
                    let _s = obs::span("decompose");
                    decompose_styled(&routed, &sub, c.opts.decompose_style).map_err(FlowError::from)
                },
                size::routed,
            )?;
            parasitics = self.cache.get_or_try(
                key_of(CacheStage::Extract),
                || {
                    let _s = obs::span("extract");
                    try_extract(&decomposed, &sub.differential, &c.opts.tech)
                        .map_err(FlowError::from)
                },
                size::parasitics,
            )?;
            sub_opt = Some(sub);
        } else {
            let placed = self.cache.get_or_try(
                key_of(CacheStage::Place),
                || {
                    let _s = obs::span("place");
                    place_best_of(
                        &mapped,
                        &self.lib,
                        &Self::place_opts(c, GridPitch::Normal),
                        c.opts.place_restarts,
                    )
                    .map_err(FlowError::from)
                },
                size::placed,
            )?;
            let routed = self.cache.get_or_try(
                key_of(CacheStage::Route),
                || {
                    let _s = obs::span("route");
                    route(&mapped, &self.lib, &placed, &c.opts.route).map_err(FlowError::from)
                },
                size::routed,
            )?;
            parasitics = self.cache.get_or_try(
                key_of(CacheStage::Extract),
                || {
                    let _s = obs::span("extract");
                    try_extract(&routed, &mapped, &c.opts.tech).map_err(FlowError::from)
                },
                size::parasitics,
            )?;
            sub_opt = None;
        }
        let target = match &sub_opt {
            Some(sub) => DesTarget {
                netlist: &sub.differential,
                lib: &sub.diff_lib,
                parasitics: Some(&parasitics),
                wddl_inputs: Some(&sub.input_pairs),
                glitch_free: false,
                backend: c.opts.sim_backend,
            },
            None => DesTarget {
                netlist: &mapped,
                lib: &self.lib,
                parasitics: Some(&parasitics),
                wddl_inputs: None,
                glitch_free: false,
                backend: c.opts.sim_backend,
            },
        };

        // The compiled program ignores the noise parameters (windows
        // run noise-free; noise is applied per trace), so its key
        // zeroes them — a noise sweep reuses one compiled program.
        let program_cfg = SimConfig {
            noise_sigma: 0.0,
            noise_seed: 0,
            ..c.cfg.clone()
        };
        let mut program_opts = ob.clone();
        program_opts.extend_from_slice(&sim_config_bytes(&program_cfg));
        let program = self.cache.get_or_try(
            stage_key(&impl_input, &program_opts, CacheStage::Program),
            || {
                CampaignProgram::build(&target, &c.cfg)
                    .map_err(FlowError::Sim)
            },
            |_| size::program(target.netlist, &c.cfg),
        )?;

        let plan = AnalysisPlan {
            n_keys: 64,
            correct_key: c.key,
            step: c.mtd.then(|| (c.n / 40).max(10)),
            dpa: c.attack == AttackKind::Dpa,
            cpa: c.attack == AttackKind::Cpa,
        };
        let analysis = match c.trace_path {
            TracePath::Materialize => {
                // The trace set depends on everything: options, full
                // sim config (noise included), key, n, seed. The
                // attack kind is deliberately *not* keyed — a CPA job
                // reuses the DPA job's traces.
                let mut campaign_opts = ob.clone();
                campaign_opts.extend_from_slice(&sim_config_bytes(&c.cfg));
                let mut e = Enc::new();
                e.u64("key", u64::from(c.key))
                    .u64("n", c.n as u64)
                    .u64("seed", c.seed);
                campaign_opts.extend_from_slice(&e.build());
                let traces = self.cache.get_or_try(
                    stage_key(&impl_input, &campaign_opts, CacheStage::Traces),
                    || {
                        collect_des_traces_with(&program, &target, &c.cfg, c.key, c.n, c.seed)
                            .map_err(FlowError::Sim)
                    },
                    size::traces,
                )?;
                analyze_trace_set(&traces, &plan).map_err(JobError::from)?
            }
            // The streaming path never materializes the trace matrix,
            // so there is nothing stage-sized to cache — equal requests
            // still hit the response cache (trace_path is part of the
            // canonical request).
            TracePath::Streaming => collect_des_analysis_streaming(
                &program, &target, &c.cfg, c.key, c.n, c.seed, &plan, STREAM_CHUNK, None,
            )?,
        };

        Ok(render_campaign(c, &analysis))
    }

    /// Runs a flow backend on submitted Verilog text. The parsed
    /// netlist is cached on the exact input bytes; the backend run
    /// itself is covered by the response cache.
    fn flow(&self, f: &FlowRequest) -> Result<Vec<u8>, JobError> {
        let seq_cells = self.lib.seq_cell_names();
        let parsed = self.cache.get_or_try(
            stage_key(f.netlist.as_bytes(), &[], CacheStage::Parse),
            || {
                let _s = obs::span("parse");
                let nl = parse_verilog(&f.netlist, &seq_cells).map_err(FlowError::Parse)?;
                nl.validate().map_err(FlowError::Parse)?;
                Ok::<Netlist, FlowError>(nl)
            },
            size::netlist,
        )?;
        // Flow options participate via the response-cache key; the
        // backend run below is not stage-cached (its verification
        // steps are checks, not artifacts).
        if f.secure {
            let r = run_secure_backend((*parsed).clone(), &self.lib, &f.opts, 0.0)?;
            Ok(render_flow("secure", &r.report))
        } else {
            let r = run_regular_backend((*parsed).clone(), &self.lib, &f.opts, 0.0)?;
            Ok(render_flow("regular", &r.report))
        }
    }
}

/// Canonical input tag of campaign jobs: the design is compiled into
/// the binary, so its identity — not its bytes — is the input.
const CAMPAIGN_INPUT: &[u8] = b"builtin:des_dpa";

/// Traces simulated per accumulator block on the streaming path. Big
/// enough to amortize the parallel fan-out, small enough that a block
/// of 1 k-sample traces stays a few tens of MB.
const STREAM_CHUNK: usize = 4096;

fn render_stats(jobs: u64, s: CacheStats) -> Vec<u8> {
    let mut cache = Obj::new();
    cache
        .u64("hits", s.hits)
        .u64("misses", s.misses)
        .u64("evicts", s.evicts)
        .u64("entries", s.entries as u64)
        .u64("bytes", s.bytes as u64);
    let mut o = Obj::new();
    o.str("job", "stats")
        .u64("jobs", jobs)
        .raw("cache", &cache.build());
    o.build().into_bytes()
}

/// Renders the deterministic campaign payload. Every value here is a
/// pure function of the request — trace statistics, attack outcomes,
/// MTD — with floats through the shared writer's shortest-round-trip
/// formatting; no timings, no cache state.
fn render_campaign(c: &CampaignRequest, a: &CampaignAnalysis) -> Vec<u8> {
    let mut o = Obj::new();
    o.str("job", if c.mtd { "campaign" } else { "attack" })
        .str(
            "implementation",
            if c.secure { "secure" } else { "regular" },
        )
        .str("attack", c.attack.name())
        .u64("n", a.n as u64)
        .u64("seed", c.seed)
        .u64("key", u64::from(c.key))
        .u64("samples_per_trace", a.samples_per_trace as u64);
    let mean_energy = a.energy_sum / a.n as f64;
    o.f64("mean_energy_fj", mean_energy);
    if let Some(r) = &a.dpa {
        o.u64("best_key", u64::from(r.best_key)).f64("margin", r.margin);
        let mut guesses = Arr::new();
        for g in &r.guesses {
            let mut go = Obj::new();
            go.u64("key", u64::from(g.key)).f64("p2p", g.p2p);
            guesses.raw(&go.build());
        }
        o.raw("guesses", &guesses.build());
    }
    if let Some(scan) = &a.dpa_mtd {
        match scan.mtd {
            Some(m) => o.u64("mtd", m as u64),
            None => o.raw("mtd", "null"),
        };
        let mut points = Arr::new();
        for p in &scan.points {
            let mut po = Obj::new();
            po.u64("traces", p.traces as u64)
                .raw("disclosed", if p.disclosed { "true" } else { "false" })
                .f64("correct_peak", p.correct_peak)
                .f64("best_wrong_peak", p.best_wrong_peak);
            points.raw(&po.build());
        }
        o.raw("points", &points.build());
    }
    if let Some(r) = &a.cpa {
        o.u64("best_key", u64::from(r.best_key)).f64("margin", r.margin);
        let mut guesses = Arr::new();
        for g in &r.guesses {
            let mut go = Obj::new();
            go.u64("key", u64::from(g.key)).f64("peak_corr", g.peak_corr);
            guesses.raw(&go.build());
        }
        o.raw("guesses", &guesses.build());
    }
    if let Some((pts, mtd)) = &a.cpa_mtd {
        match mtd {
            Some(m) => o.u64("mtd", *m as u64),
            None => o.raw("mtd", "null"),
        };
        let mut points = Arr::new();
        for p in pts {
            let mut po = Obj::new();
            po.u64("traces", p.traces as u64)
                .raw("disclosed", if p.disclosed { "true" } else { "false" })
                .f64("correct_corr", p.correct_corr)
                .f64("best_wrong_corr", p.best_wrong_corr);
            points.raw(&po.build());
        }
        o.raw("points", &points.build());
    }
    o.build().into_bytes()
}

/// Renders the deterministic flow payload: the [`FlowReport`] *minus*
/// its wall-clock `*_ms` fields, which would break warm/cold byte
/// identity.
fn render_flow(kind: &str, r: &FlowReport) -> Vec<u8> {
    let mut o = Obj::new();
    o.str("job", "flow")
        .str("implementation", kind)
        .str("netlist_stats", &r.stats.to_string())
        .f64("die_area_um2", r.die_area_um2)
        .f64("cell_area_um2", r.cell_area_um2)
        .u64("wirelength_tracks", r.wirelength_tracks.unsigned_abs())
        .u64("vias", r.vias as u64)
        .f64("critical_path_ps", r.critical_path_ps);
    if let Some(c) = &r.clock {
        let mut co = Obj::new();
        co.u64("sinks", c.sinks as u64)
            .u64("buffers", c.buffers as u64)
            .f64("skew_ps", c.skew_ps)
            .f64("total_cap_ff", c.total_cap_ff);
        o.raw("clock", &co.build());
    }
    if let Some(lec) = r.lec_equivalent {
        o.raw("lec_equivalent", if lec { "true" } else { "false" });
    }
    if let Some(mm) = r.mean_pair_mismatch {
        o.f64("mean_pair_mismatch", mm);
    }
    if let Some(mm) = r.max_pair_mismatch {
        o.f64("max_pair_mismatch", mm);
    }
    o.build().into_bytes()
}

/// Renders the response envelope (first frame): job status, the
/// structured error if any, and per-job `serve.*` metrics. Everything
/// run-dependent lives here, never in the payload.
pub fn render_envelope(
    result: &Result<JobOutcome, JobError>,
    before: CacheStats,
    after: CacheStats,
    queue_depth: usize,
) -> String {
    let mut o = Obj::new();
    match result {
        Ok(out) => {
            o.raw("ok", "true")
                .raw(
                    "cached",
                    if out.cached_response { "true" } else { "false" },
                )
                .u64("payload_bytes", out.payload.len() as u64);
        }
        Err(e) => {
            let mut err = Obj::new();
            err.str("stage", &e.stage)
                .str("kind", &e.kind)
                .str("detail", &e.detail);
            o.raw("ok", "false")
                .raw("error", &err.build())
                .u64("exit_code", e.exit_code as u64);
        }
    }
    let mut m = Obj::new();
    m.u64("cache_hits", after.hits.saturating_sub(before.hits))
        .u64("cache_misses", after.misses.saturating_sub(before.misses))
        .u64("cache_evicts", after.evicts.saturating_sub(before.evicts))
        .u64("cache_entries", after.entries as u64)
        .u64("cache_bytes", after.bytes as u64)
        .u64("queue_depth", queue_depth as u64);
    o.raw("metrics", &m.build());
    o.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::canonical_json;
    use crate::value::Value;

    fn canonical(req: &str) -> String {
        canonical_json(&Value::parse(req).unwrap())
    }

    #[test]
    fn warm_campaign_payload_is_byte_identical_and_cached() {
        let engine = Engine::new(256 << 20, None);
        let req = r#"{"job":"campaign","n":8,"seed":1,
                      "options":{"anneal_moves_per_gate":4,"verify":false},
                      "sim":{"samples_per_cycle":40}}"#;
        let canon = canonical(req);
        let parsed = Request::parse(req.as_bytes()).unwrap();
        let cold = engine.execute(&canon, &parsed).unwrap();
        assert!(!cold.cached_response);
        let warm = engine.execute(&canon, &parsed).unwrap();
        assert!(warm.cached_response);
        assert_eq!(cold.payload, warm.payload);
        // Field order must not matter: same request reshuffled.
        let req2 = r#"{"seed":1,"n":8,"job":"campaign",
                       "sim":{"samples_per_cycle":40},
                       "options":{"verify":false,"anneal_moves_per_gate":4}}"#;
        assert_eq!(canonical(req2), canon);
    }

    #[test]
    fn cpa_attack_reuses_dpa_traces() {
        let engine = Engine::new(256 << 20, None);
        let mk = |attack: &str| {
            format!(
                r#"{{"job":"attack","attack":"{attack}","n":6,"seed":2,
                     "options":{{"anneal_moves_per_gate":4,"verify":false}},
                     "sim":{{"samples_per_cycle":40}}}}"#
            )
        };
        let dpa = mk("dpa");
        let parsed = Request::parse(dpa.as_bytes()).unwrap();
        engine.execute(&canonical(&dpa), &parsed).unwrap();
        let s1 = engine.cache.stats();
        let cpa = mk("cpa");
        let parsed = Request::parse(cpa.as_bytes()).unwrap();
        engine.execute(&canonical(&cpa), &parsed).unwrap();
        let s2 = engine.cache.stats();
        // The CPA job missed only on its response key; every pipeline
        // stage (map..traces) was a hit.
        assert_eq!(s2.misses - s1.misses, 1, "stats {s2:?} vs {s1:?}");
    }

    #[test]
    fn flow_job_errors_map_the_taxonomy() {
        let engine = Engine::new(16 << 20, None);
        let req = r#"{"job":"flow","netlist":"this is not verilog ("}"#;
        let parsed = Request::parse(req.as_bytes()).unwrap();
        let e = engine
            .execute(&canonical(req), &parsed)
            .expect_err("parse must fail");
        assert_eq!(e.stage, "parse");
        assert_eq!(e.exit_code, 10);
    }
}
