//! `secflow-serve`: a persistent job server for the secure design
//! flow, with a content-addressed artifact cache.
//!
//! The CLI flows (`secflow`, the experiment binaries) pay the full
//! synthesis → place → route → extract → compile → simulate pipeline
//! on every invocation. This crate keeps a process resident instead:
//!
//! * [`server`] — a daemon on a Unix-domain socket (or TCP) accepting
//!   **flow**, **campaign** (DPA/CPA + MTD) and **attack** jobs as
//!   length-prefixed JSON frames, scheduled across a small runner
//!   pool (stages parallelise internally via `secflow-exec`);
//! * [`cache`] — an in-memory + on-disk LRU artifact store keyed by a
//!   128-bit content hash of `(input bytes, options, stage)`: parsed
//!   and mapped netlists, WDDL substitutions, placements, routed
//!   designs, parasitics, compiled simulation programs, trace sets
//!   and whole response payloads;
//! * [`hash`] / [`key`] — SipHash-2-4 (in-repo, the workspace is
//!   hermetic) over canonical option encodings, floats pinned by
//!   `f64::to_bits`;
//! * [`proto`] / [`client`] — the framing, request schema and the
//!   submit side used by `secflow submit`.
//!
//! The cache leans on the workspace's determinism contract: every
//! stage is a pure function of its typed inputs, so serving a cached
//! artifact — or a whole cached response payload — is byte-identical
//! to recomputing it. Responses are split into a *payload* frame
//! (deterministic, safe to cache and `cmp`) and an *envelope* frame
//! (per-job metrics, errors), mirroring the stdout/stderr split of
//! the CLI binaries.

pub mod cache;
pub mod client;
pub mod engine;
pub mod hash;
pub mod key;
pub mod proto;
pub mod server;
pub mod value;

pub use cache::{ArtifactCache, CacheStats};
pub use client::{submit, Response};
pub use engine::{Engine, JobError, JobOutcome};
pub use hash::ContentHash;
pub use key::{flow_options_bytes, sim_config_bytes, stage_key, CacheStage};
pub use proto::{read_frame, write_frame, Request, RequestError};
pub use server::{serve, Bind, ServerOptions};
pub use value::Value;
