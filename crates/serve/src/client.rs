//! The submit-side of the protocol: one request frame out, two
//! response frames (envelope, payload) back.

use std::io;

use crate::proto::{read_frame, write_frame};
use crate::server::{connect, Bind};

/// A complete server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The envelope JSON (status, metrics, structured error).
    pub envelope: String,
    /// The deterministic result payload.
    pub payload: Vec<u8>,
}

/// Submits one request and reads the response.
///
/// # Errors
///
/// Propagates connect/transport errors; a non-UTF-8 envelope is
/// reported as `InvalidData`.
pub fn submit(bind: &Bind, request: &[u8]) -> io::Result<Response> {
    let mut stream = connect(bind)?;
    write_frame(&mut stream, request)?;
    let envelope = read_frame(&mut stream)?;
    let payload = read_frame(&mut stream)?;
    let envelope = String::from_utf8(envelope)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "envelope is not UTF-8"))?;
    Ok(Response { envelope, payload })
}
