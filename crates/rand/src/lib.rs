//! Dependency-free deterministic PRNGs for the secflow workspace.
//!
//! Every stochastic component of the flow — annealing moves, random
//! LEC vectors, plaintext campaigns, measurement noise — draws from
//! the generators in this crate, so identical seeds reproduce
//! identical traces bit-for-bit, run-to-run and machine-to-machine.
//! Nothing here is cryptographic; the goal is reproducible
//! experiments, not secrecy.
//!
//! Two generators are provided:
//!
//! * [`SplitMix`] — SplitMix64 (Steele, Lea & Flood 2014): a tiny
//!   64-bit state, one addition and three xor-shift-multiplies per
//!   output. Used directly by cheap internal checks and to expand a
//!   `u64` seed into larger state.
//! * [`StdRng`] — xoshiro256++ (Blackman & Vigna 2019): 256 bits of
//!   state seeded through SplitMix64, the workspace's general-purpose
//!   generator.
//!
//! The sampling surface mirrors the subset of the `rand` crate API the
//! codebase uses, so call sites read identically:
//!
//! ```
//! use secflow_rand::{RngExt, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let byte: u8 = rng.random_range(0..16u8);
//! let coin: bool = rng.random();
//! let p = rng.random_bool(0.25);
//! # let _ = (byte, coin, p);
//! ```

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: `state += γ; output = mix(state)`.
///
/// The public tuple field preserves the original `SplitMix(seed)`
/// construction used throughout the workspace's checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix(pub u64);

impl SplitMix {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Advances the state and returns the next output word.
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(Self::GAMMA);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Derives an independent child seed from `(seed, index)`.
///
/// This is the workspace's RNG *stream-splitting* primitive: instead
/// of drawing per-item randomness sequentially from one generator
/// (which makes item `i` depend on how much entropy items `0..i`
/// consumed), each parallel work item seeds its own generator with
/// `split_seed(seed, i)`. The index is first diffused by an odd
/// multiplicative constant (the increment from Weyl-sequence
/// constructions) so adjacent indices land far apart in seed space,
/// then pushed through one SplitMix64 mixing step. The index is
/// offset by one so that index 0 does not collapse to the parent
/// seed's own sequential stream.
#[inline]
#[must_use]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    SplitMix(seed ^ index.wrapping_add(1).wrapping_mul(0xA076_1D64_78BD_642F)).next()
}

impl SeedableRng for SplitMix {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix(seed)
    }
}

/// xoshiro256++, the workspace's default generator.
///
/// 256 bits of state, period 2^256 − 1, excellent equidistribution;
/// seeded by expanding a `u64` through SplitMix64 as its authors
/// recommend (this also makes the all-zero state unreachable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix(seed);
        StdRng {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

/// Types that can be sampled uniformly from a generator's full output.
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Take the high bits: xoshiro256++'s upper bits have
                // the best statistical quality.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as the element of a `random_range` half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)`. `start < end` is already
    /// checked by the caller.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                // Lemire's multiply-shift: maps a 64-bit word onto the
                // span with bias below span/2^64 — unmeasurable for
                // every span this workspace uses, and branch-free, so
                // streams stay identical across platforms.
                let span = (end as u64).wrapping_sub(start as u64);
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        let u = f64::random(rng);
        // May round up to `end` for extreme spans; clamp to keep the
        // half-open contract.
        let v = start + (end - start) * u;
        if v >= end {
            end - (end - start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// The sampling methods every generator gets for free.
pub trait RngExt: RngCore {
    /// Draws a uniform value of an inferred type ([`Random`]).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Alias for [`RngExt::random`], kept for `rand`-style call sites.
    #[inline]
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from the half-open range `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: SampleUniform + PartialOrd>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "empty range in random_range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic_and_index_sensitive() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        // Adjacent indices and adjacent seeds must all diverge.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(split_seed(seed, index)),
                    "collision at ({seed}, {index})"
                );
            }
        }
    }

    #[test]
    fn split_seed_index_zero_differs_from_parent_stream() {
        // Splitting is not the same as drawing: the child seed for
        // index 0 must not equal the parent's first sequential output,
        // or split streams would alias sequential ones.
        let mut parent = SplitMix(7);
        assert_ne!(split_seed(7, 0), parent.next());
    }

    #[test]
    fn split_seed_children_have_uncorrelated_streams() {
        // Streams seeded from adjacent indices should not share a
        // prefix.
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(1, 0));
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(1, 1));
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    /// Published reference vectors for SplitMix64 from seed 0
    /// (Steele/Lea/Flood test stream), plus pinned streams for other
    /// seeds to freeze our exact implementation.
    #[test]
    fn splitmix64_known_answers() {
        let cases: [(u64, [u64; 4]); 4] = [
            (
                0,
                [
                    0xE220_A839_7B1D_CDAF,
                    0x6E78_9E6A_A1B9_65F4,
                    0x06C4_5D18_8009_454F,
                    0xF88B_B8A8_724C_81EC,
                ],
            ),
            (
                1,
                [
                    0x910A_2DEC_8902_5CC1,
                    0xBEEB_8DA1_658E_EC67,
                    0xF893_A2EE_FB32_555E,
                    0x71C1_8690_EE42_C90B,
                ],
            ),
            (
                42,
                [
                    0xBDD7_3226_2FEB_6E95,
                    0x28EF_E333_B266_F103,
                    0x4752_6757_130F_9F52,
                    0x581C_E1FF_0E4A_E394,
                ],
            ),
            (
                0xDEAD_BEEF,
                [
                    0x4ADF_B90F_68C9_EB9B,
                    0xDE58_6A31_41A1_0922,
                    0x021F_BC2F_8E1C_FC1D,
                    0x7466_CE73_7BE1_6790,
                ],
            ),
        ];
        for (seed, expect) in cases {
            let mut sm = SplitMix(seed);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(sm.next(), e, "seed {seed} word {i}");
            }
        }
    }

    /// xoshiro256++ streams with SplitMix64-expanded seeds, pinned
    /// against an independent reference implementation of the
    /// Blackman–Vigna algorithm.
    #[test]
    fn xoshiro256pp_known_answers() {
        let cases: [(u64, [u64; 4]); 3] = [
            (
                0,
                [
                    0x5317_5D61_490B_23DF,
                    0x61DA_6F3D_C380_D507,
                    0x5C0F_DF91_EC9A_7BFC,
                    0x02EE_BF8C_3BBE_5E1A,
                ],
            ),
            (
                1,
                [
                    0xCFC5_D07F_6F03_C29B,
                    0xBF42_4132_963F_E08D,
                    0x19A3_7D57_57AA_F520,
                    0xBF08_119F_05CD_56D6,
                ],
            ),
            (
                42,
                [
                    0xD076_4D4F_4476_689F,
                    0x519E_4174_576F_3791,
                    0xFBE0_7CFB_0C24_ED8C,
                    0xB37D_9F60_0CD8_35B8,
                ],
            ),
        ];
        for (seed, expect) in cases {
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(rng.next_u64(), e, "seed {seed} word {i}");
            }
        }
    }

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(0x5EC0_F10E);
        let mut b = StdRng::seed_from_u64(0x5EC0_F10E);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut a = SplitMix(7);
        let mut b = SplitMix(7);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u8);
            assert!((10..20).contains(&v));
            let v = rng.random_range(0..3usize);
            assert!(v < 3);
            let v = rng.random_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn random_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [0u32; 6];
        for _ in 0..6000 {
            seen[rng.random_range(0..6u32) as usize] += 1;
        }
        // Uniform expectation is 1000 per bucket; a deterministic
        // stream either passes this loose band forever or never.
        for (i, &n) in seen.iter().enumerate() {
            assert!((800..1200).contains(&n), "bucket {i} count {n}");
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // First 8 bytes are the first word, little-endian.
        let mut check = StdRng::seed_from_u64(7);
        assert_eq!(buf[..8], check.next_u64().to_le_bytes());
        assert_eq!(buf[8..13], check.next_u64().to_le_bytes()[..5]);
    }

    #[test]
    fn gen_is_an_alias_for_random() {
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        let x: u64 = a.gen();
        let y: u64 = b.random();
        assert_eq!(x, y);
    }
}
