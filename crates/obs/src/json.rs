//! Minimal, escaping-safe JSON emission.
//!
//! The workspace is hermetic (no serde), so every JSON document we
//! produce — flow errors, run-info stderr lines, metrics exports,
//! chrome traces — is assembled by hand. Before this module each
//! call-site carried its own ad-hoc `.replace('\\', ..)` chain, which
//! is exactly how escaping bugs breed. All emitters now share this
//! one writer.
//!
//! Output is compact (no whitespace), keys appear in insertion
//! order, and strings are escaped per RFC 8259: `"`, `\`, and all
//! control characters below U+0020 (named escapes for `\n`, `\r`,
//! `\t`, `\uXXXX` for the rest).

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Builder for a compact JSON object. Keys are emitted in call order.
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field (value escaped).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Obj {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field. Non-finite values are emitted as `null`
    /// (JSON has no NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Obj {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal) verbatim.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Obj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object and returns the JSON text.
    pub fn build(&mut self) -> String {
        if self.buf.is_empty() {
            return "{}".to_string();
        }
        let mut s = std::mem::take(&mut self.buf);
        s.push('}');
        s
    }
}

/// Builder for a compact JSON array of pre-rendered values.
#[derive(Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    pub fn new() -> Arr {
        Arr { buf: String::new() }
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn raw(&mut self, v: &str) -> &mut Arr {
        self.buf.push(if self.buf.is_empty() { '[' } else { ',' });
        self.buf.push_str(v);
        self
    }

    /// Finishes the array and returns the JSON text.
    pub fn build(&mut self) -> String {
        if self.buf.is_empty() {
            return "[]".to_string();
        }
        let mut s = std::mem::take(&mut self.buf);
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t\r"), "x\\ny\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builder() {
        let mut o = Obj::new();
        o.str("a", "v\"x").u64("n", 7).f64("f", 1.5);
        o.raw("inner", "{\"k\":1}");
        assert_eq!(o.build(), r#"{"a":"v\"x","n":7,"f":1.5,"inner":{"k":1}}"#);
    }

    #[test]
    fn empty_and_nonfinite() {
        assert_eq!(Obj::new().build(), "{}");
        assert_eq!(Arr::new().build(), "[]");
        let mut o = Obj::new();
        o.f64("bad", f64::NAN);
        assert_eq!(o.build(), r#"{"bad":null}"#);
    }

    #[test]
    fn array_builder() {
        let mut a = Arr::new();
        a.raw("1").raw("\"x\"");
        assert_eq!(a.build(), r#"[1,"x"]"#);
    }
}
