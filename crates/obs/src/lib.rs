//! `secflow-obs` — deterministic, zero-cost-when-disabled
//! observability for the secure design flow.
//!
//! The flow's contract is that **stdout is byte-identical** across
//! thread counts and across obs-on/obs-off runs. This crate therefore
//! splits observability into two strictly separated halves:
//!
//! - **Counters and gauges** are deterministic facts about the work
//!   performed (events simulated, nets routed, rip-ups, cache hits).
//!   Where the underlying contract is thread-count invariant (per-window
//!   simulation counters, per-net routing counters), their sums are too,
//!   and tests pin them. They may appear anywhere.
//! - **Timing** (span durations, worker busy time) is monotonic
//!   wall-clock and inherently non-deterministic. It is recorded only
//!   into the side-channel artifacts (`OBS_*.json`, chrome trace),
//!   never printed to stdout.
//!
//! When no session is active every instrumentation call is a single
//! relaxed atomic load and an early return — the "NoopSink". The
//! `flow_stages` bench (`obs_overhead` group) pins this at <1% of the
//! simulation kernel's cost.
//!
//! # Usage
//!
//! ```
//! use secflow_obs as obs;
//!
//! let (result, report) = obs::capture(|| {
//!     let _flow = obs::span("flow.demo");
//!     {
//!         let _s = obs::span("route");
//!         obs::add(obs::Counter::RouteNets, 42);
//!     }
//!     "done"
//! });
//! assert_eq!(result, "done");
//! assert_eq!(report.counter(obs::Counter::RouteNets), 42);
//! assert!(report.has_span("route"));
//! ```
//!
//! Worker threads (the `secflow-exec` pool) record into thread-local
//! sinks and publish them with [`flush_thread`] before the pool scope
//! ends; merging is commutative (counter sums, gauge maxima) so the
//! merged totals do not depend on worker scheduling.

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Version tag stamped into every metrics document. Bump on any
/// backwards-incompatible change to the export shape;
/// `scripts/obs_schema_check.py` validates against it.
pub const SCHEMA: &str = "secflow-obs/1";

// ---------------------------------------------------------------------------
// Counter / gauge catalog
// ---------------------------------------------------------------------------

/// Typed counters. Merged across threads by summation, so every
/// counter must be a commutative count of work items.
///
/// Names are dot-separated `<subsystem>.<metric>` and are part of the
/// metrics schema: renaming one is a schema break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Simulation windows executed (one per traced encryption).
    SimWindows,
    /// Timing-wheel events drained by the compiled kernel.
    SimEvents,
    /// Combinational gate evaluations triggered by those events.
    SimEvals,
    /// 0→1 output transitions recorded (the power model's currency).
    SimRises,
    /// Lane batches executed by the bit-sliced kernel.
    SimBitsliceBatches,
    /// Live lanes across those batches (= windows simulated).
    SimBitsliceLanes,
    /// Masked timing-wheel events drained by the bit-sliced kernel.
    SimBitsliceEvents,
    /// Masked gate-word evaluations in the bit-sliced kernel.
    SimBitsliceEvals,
    /// Per-lane rising transitions recorded by the bit-sliced kernel.
    SimBitsliceRises,
    /// Power traces collected across DPA/CPA campaigns.
    DpaTraces,
    /// Key guesses evaluated by DPA/CPA attacks.
    DpaGuesses,
    /// Trace blocks folded into streaming DPA/CPA accumulators.
    DpaStreamBlocks,
    /// Traces consumed by streaming accumulators.
    DpaStreamTraces,
    /// Incremental MTD checkpoints evaluated by streaming scans.
    DpaStreamCheckpoints,
    /// Annealing moves attempted by the placer.
    PlaceMoves,
    /// Annealing moves accepted.
    PlaceAccepted,
    /// Independent placement restarts run.
    PlaceRestarts,
    /// Nets successfully routed.
    RouteNets,
    /// Nets ripped up and re-routed by the negotiation loop.
    RouteRipups,
    /// PathFinder negotiation iterations.
    RouteIterations,
    /// Nets extracted to parasitic RC.
    ExtractNets,
    /// Coupling-capacitor pairs identified during extraction.
    ExtractCouplings,
    /// Gates rewritten by WDDL cell substitution.
    SubstituteGates,
    /// Differential rail nets produced by interconnect decomposition.
    DecomposeRails,
    /// Primary outputs compared by equivalence checking.
    LecOutputs,
    /// Cell-definition memo hits while building netlist BDDs.
    LecCellMemoHits,
    /// BDD ITE-cache hits.
    LecIteCacheHits,
    /// Random-vector rounds run by the sampling-mode checker.
    LecRandomRounds,
    /// Parallel regions executed by the exec pool.
    ExecRegions,
    /// Work chunks claimed (stolen) by pool workers.
    ExecChunks,
    /// Items processed by pool workers.
    ExecItems,
    /// Jobs completed by the serve daemon (success or failure).
    ServeJobs,
    /// Artifact-cache hits (stage artifacts and response payloads).
    ServeCacheHits,
    /// Artifact-cache misses (entries built and inserted).
    ServeCacheMisses,
    /// Artifact-cache evictions under the `--cache-bytes` bound.
    ServeCacheEvicts,
}

impl Counter {
    pub const ALL: [Counter; 35] = [
        Counter::SimWindows,
        Counter::SimEvents,
        Counter::SimEvals,
        Counter::SimRises,
        Counter::SimBitsliceBatches,
        Counter::SimBitsliceLanes,
        Counter::SimBitsliceEvents,
        Counter::SimBitsliceEvals,
        Counter::SimBitsliceRises,
        Counter::DpaTraces,
        Counter::DpaGuesses,
        Counter::DpaStreamBlocks,
        Counter::DpaStreamTraces,
        Counter::DpaStreamCheckpoints,
        Counter::PlaceMoves,
        Counter::PlaceAccepted,
        Counter::PlaceRestarts,
        Counter::RouteNets,
        Counter::RouteRipups,
        Counter::RouteIterations,
        Counter::ExtractNets,
        Counter::ExtractCouplings,
        Counter::SubstituteGates,
        Counter::DecomposeRails,
        Counter::LecOutputs,
        Counter::LecCellMemoHits,
        Counter::LecIteCacheHits,
        Counter::LecRandomRounds,
        Counter::ExecRegions,
        Counter::ExecChunks,
        Counter::ExecItems,
        Counter::ServeJobs,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheEvicts,
    ];

    /// The stable dotted schema name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SimWindows => "sim.windows",
            Counter::SimEvents => "sim.events",
            Counter::SimEvals => "sim.evals",
            Counter::SimRises => "sim.rises",
            Counter::SimBitsliceBatches => "sim.bitslice.batches",
            Counter::SimBitsliceLanes => "sim.bitslice.lanes",
            Counter::SimBitsliceEvents => "sim.bitslice.events",
            Counter::SimBitsliceEvals => "sim.bitslice.evals",
            Counter::SimBitsliceRises => "sim.bitslice.rises",
            Counter::DpaTraces => "dpa.traces",
            Counter::DpaGuesses => "dpa.guesses",
            Counter::DpaStreamBlocks => "dpa.stream.blocks",
            Counter::DpaStreamTraces => "dpa.stream.traces",
            Counter::DpaStreamCheckpoints => "dpa.stream.checkpoints",
            Counter::PlaceMoves => "place.moves",
            Counter::PlaceAccepted => "place.accepted",
            Counter::PlaceRestarts => "place.restarts",
            Counter::RouteNets => "route.nets",
            Counter::RouteRipups => "route.ripups",
            Counter::RouteIterations => "route.iterations",
            Counter::ExtractNets => "extract.nets",
            Counter::ExtractCouplings => "extract.couplings",
            Counter::SubstituteGates => "substitute.gates",
            Counter::DecomposeRails => "decompose.rails",
            Counter::LecOutputs => "lec.outputs",
            Counter::LecCellMemoHits => "lec.cell_memo_hits",
            Counter::LecIteCacheHits => "lec.ite_cache_hits",
            Counter::LecRandomRounds => "lec.random_rounds",
            Counter::ExecRegions => "exec.regions",
            Counter::ExecChunks => "exec.chunks",
            Counter::ExecItems => "exec.items",
            Counter::ServeJobs => "serve.jobs",
            Counter::ServeCacheHits => "serve.cache.hit",
            Counter::ServeCacheMisses => "serve.cache.miss",
            Counter::ServeCacheEvicts => "serve.cache.evict",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

/// Typed gauges. Merged across threads by maximum (high-water marks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Peak simultaneous pending events on any timing wheel.
    SimWheelPeak,
    /// Peak simultaneous pending masked events on any bit-sliced wheel.
    SimBitsliceWheelPeak,
    /// Largest parallel region (item count) seen by the exec pool.
    ExecRegionPeakItems,
    /// Peak BDD node count during equivalence checking.
    LecBddPeakNodes,
    /// Peak pending-job queue depth seen by the serve daemon.
    ServeQueuePeak,
}

impl Gauge {
    pub const ALL: [Gauge; 5] = [
        Gauge::SimWheelPeak,
        Gauge::SimBitsliceWheelPeak,
        Gauge::ExecRegionPeakItems,
        Gauge::LecBddPeakNodes,
        Gauge::ServeQueuePeak,
    ];

    /// The stable dotted schema name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::SimWheelPeak => "sim.wheel_peak",
            Gauge::SimBitsliceWheelPeak => "sim.bitslice.wheel_peak",
            Gauge::ExecRegionPeakItems => "exec.region_peak_items",
            Gauge::LecBddPeakNodes => "lec.bdd_peak_nodes",
            Gauge::ServeQueuePeak => "serve.queue_peak",
        }
    }
}

const N_GAUGES: usize = Gauge::ALL.len();

// ---------------------------------------------------------------------------
// Global session state
// ---------------------------------------------------------------------------

/// Fast-path gate: a single relaxed load decides whether any
/// instrumentation call does work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Session generation. Thread-local sinks are tagged with the
/// generation they recorded under; a sink whose generation is stale
/// (its session already finished) is silently reset so records never
/// leak across sessions — important for long-lived pool threads.
static GEN: AtomicU64 = AtomicU64::new(0);

/// Dense per-thread ids for trace export (chrome `tid`).
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Parallel-region ids handed to `secflow-exec`.
static NEXT_REGION: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct SessionState {
    gen: u64,
    start_ns: u64,
    counters: [u64; N_COUNTERS],
    gauges: [u64; N_GAUGES],
    spans: Vec<SpanRec>,
    workers: Vec<WorkerRec>,
}

static STATE: Mutex<Option<SessionState>> = Mutex::new(None);

/// Serializes whole `capture` regions so concurrently running tests
/// (cargo runs tests of one binary on many threads) cannot observe
/// each other's counters.
static CAPTURE_GATE: Mutex<()> = Mutex::new(());

fn lock_state() -> std::sync::MutexGuard<'static, Option<SessionState>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Thread-local sinks
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SpanRec {
    /// Slash-joined path of open span names, e.g. `flow.secure/route`.
    path: String,
    start_ns: u64,
    dur_ns: u64,
    tid: u32,
}

/// One pool worker's contribution to a parallel region.
#[derive(Debug, Clone)]
pub struct WorkerRec {
    /// Region id from [`begin_region`].
    pub region: u64,
    /// Worker index within the region's pool.
    pub worker: u32,
    /// Wall-clock the worker spent inside the region.
    pub busy_ns: u64,
    /// Chunks claimed from the shared work queue.
    pub chunks: u64,
    /// Items processed.
    pub items: u64,
}

struct ThreadSink {
    gen: u64,
    tid: u32,
    dirty: bool,
    counters: [u64; N_COUNTERS],
    gauges: [u64; N_GAUGES],
    spans: Vec<SpanRec>,
    stack: Vec<(&'static str, u64)>,
}

impl ThreadSink {
    fn fresh() -> ThreadSink {
        ThreadSink {
            gen: 0,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            dirty: false,
            counters: [0; N_COUNTERS],
            gauges: [0; N_GAUGES],
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn reset_for(&mut self, gen: u64) {
        self.gen = gen;
        self.dirty = false;
        self.counters = [0; N_COUNTERS];
        self.gauges = [0; N_GAUGES];
        self.spans.clear();
        self.stack.clear();
    }
}

impl Drop for ThreadSink {
    fn drop(&mut self) {
        // Pool threads exiting mid-session publish what they have.
        flush(self);
    }
}

thread_local! {
    static SINK: RefCell<ThreadSink> = RefCell::new(ThreadSink::fresh());
}

fn with_sink<R>(f: impl FnOnce(&mut ThreadSink) -> R) -> R {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        let gen = GEN.load(Ordering::Relaxed);
        if s.gen != gen {
            s.reset_for(gen);
        }
        f(&mut s)
    })
}

fn flush(s: &mut ThreadSink) {
    if !s.dirty {
        return;
    }
    {
        let mut st = lock_state();
        if let Some(st) = st.as_mut() {
            if st.gen == s.gen {
                for i in 0..N_COUNTERS {
                    st.counters[i] += s.counters[i];
                }
                for i in 0..N_GAUGES {
                    st.gauges[i] = st.gauges[i].max(s.gauges[i]);
                }
                st.spans.append(&mut s.spans);
            }
        }
    }
    s.counters = [0; N_COUNTERS];
    s.gauges = [0; N_GAUGES];
    s.spans.clear();
    s.dirty = false;
}

// ---------------------------------------------------------------------------
// Instrumentation API
// ---------------------------------------------------------------------------

/// True while an observability session is active. The only cost paid
/// by instrumented code when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to a counter. No-op when disabled.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    with_sink(|s| {
        s.counters[c as usize] += n;
        s.dirty = true;
    });
}

/// Raises a high-water gauge to at least `v`. No-op when disabled.
#[inline]
pub fn gauge_max(g: Gauge, v: u64) {
    if !enabled() {
        return;
    }
    with_sink(|s| {
        if v > s.gauges[g as usize] {
            s.gauges[g as usize] = v;
            s.dirty = true;
        }
    });
}

/// RAII span guard returned by [`span`]. Closing (dropping) records
/// the span into the thread sink.
#[must_use = "a span is recorded when the guard drops; binding it to _ closes it immediately"]
pub struct Span {
    active: bool,
}

/// Opens a hierarchical span. The span's path is the slash-joined
/// chain of enclosing span names on this thread. No-op when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: false };
    }
    let start = now_ns();
    with_sink(|s| {
        s.stack.push((name, start));
        s.dirty = true;
    });
    Span { active: true }
}

/// `let _s = span!("route");` — sugar over [`span`] mirroring the
/// familiar tracing-style macro.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_ns();
        with_sink(|s| {
            // If the session changed under us, with_sink reset the
            // stack and there is nothing to pop — correct: the span
            // belongs to a finished session.
            let Some((name, start)) = s.stack.pop() else {
                return;
            };
            let mut path = String::new();
            for (n, _) in &s.stack {
                path.push_str(n);
                path.push('/');
            }
            path.push_str(name);
            let tid = s.tid;
            s.spans.push(SpanRec {
                path,
                start_ns: start,
                dur_ns: end.saturating_sub(start),
                tid,
            });
        });
    }
}

/// Allocates a region id and records region-entry facts. Called by
/// `secflow-exec` when a parallel region starts. Returns 0 when
/// disabled.
pub fn begin_region(items: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    add(Counter::ExecRegions, 1);
    gauge_max(Gauge::ExecRegionPeakItems, items);
    NEXT_REGION.fetch_add(1, Ordering::Relaxed) + 1
}

/// Publishes one worker's contribution to a parallel region. Also
/// bumps the `exec.chunks` / `exec.items` counters. Called by pool
/// workers; no-op when disabled.
pub fn record_worker(region: u64, worker: u32, busy_ns: u64, chunks: u64, items: u64) {
    if !enabled() {
        return;
    }
    add(Counter::ExecChunks, chunks);
    add(Counter::ExecItems, items);
    let mut st = lock_state();
    if let Some(st) = st.as_mut() {
        if st.gen == GEN.load(Ordering::Relaxed) {
            st.workers.push(WorkerRec {
                region,
                worker,
                busy_ns,
                chunks,
                items,
            });
        }
    }
}

/// Publishes this thread's sink into the session. Pool workers call
/// this before their scope ends; the main thread's sink is flushed by
/// [`finish`].
pub fn flush_thread() {
    SINK.with(|s| flush(&mut s.borrow_mut()));
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Starts an observability session. Returns false (and does nothing)
/// if one is already active.
pub fn start() -> bool {
    let mut st = lock_state();
    if st.is_some() {
        return false;
    }
    let gen = GEN.fetch_add(1, Ordering::Relaxed) + 1;
    *st = Some(SessionState {
        gen,
        start_ns: now_ns(),
        counters: [0; N_COUNTERS],
        gauges: [0; N_GAUGES],
        spans: Vec::new(),
        workers: Vec::new(),
    });
    ENABLED.store(true, Ordering::Relaxed);
    true
}

/// Ends the active session and returns its report, or `None` if no
/// session was active.
pub fn finish() -> Option<Report> {
    ENABLED.store(false, Ordering::Relaxed);
    flush_thread();
    let st = lock_state().take()?;
    Some(Report::from_state(st))
}

/// Runs `f` under a fresh observability session and returns its value
/// together with the session report. Sessions are process-global, so
/// concurrent captures (e.g. parallel tests in one binary) serialize
/// on an internal gate.
///
/// # Panics
/// Panics if an observability session is already active on this
/// process outside `capture` (e.g. started by [`start`]).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Report) {
    let _gate = CAPTURE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        start(),
        "obs::capture: an observability session is already active"
    );
    struct FinishOnUnwind;
    impl Drop for FinishOnUnwind {
        fn drop(&mut self) {
            let _ = finish();
        }
    }
    let guard = FinishOnUnwind;
    let value = f();
    std::mem::forget(guard);
    let report = finish().expect("obs::capture: session vanished");
    (value, report)
}

// ---------------------------------------------------------------------------
// Report + exporters
// ---------------------------------------------------------------------------

/// One raw recorded span (exported to the chrome trace).
#[derive(Debug, Clone)]
pub struct SpanOut {
    /// Slash-joined hierarchical path; the last component is the name.
    pub path: String,
    /// Start offset from session start, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Recording thread's dense id.
    pub tid: u32,
}

impl SpanOut {
    /// The leaf span name (last path component).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Path-aggregated span statistics (exported to the metrics JSON).
#[derive(Debug, Clone)]
pub struct SpanAgg {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
}

/// A finished session: merged counters, gauges, spans, and worker
/// records.
#[derive(Debug, Clone)]
pub struct Report {
    /// Session wall-clock, ns.
    pub wall_ns: u64,
    counters: [u64; N_COUNTERS],
    gauges: [u64; N_GAUGES],
    /// Raw spans, sorted by (start, tid) for deterministic export
    /// given identical timings.
    pub spans: Vec<SpanOut>,
    /// Per-worker region records, sorted by (region, worker).
    pub workers: Vec<WorkerRec>,
}

impl Report {
    fn from_state(st: SessionState) -> Report {
        let mut spans: Vec<SpanOut> = st
            .spans
            .into_iter()
            .map(|s| SpanOut {
                path: s.path,
                start_ns: s.start_ns.saturating_sub(st.start_ns),
                dur_ns: s.dur_ns,
                tid: s.tid,
            })
            .collect();
        spans.sort_by(|a, b| {
            (a.start_ns, a.tid, &a.path).cmp(&(b.start_ns, b.tid, &b.path))
        });
        let mut workers = st.workers;
        workers.sort_by_key(|w| (w.region, w.worker));
        Report {
            wall_ns: now_ns().saturating_sub(st.start_ns),
            counters: st.counters,
            gauges: st.gauges,
            spans,
            workers,
        }
    }

    /// An empty report (used when no session was active).
    pub fn empty() -> Report {
        Report {
            wall_ns: 0,
            counters: [0; N_COUNTERS],
            gauges: [0; N_GAUGES],
            spans: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// The merged value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The merged high-water value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// True if any recorded span's leaf name equals `name`.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name() == name)
    }

    /// Spans aggregated by hierarchical path, sorted by path.
    pub fn aggregate_spans(&self) -> Vec<SpanAgg> {
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(&s.path).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
        }
        agg.into_iter()
            .map(|(path, (count, total_ns))| SpanAgg {
                path: path.to_string(),
                count,
                total_ns,
            })
            .collect()
    }

    /// Renders the schema-versioned metrics document
    /// (`results/OBS_<exp>.json`). Every cataloged counter and gauge
    /// appears (zeros included) so the document shape is stable.
    pub fn to_metrics_json(&self, exp: &str, threads: usize) -> String {
        let mut counters = json::Obj::new();
        for c in Counter::ALL {
            counters.u64(c.name(), self.counter(c));
        }
        let mut gauges = json::Obj::new();
        for g in Gauge::ALL {
            gauges.u64(g.name(), self.gauge(g));
        }
        let mut spans = json::Arr::new();
        for s in self.aggregate_spans() {
            let mut o = json::Obj::new();
            o.str("path", &s.path)
                .u64("count", s.count)
                .u64("total_ns", s.total_ns);
            spans.raw(&o.build());
        }
        let mut workers = json::Arr::new();
        for w in &self.workers {
            let mut o = json::Obj::new();
            o.u64("region", w.region)
                .u64("worker", w.worker as u64)
                .u64("busy_ns", w.busy_ns)
                .u64("chunks", w.chunks)
                .u64("items", w.items);
            workers.raw(&o.build());
        }
        let mut doc = json::Obj::new();
        doc.str("schema", SCHEMA)
            .str("exp", exp)
            .u64("threads", threads as u64)
            .u64("wall_ns", self.wall_ns)
            .raw("counters", &counters.build())
            .raw("gauges", &gauges.build())
            .raw("spans", &spans.build())
            .raw("workers", &workers.build());
        doc.build()
    }

    /// Renders a chrome://tracing document ("X" complete events,
    /// timestamps in microseconds). Load it via chrome://tracing or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self, exp: &str) -> String {
        let mut events = json::Arr::new();
        for s in &self.spans {
            let mut o = json::Obj::new();
            o.str("name", s.name())
                .str("cat", "secflow")
                .str("ph", "X")
                .f64("ts", s.start_ns as f64 / 1000.0)
                .f64("dur", s.dur_ns as f64 / 1000.0)
                .u64("pid", 0)
                .u64("tid", s.tid as u64);
            let mut args = json::Obj::new();
            args.str("path", &s.path);
            o.raw("args", &args.build());
            events.raw(&o.build());
        }
        for w in &self.workers {
            // Workers appear as instant-style counters via args; busy
            // time is rendered as a zero-based complete event per
            // region on a synthetic tid lane.
            let mut o = json::Obj::new();
            o.str("name", "exec.worker")
                .str("cat", "secflow")
                .str("ph", "X")
                .f64("ts", 0.0)
                .f64("dur", w.busy_ns as f64 / 1000.0)
                .u64("pid", 1)
                .u64("tid", w.region * 64 + w.worker as u64);
            let mut args = json::Obj::new();
            args.u64("region", w.region)
                .u64("worker", w.worker as u64)
                .u64("chunks", w.chunks)
                .u64("items", w.items);
            o.raw("args", &args.build());
            events.raw(&o.build());
        }
        let mut other = json::Obj::new();
        other.str("exp", exp).str("schema", SCHEMA);
        let mut doc = json::Obj::new();
        doc.raw("traceEvents", &events.build())
            .str("displayTimeUnit", "ms")
            .raw("otherData", &other.build());
        doc.build()
    }

    /// Derives the chrome-trace path from a metrics path:
    /// `OBS_x.json` → `OBS_x.trace.json`.
    pub fn trace_path(metrics_path: &Path) -> PathBuf {
        let stem = metrics_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("obs");
        metrics_path.with_file_name(format!("{stem}.trace.json"))
    }

    /// Writes the metrics document to `path` and the chrome trace next
    /// to it (`<stem>.trace.json`). Returns the trace path.
    pub fn write_files(&self, exp: &str, threads: usize, path: &Path) -> io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut metrics = self.to_metrics_json(exp, threads);
        metrics.push('\n');
        std::fs::write(path, metrics)?;
        let trace = Self::trace_path(path);
        let mut trace_doc = self.to_chrome_trace(exp);
        trace_doc.push('\n');
        std::fs::write(&trace, trace_doc)?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_noop() {
        {
            // Holding the gate guarantees no sibling test has a
            // session active, so enabled() is false here.
            let _gate = CAPTURE_GATE.lock().unwrap_or_else(|e| e.into_inner());
            assert!(!enabled());
            add(Counter::SimEvents, 5);
            gauge_max(Gauge::SimWheelPeak, 9);
            let s = span("never");
            drop(s);
        }
        let (_, report) = capture(|| ());
        assert_eq!(report.counter(Counter::SimEvents), 0);
        assert_eq!(report.gauge(Gauge::SimWheelPeak), 0);
        assert!(report.spans.is_empty());
    }

    #[test]
    fn counters_and_spans_roundtrip() {
        let ((), report) = capture(|| {
            let _outer = span("flow.test");
            add(Counter::RouteNets, 3);
            add(Counter::RouteNets, 4);
            gauge_max(Gauge::SimWheelPeak, 10);
            gauge_max(Gauge::SimWheelPeak, 7);
            {
                let _inner = span("route");
            }
        });
        assert_eq!(report.counter(Counter::RouteNets), 7);
        assert_eq!(report.gauge(Gauge::SimWheelPeak), 10);
        assert!(report.has_span("flow.test"));
        assert!(report.has_span("route"));
        let agg = report.aggregate_spans();
        assert!(agg.iter().any(|a| a.path == "flow.test/route"));
    }

    #[test]
    fn cross_thread_merge_is_sum_and_max() {
        let ((), report) = capture(|| {
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    std::thread::spawn(move || {
                        add(Counter::ExecItems, 10 + i);
                        gauge_max(Gauge::ExecRegionPeakItems, 100 * (i + 1));
                        flush_thread();
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert_eq!(report.counter(Counter::ExecItems), 10 + 11 + 12 + 13);
        assert_eq!(report.gauge(Gauge::ExecRegionPeakItems), 400);
    }

    #[test]
    fn stale_generation_does_not_leak() {
        let ((), first) = capture(|| add(Counter::DpaTraces, 1));
        assert_eq!(first.counter(Counter::DpaTraces), 1);
        // A sink left dirty by a thread that outlives a session must
        // not pollute the next session.
        let ((), second) = capture(|| ());
        assert_eq!(second.counter(Counter::DpaTraces), 0);
    }

    #[test]
    fn sessions_are_exclusive() {
        let _gate = CAPTURE_GATE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(start());
        assert!(!start());
        assert!(finish().is_some());
        assert!(finish().is_none());
    }

    #[test]
    fn metrics_schema_shape() {
        let ((), report) = capture(|| {
            let _s = span("route");
            add(Counter::RouteNets, 2);
        });
        let doc = report.to_metrics_json("unit", 4);
        assert!(doc.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(doc.contains("\"exp\":\"unit\""));
        assert!(doc.contains("\"threads\":4"));
        assert!(doc.contains("\"route.nets\":2"));
        // zero counters still present: stable shape
        assert!(doc.contains("\"dpa.traces\":0"));
        let trace = report.to_chrome_trace("unit");
        assert!(trace.contains("\"traceEvents\":[{"));
        assert!(trace.contains("\"name\":\"route\""));
        assert!(trace.contains("\"ph\":\"X\""));
    }

    #[test]
    fn span_macro_compiles() {
        let ((), report) = capture(|| {
            let _s = span!("macro.span");
        });
        assert!(report.has_span("macro.span"));
    }

    #[test]
    fn trace_path_derivation() {
        assert_eq!(
            Report::trace_path(Path::new("results/OBS_x.json")),
            PathBuf::from("results/OBS_x.trace.json")
        );
    }
}
