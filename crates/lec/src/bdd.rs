//! A small reduced ordered BDD package.

use std::collections::HashMap;

/// A node reference in a [`Bdd`]. `0` and `1` are the terminal FALSE
/// and TRUE nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BddRef(pub u32);

impl BddRef {
    /// The FALSE terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The TRUE terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// True if this is a terminal node.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A reduced ordered BDD manager with a fixed variable order
/// (variable 0 at the top).
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    ite_cache_hits: u64,
}

impl Bdd {
    /// Creates a manager containing only the terminals.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: BddRef::FALSE,
                    hi: BddRef::FALSE,
                },
                Node {
                    var: u32::MAX,
                    lo: BddRef::TRUE,
                    hi: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            ite_cache_hits: 0,
        }
    }

    /// Number of live nodes (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// ITE computed-cache hits since creation (a deterministic
    /// function of the operation sequence).
    pub fn ite_cache_hits(&self) -> u64 {
        self.ite_cache_hits
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn cofactors(&self, r: BddRef, v: u32) -> (BddRef, BddRef) {
        let n = self.nodes[r.0 as usize];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// The function of a single variable.
    pub fn var(&mut self, v: u32) -> BddRef {
        self.mk(v, BddRef::FALSE, BddRef::TRUE)
    }

    /// If-then-else: `f·g + ¬f·h` — the universal connective.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.ite_cache_hits += 1;
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Logical AND.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::FALSE)
    }

    /// Logical OR.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::TRUE, b)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        self.ite(a, BddRef::FALSE, BddRef::TRUE)
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Evaluates the function under an assignment (`assignment[v]` =
    /// value of variable `v`).
    pub fn eval(&self, mut r: BddRef, assignment: &[bool]) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.0 as usize];
            r = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        r == BddRef::TRUE
    }

    /// Finds one satisfying assignment over `n_vars` variables, if the
    /// function is satisfiable.
    pub fn any_sat(&self, r: BddRef, n_vars: usize) -> Option<Vec<bool>> {
        if r == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; n_vars];
        let mut cur = r;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            if n.lo != BddRef::FALSE {
                assignment[n.var as usize] = false;
                cur = n.lo;
            } else {
                assignment[n.var as usize] = true;
                cur = n.hi;
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut b = Bdd::new();
        let x = b.var(0);
        assert!(b.eval(x, &[true]));
        assert!(!b.eval(x, &[false]));
        assert!(b.eval(BddRef::TRUE, &[]));
        assert!(!b.eval(BddRef::FALSE, &[]));
    }

    #[test]
    fn hashing_is_canonical() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let a1 = b.and(x, y);
        let a2 = b.and(y, x);
        assert_eq!(a1, a2);
        // (x·y) + ¬(x·y)·x == x
        let na = b.not(a1);
        let t = b.and(na, x);
        let u = b.or(a1, t);
        assert_eq!(u, x);
    }

    #[test]
    fn xor_and_demorgan() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let l = b.xor(x, y);
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(b.eval(l, &[vx, vy]), vx ^ vy);
        }
        let and = b.and(x, y);
        let nand = b.not(and);
        let nx = b.not(x);
        let ny = b.not(y);
        let or = b.or(nx, ny);
        assert_eq!(nand, or);
    }

    #[test]
    fn any_sat_finds_assignment() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let nx = b.not(x);
        let f = b.and(nx, y);
        let sat = b.any_sat(f, 2).unwrap();
        assert_eq!(sat, vec![false, true]);
        let zero = b.and(f, x);
        assert_eq!(zero, BddRef::FALSE);
        assert!(b.any_sat(zero, 2).is_none());
    }

    #[test]
    fn ordered_structure_shares_nodes() {
        // Building the same 8-var conjunction twice must not grow the
        // manager the second time.
        let mut b = Bdd::new();
        let vars: Vec<BddRef> = (0..8).map(|i| b.var(i)).collect();
        let mut f = BddRef::TRUE;
        for &v in &vars {
            f = b.and(f, v);
        }
        let before = b.node_count();
        let mut g = BddRef::TRUE;
        for &v in vars.iter().rev() {
            g = b.and(g, v);
        }
        assert_eq!(f, g);
        assert_eq!(b.node_count(), before);
    }
}
