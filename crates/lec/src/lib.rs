//! Logic equivalence checking — the reproduction's stand-in for
//! Formality / Verplex in the paper's verification step.
//!
//! Two engines are provided:
//!
//! * [`Bdd`] — a reduced ordered BDD package (unique table + ITE with
//!   memoization) used by [`check_equiv`] for formally exact
//!   combinational equivalence;
//! * [`check_equiv_random`] — 64-bit-parallel random simulation for
//!   designs whose BDDs would blow up (finds counterexamples only, it
//!   cannot prove equivalence).
//!
//! The secure design flow uses this to verify the fat netlist against
//! the original netlist (cell substitution correctness): primary
//! inputs are matched by name, registers by order, and primary outputs
//! by position with an optional polarity vector (the fat abstraction
//! stores output polarity separately, because WDDL implements
//! inversion by swapping the two rails).

mod bdd;
mod check;

pub use bdd::{Bdd, BddRef};
pub use check::{
    check_equiv, check_equiv_random, check_equiv_random_with_parity, check_equiv_with_parity,
    EquivReport, LecError,
};
