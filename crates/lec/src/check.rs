//! Combinational equivalence checking between two mapped netlists.

use std::collections::HashMap;
use std::fmt;

use secflow_rand::{RngExt, SeedableRng, StdRng};

use secflow_cells::{CellFunction, Library, TruthTable};
use secflow_netlist::{GateKind, NetId, Netlist};

use crate::bdd::{Bdd, BddRef};

/// Why an equivalence check could not even start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LecError {
    /// The two designs' interfaces do not correspond.
    PortMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A netlist is structurally unusable (cyclic, unknown cell).
    BadNetlist {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for LecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LecError::PortMismatch { reason } => write!(f, "port mismatch: {reason}"),
            LecError::BadNetlist { reason } => write!(f, "bad netlist: {reason}"),
        }
    }
}

impl std::error::Error for LecError {}

/// The outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// True if no difference was found (for the BDD engine this is a
    /// proof; for random simulation it only means no counterexample
    /// was found).
    pub equivalent: bool,
    /// Index of the first differing primary output, with a
    /// counterexample assignment over the shared source variables.
    pub failing_output: Option<(usize, Vec<bool>)>,
    /// Index of the first differing register next-state function, with
    /// a counterexample.
    pub failing_register: Option<(usize, Vec<bool>)>,
}

/// Shared source-variable mapping: primary inputs matched by name,
/// register outputs matched by declaration order.
struct Sources {
    /// Variable count.
    n_vars: usize,
    /// Per netlist: net of each variable.
    var_nets_a: Vec<NetId>,
    var_nets_b: Vec<NetId>,
    /// Register D nets (per netlist, in register order).
    reg_d_a: Vec<NetId>,
    reg_d_b: Vec<NetId>,
}

fn build_sources(nl_a: &Netlist, nl_b: &Netlist) -> Result<Sources, LecError> {
    let names_a: HashMap<&str, NetId> = nl_a
        .inputs()
        .iter()
        .map(|&n| (nl_a.net(n).name.as_str(), n))
        .collect();
    if nl_a.inputs().len() != nl_b.inputs().len() {
        return Err(LecError::PortMismatch {
            reason: format!(
                "input counts differ: {} vs {}",
                nl_a.inputs().len(),
                nl_b.inputs().len()
            ),
        });
    }
    let mut var_nets_a = Vec::new();
    let mut var_nets_b = Vec::new();
    for &nb in nl_b.inputs() {
        let name = nl_b.net(nb).name.as_str();
        let na = names_a.get(name).ok_or_else(|| LecError::PortMismatch {
            reason: format!("input `{name}` missing in first design"),
        })?;
        var_nets_a.push(*na);
        var_nets_b.push(nb);
    }
    let regs_a: Vec<_> = nl_a
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Seq)
        .collect();
    let regs_b: Vec<_> = nl_b
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Seq)
        .collect();
    if regs_a.len() != regs_b.len() {
        return Err(LecError::PortMismatch {
            reason: format!(
                "register counts differ: {} vs {}",
                regs_a.len(),
                regs_b.len()
            ),
        });
    }
    let mut reg_d_a = Vec::new();
    let mut reg_d_b = Vec::new();
    for (ga, gb) in regs_a.iter().zip(&regs_b) {
        var_nets_a.push(ga.outputs[0]);
        var_nets_b.push(gb.outputs[0]);
        reg_d_a.push(ga.inputs[0]);
        reg_d_b.push(gb.inputs[0]);
    }
    if nl_a.outputs().len() != nl_b.outputs().len() {
        return Err(LecError::PortMismatch {
            reason: format!(
                "output counts differ: {} vs {}",
                nl_a.outputs().len(),
                nl_b.outputs().len()
            ),
        });
    }
    Ok(Sources {
        n_vars: var_nets_a.len(),
        var_nets_a,
        var_nets_b,
        reg_d_a,
        reg_d_b,
    })
}

/// Builds BDDs for every net of the combinational portion of `nl`.
fn netlist_bdds(
    bdd: &mut Bdd,
    nl: &Netlist,
    lib: &Library,
    var_nets: &[NetId],
    var_neg: &[bool],
) -> Result<Vec<BddRef>, LecError> {
    let mut refs = vec![BddRef::FALSE; nl.net_count()];
    for (v, &net) in var_nets.iter().enumerate() {
        let r = bdd.var(v as u32);
        refs[net.index()] = if var_neg[v] { bdd.not(r) } else { r };
    }
    let order = secflow_netlist::topo_order(nl).ok_or_else(|| LecError::BadNetlist {
        reason: format!("netlist `{}` has a combinational cycle", nl.name),
    })?;
    // Mapped netlists instantiate a handful of distinct cells tens of
    // thousands of times; resolve each name once, not per gate.
    let mut cell_memo: HashMap<&str, &secflow_cells::LibCell> = HashMap::new();
    let mut memo_hits = 0u64;
    for gid in order {
        let g = nl.gate(gid);
        if g.kind == GateKind::Seq {
            continue;
        }
        let cell = match cell_memo.get(g.cell.as_str()) {
            Some(&c) => {
                memo_hits += 1;
                c
            }
            None => {
                let c = lib.by_name(&g.cell).ok_or_else(|| LecError::BadNetlist {
                    reason: format!("unknown cell `{}`", g.cell),
                })?;
                cell_memo.insert(g.cell.as_str(), c);
                c
            }
        };
        match cell.function() {
            CellFunction::Comb(tt) => {
                let inputs: Vec<BddRef> = g.inputs.iter().map(|&n| refs[n.index()]).collect();
                refs[g.outputs[0].index()] = tt_to_bdd(bdd, tt.vars(), tt.bits(), &inputs);
            }
            CellFunction::Tie(v) => {
                refs[g.outputs[0].index()] = if *v { BddRef::TRUE } else { BddRef::FALSE };
            }
            CellFunction::Dff | CellFunction::WddlDff => {}
        }
    }
    secflow_obs::add(secflow_obs::Counter::LecCellMemoHits, memo_hits);
    Ok(refs)
}

/// Shannon expansion of a packed truth table over input BDDs: minterm
/// index bit `n-1` selects the table half, so the recursion splits on
/// the highest variable first.
fn tt_to_bdd(bdd: &mut Bdd, n: u8, bits: u64, inputs: &[BddRef]) -> BddRef {
    if n == 0 {
        return if bits & 1 == 1 {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        };
    }
    // n ≤ 6 so half ≤ 32 and the shifts below are in range.
    let half = 1u32 << (n - 1);
    let lo_bits = bits & ((1u64 << half) - 1);
    let hi_bits = bits >> half;
    let lo = tt_to_bdd(bdd, n - 1, lo_bits, inputs);
    let hi = tt_to_bdd(bdd, n - 1, hi_bits, inputs);
    bdd.ite(inputs[n as usize - 1], hi, lo)
}

/// Proves or refutes combinational equivalence of two netlists using
/// BDDs.
///
/// Primary inputs are matched by name, registers by declaration order,
/// primary outputs by position. `out_parity_b` optionally complements
/// selected outputs of the second design before comparison (the fat
/// netlist's output-polarity table).
///
/// # Errors
///
/// Returns [`LecError`] if the interfaces do not correspond or a
/// netlist is unusable.
pub fn check_equiv(
    nl_a: &Netlist,
    lib_a: &Library,
    nl_b: &Netlist,
    lib_b: &Library,
    out_parity_b: Option<&[bool]>,
) -> Result<EquivReport, LecError> {
    check_equiv_with_parity(nl_a, lib_a, nl_b, lib_b, out_parity_b, None)
}

/// Like [`check_equiv`], but additionally accepts a register-polarity
/// vector: `reg_parity_b[i]` declares that register `i` of the second
/// design is *inverting* (`Q <= ¬D`), so its next-state function is
/// compared complemented. The WDDL fat netlist records absorbed
/// inverter polarity this way (the `W_DFFN` fat register).
///
/// # Errors
///
/// Returns [`LecError`] if the interfaces do not correspond or a
/// netlist is unusable.
pub fn check_equiv_with_parity(
    nl_a: &Netlist,
    lib_a: &Library,
    nl_b: &Netlist,
    lib_b: &Library,
    out_parity_b: Option<&[bool]>,
    reg_parity_b: Option<&[bool]>,
) -> Result<EquivReport, LecError> {
    let _span = secflow_obs::span("lec.bdd");
    let src = build_sources(nl_a, nl_b)?;
    let neg = vec![false; src.n_vars];
    let mut bdd = Bdd::new();
    let refs_a = netlist_bdds(&mut bdd, nl_a, lib_a, &src.var_nets_a, &neg)?;
    let refs_b = netlist_bdds(&mut bdd, nl_b, lib_b, &src.var_nets_b, &neg)?;
    let report_bdd_stats = |bdd: &Bdd| {
        secflow_obs::add(secflow_obs::Counter::LecIteCacheHits, bdd.ite_cache_hits());
        secflow_obs::gauge_max(
            secflow_obs::Gauge::LecBddPeakNodes,
            bdd.node_count() as u64,
        );
    };
    secflow_obs::add(
        secflow_obs::Counter::LecOutputs,
        nl_a.outputs().len() as u64,
    );

    // Outputs.
    for (i, (&oa, &ob)) in nl_a.outputs().iter().zip(nl_b.outputs()).enumerate() {
        let fa = refs_a[oa.index()];
        let mut fb = refs_b[ob.index()];
        if out_parity_b.is_some_and(|p| p[i]) {
            fb = bdd.not(fb);
        }
        let miter = bdd.xor(fa, fb);
        if let Some(cex) = bdd.any_sat(miter, src.n_vars) {
            report_bdd_stats(&bdd);
            return Ok(EquivReport {
                equivalent: false,
                failing_output: Some((i, cex)),
                failing_register: None,
            });
        }
    }
    // Register next-state functions (with declared polarity applied).
    for (i, (&da, &db)) in src.reg_d_a.iter().zip(&src.reg_d_b).enumerate() {
        let mut fb = refs_b[db.index()];
        if reg_parity_b.is_some_and(|p| p[i]) {
            fb = bdd.not(fb);
        }
        let miter = bdd.xor(refs_a[da.index()], fb);
        if let Some(cex) = bdd.any_sat(miter, src.n_vars) {
            report_bdd_stats(&bdd);
            return Ok(EquivReport {
                equivalent: false,
                failing_output: None,
                failing_register: Some((i, cex)),
            });
        }
    }
    report_bdd_stats(&bdd);
    Ok(EquivReport {
        equivalent: true,
        failing_output: None,
        failing_register: None,
    })
}

/// One resolved step of the bit-parallel combinational walk.
enum CombOp {
    /// Truth-table gate: inputs in pin order, single output.
    Table {
        tt: TruthTable,
        inputs: Vec<NetId>,
        out: NetId,
    },
    /// Constant driver.
    Tie { value: bool, out: NetId },
}

/// A build-once compilation of a netlist's combinational portion for
/// random simulation: every cell resolved and every gate placed in
/// topological order exactly once, instead of per evaluation round.
/// Shared read-only across the parallel rounds of
/// [`check_equiv_random_with_parity`].
struct CompiledComb {
    n_nets: usize,
    ops: Vec<CombOp>,
}

impl CompiledComb {
    fn build(nl: &Netlist, lib: &Library) -> Result<CompiledComb, LecError> {
        let order = secflow_netlist::topo_order(nl).ok_or_else(|| LecError::BadNetlist {
            reason: format!("netlist `{}` has a combinational cycle", nl.name),
        })?;
        let mut cell_memo: HashMap<&str, &secflow_cells::LibCell> = HashMap::new();
        let mut memo_hits = 0u64;
        let mut ops = Vec::new();
        for gid in order {
            let g = nl.gate(gid);
            if g.kind == GateKind::Seq {
                continue;
            }
            let cell = match cell_memo.get(g.cell.as_str()) {
                Some(&c) => {
                    memo_hits += 1;
                    c
                }
                None => {
                    let c = lib.by_name(&g.cell).ok_or_else(|| LecError::BadNetlist {
                        reason: format!("unknown cell `{}`", g.cell),
                    })?;
                    cell_memo.insert(g.cell.as_str(), c);
                    c
                }
            };
            match cell.function() {
                CellFunction::Comb(tt) => ops.push(CombOp::Table {
                    tt: *tt,
                    inputs: g.inputs.clone(),
                    out: g.outputs[0],
                }),
                CellFunction::Tie(v) => ops.push(CombOp::Tie {
                    value: *v,
                    out: g.outputs[0],
                }),
                CellFunction::Dff | CellFunction::WddlDff => {}
            }
        }
        secflow_obs::add(secflow_obs::Counter::LecCellMemoHits, memo_hits);
        Ok(CompiledComb {
            n_nets: nl.net_count(),
            ops,
        })
    }

    /// Bit-parallel evaluation of 64 patterns into `values` (reused
    /// across rounds; resized and zeroed here). `ins` is a per-gate
    /// input-word buffer, equally reused.
    fn eval64_into(
        &self,
        values: &mut Vec<u64>,
        ins: &mut Vec<u64>,
        var_nets: &[NetId],
        var_values: &[u64],
        var_neg: &[bool],
    ) {
        values.clear();
        values.resize(self.n_nets, 0u64);
        for ((&net, &v), &neg) in var_nets.iter().zip(var_values).zip(var_neg) {
            values[net.index()] = if neg { !v } else { v };
        }
        for op in &self.ops {
            match op {
                CombOp::Table { tt, inputs, out } => {
                    let mut word = 0u64;
                    // Evaluate 64 patterns via table lookups per bit
                    // position of the packed input words.
                    ins.clear();
                    ins.extend(inputs.iter().map(|&n| values[n.index()]));
                    for bit in 0..64 {
                        let mut idx = 0u32;
                        for (i, w) in ins.iter().enumerate() {
                            if w >> bit & 1 == 1 {
                                idx |= 1 << i;
                            }
                        }
                        if tt.eval(idx) {
                            word |= 1 << bit;
                        }
                    }
                    values[out.index()] = word;
                }
                CombOp::Tie { value, out } => {
                    values[out.index()] = if *value { !0 } else { 0 };
                }
            }
        }
    }
}

/// Bit-parallel evaluation of a netlist's combinational portion
/// (one-shot convenience over [`CompiledComb`], kept for tests).
#[cfg(test)]
fn eval64(
    nl: &Netlist,
    lib: &Library,
    var_nets: &[NetId],
    var_values: &[u64],
    var_neg: &[bool],
) -> Vec<u64> {
    let comp = CompiledComb::build(nl, lib).expect("acyclic netlist with known cells");
    let mut values = Vec::new();
    let mut ins = Vec::new();
    comp.eval64_into(&mut values, &mut ins, var_nets, var_values, var_neg);
    values
}

/// Random-simulation equivalence check: `rounds × 64` random source
/// patterns. Fast and scalable, but only ever *refutes* equivalence.
///
/// # Errors
///
/// Returns [`LecError`] if the interfaces do not correspond.
pub fn check_equiv_random(
    nl_a: &Netlist,
    lib_a: &Library,
    nl_b: &Netlist,
    lib_b: &Library,
    out_parity_b: Option<&[bool]>,
    rounds: usize,
    seed: u64,
) -> Result<EquivReport, LecError> {
    check_equiv_random_with_parity(nl_a, lib_a, nl_b, lib_b, out_parity_b, None, rounds, seed)
}

/// Random-simulation variant of [`check_equiv_with_parity`].
///
/// Rounds run in parallel (`secflow-exec`); each round's 64 random
/// vectors come from an independent generator seeded by
/// `split_seed(seed, round)`, so a round's stimulus does not depend
/// on how many rounds precede it. When several rounds find a
/// counterexample, the one from the lowest round index is reported —
/// the result is byte-identical at any thread count.
///
/// # Errors
///
/// Returns [`LecError`] if the interfaces do not correspond.
#[allow(clippy::too_many_arguments)]
pub fn check_equiv_random_with_parity(
    nl_a: &Netlist,
    lib_a: &Library,
    nl_b: &Netlist,
    lib_b: &Library,
    out_parity_b: Option<&[bool]>,
    reg_parity_b: Option<&[bool]>,
    rounds: usize,
    seed: u64,
) -> Result<EquivReport, LecError> {
    let _span = secflow_obs::span("lec.random");
    secflow_obs::add(secflow_obs::Counter::LecRandomRounds, rounds as u64);
    secflow_obs::add(
        secflow_obs::Counter::LecOutputs,
        nl_a.outputs().len() as u64,
    );
    let src = build_sources(nl_a, nl_b)?;
    let neg = vec![false; src.n_vars];
    // Both netlists are compiled once (cells resolved, topological
    // order fixed) and shared read-only across rounds; each pool
    // worker reuses its evaluation buffers between rounds.
    let comp_a = CompiledComb::build(nl_a, lib_a)?;
    let comp_b = CompiledComb::build(nl_b, lib_b)?;
    let failures = secflow_exec::par_map_range_with(
        rounds,
        || (Vec::new(), Vec::new(), Vec::new()),
        |(va, vb, ins), round| -> Option<EquivReport> {
            let mut rng = StdRng::seed_from_u64(secflow_rand::split_seed(seed, round as u64));
            let vars: Vec<u64> = (0..src.n_vars).map(|_| rng.random()).collect();
            comp_a.eval64_into(va, ins, &src.var_nets_a, &vars, &neg);
            comp_b.eval64_into(vb, ins, &src.var_nets_b, &vars, &neg);
            for (i, (&oa, &ob)) in nl_a.outputs().iter().zip(nl_b.outputs()).enumerate() {
                let mut wb = vb[ob.index()];
                if out_parity_b.is_some_and(|p| p[i]) {
                    wb = !wb;
                }
                let diff = va[oa.index()] ^ wb;
                if diff != 0 {
                    let bit = diff.trailing_zeros();
                    let cex = vars.iter().map(|w| w >> bit & 1 == 1).collect();
                    return Some(EquivReport {
                        equivalent: false,
                        failing_output: Some((i, cex)),
                        failing_register: None,
                    });
                }
            }
            for (i, (&da, &db)) in src.reg_d_a.iter().zip(&src.reg_d_b).enumerate() {
                let mut wb = vb[db.index()];
                if reg_parity_b.is_some_and(|p| p[i]) {
                    wb = !wb;
                }
                let diff = va[da.index()] ^ wb;
                if diff != 0 {
                    let bit = diff.trailing_zeros();
                    let cex = vars.iter().map(|w| w >> bit & 1 == 1).collect();
                    return Some(EquivReport {
                        equivalent: false,
                        failing_output: None,
                        failing_register: Some((i, cex)),
                    });
                }
            }
            None
        },
    );
    // Results arrive in round order; the first failure is the lowest
    // round's, independent of execution interleaving.
    if let Some(report) = failures.into_iter().flatten().next() {
        return Ok(report);
    }
    Ok(EquivReport {
        equivalent: true,
        failing_output: None,
        failing_register: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    /// y = a AND b two ways: AND2 vs NAND2 + INV.
    fn equivalent_pair() -> (Netlist, Netlist) {
        let mut a = Netlist::new("a");
        let aa = a.add_input("x");
        let ab = a.add_input("y");
        let ay = a.add_net("out");
        a.add_gate("g", "AND2", GateKind::Comb, vec![aa, ab], vec![ay]);
        a.mark_output(ay);

        let mut b = Netlist::new("b");
        let ba = b.add_input("x");
        let bb = b.add_input("y");
        let bn = b.add_net("n");
        let by = b.add_net("out");
        b.add_gate("g0", "NAND2", GateKind::Comb, vec![ba, bb], vec![bn]);
        b.add_gate("g1", "INV", GateKind::Comb, vec![bn], vec![by]);
        b.mark_output(by);
        (a, b)
    }

    #[test]
    fn proves_equivalence() {
        let (a, b) = equivalent_pair();
        let lib = Library::lib180();
        let r = check_equiv(&a, &lib, &b, &lib, None).unwrap();
        assert!(r.equivalent);
        let r = check_equiv_random(&a, &lib, &b, &lib, None, 4, 1).unwrap();
        assert!(r.equivalent);
    }

    #[test]
    fn finds_counterexample() {
        let (a, mut b) = equivalent_pair();
        // Sabotage: replace INV by BUF (so b computes NAND).
        let bn = b.net_by_name("n").unwrap();
        let by = b.net_by_name("out").unwrap();
        b.retain_gates(|g| g.name != "g1");
        b.add_gate("g1", "BUF", GateKind::Comb, vec![bn], vec![by]);
        let lib = Library::lib180();
        let r = check_equiv(&a, &lib, &b, &lib, None).unwrap();
        assert!(!r.equivalent);
        let (idx, cex) = r.failing_output.unwrap();
        assert_eq!(idx, 0);
        // Verify the counterexample actually differs.
        let va = eval64(
            &a,
            &lib,
            &[a.net_by_name("x").unwrap(), a.net_by_name("y").unwrap()],
            &cex.iter()
                .map(|&v| if v { !0u64 } else { 0 })
                .collect::<Vec<_>>(),
            &[false, false],
        );
        let vb = eval64(
            &b,
            &lib,
            &[b.net_by_name("x").unwrap(), b.net_by_name("y").unwrap()],
            &cex.iter()
                .map(|&v| if v { !0u64 } else { 0 })
                .collect::<Vec<_>>(),
            &[false, false],
        );
        assert_ne!(
            va[a.net_by_name("out").unwrap().index()] & 1,
            vb[b.net_by_name("out").unwrap().index()] & 1
        );
        let r = check_equiv_random(&a, &lib, &b, &lib, None, 4, 1).unwrap();
        assert!(!r.equivalent);
    }

    #[test]
    fn output_parity_flips_comparison() {
        let (a, mut b) = equivalent_pair();
        // b computes NAND (BUF instead of INV) but declared parity
        // true makes it equivalent again.
        let bn = b.net_by_name("n").unwrap();
        let by = b.net_by_name("out").unwrap();
        b.retain_gates(|g| g.name != "g1");
        b.add_gate("g1", "BUF", GateKind::Comb, vec![bn], vec![by]);
        let lib = Library::lib180();
        let r = check_equiv(&a, &lib, &b, &lib, Some(&[true])).unwrap();
        assert!(r.equivalent);
    }

    #[test]
    fn registers_matched_by_order() {
        let mk = |cell: &str| {
            let mut n = Netlist::new("s");
            let a = n.add_input("a");
            let w = n.add_net("w");
            let q = n.add_net("q");
            n.add_gate("g", cell, GateKind::Comb, vec![a], vec![w]);
            n.add_gate("r", "DFF", GateKind::Seq, vec![w], vec![q]);
            n.mark_output(q);
            n
        };
        let lib = Library::lib180();
        let r = check_equiv(&mk("BUF"), &lib, &mk("BUF"), &lib, None).unwrap();
        assert!(r.equivalent);
        let r = check_equiv(&mk("BUF"), &lib, &mk("INV"), &lib, None).unwrap();
        assert!(!r.equivalent);
        assert!(r.failing_register.is_some());
    }

    #[test]
    fn port_mismatch_is_reported() {
        let (a, _) = equivalent_pair();
        let mut c = Netlist::new("c");
        let x = c.add_input("x");
        let z = c.add_input("z");
        let y = c.add_net("out");
        c.add_gate("g", "AND2", GateKind::Comb, vec![x, z], vec![y]);
        c.mark_output(y);
        let lib = Library::lib180();
        assert!(matches!(
            check_equiv(&a, &lib, &c, &lib, None),
            Err(LecError::PortMismatch { .. })
        ));
    }

    #[test]
    fn five_input_cells_convert_to_bdd() {
        // AOI32 in one design, its SOP expansion in the other.
        let mut a = Netlist::new("a");
        let ins: Vec<NetId> = (0..5).map(|i| a.add_input(format!("i{i}"))).collect();
        let y = a.add_net("out");
        a.add_gate("g", "AOI32", GateKind::Comb, ins.clone(), vec![y]);
        a.mark_output(y);

        let mut b = Netlist::new("b");
        let bins: Vec<NetId> = (0..5).map(|i| b.add_input(format!("i{i}"))).collect();
        let t1 = b.add_net("t1");
        let t2 = b.add_net("t2");
        let t3 = b.add_net("t3");
        let o = b.add_net("out");
        b.add_gate(
            "g1",
            "AND3",
            GateKind::Comb,
            vec![bins[0], bins[1], bins[2]],
            vec![t1],
        );
        b.add_gate(
            "g2",
            "AND2",
            GateKind::Comb,
            vec![bins[3], bins[4]],
            vec![t2],
        );
        b.add_gate("g3", "OR2", GateKind::Comb, vec![t1, t2], vec![t3]);
        b.add_gate("g4", "INV", GateKind::Comb, vec![t3], vec![o]);
        b.mark_output(o);

        let lib = Library::lib180();
        let r = check_equiv(&a, &lib, &b, &lib, None).unwrap();
        assert!(r.equivalent, "AOI32 BDD conversion broken");
    }
}
