//! Parasitic extraction: per-net resistance, ground capacitance and
//! same-layer coupling capacitance from routed geometry.
//!
//! This crate stands in for the layout extractor (Virtuoso) in the
//! paper's flow. The models are deliberately simple but preserve what
//! the security argument depends on:
//!
//! * wire R and C grow linearly with routed length,
//! * **coupling capacitance between parallel same-layer wires decays
//!   with track distance** — so two differential wires routed in
//!   adjacent tracks see (a) essentially the same environment and (b)
//!   mutual coupling that affects both rails symmetrically,
//! * vias contribute fixed R and C.
//!
//! [`extract`] produces [`Parasitics`]; [`pair_mismatch`] computes the
//! differential-pair capacitance mismatch report that quantifies how
//! well the paper's fat-wire decomposition balances the two rails.
//!
//! # Example
//!
//! ```
//! use secflow_extract::Technology;
//!
//! let tech = Technology::default();
//! assert!(tech.c_ground_ff_per_track > 0.0);
//! ```

use std::collections::BTreeMap;

use secflow_exec::{par_map, tree_sum};
use secflow_netlist::{NetId, Netlist};
use secflow_pnr::{is_horizontal, RoutedDesign};

/// Extraction technology constants. Units: Ω, fF, routing tracks
/// (one track = [`secflow_cells::TRACK_UM`] µm).
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Wire resistance per track of length.
    pub r_ohm_per_track: f64,
    /// Wire capacitance to the substrate (area + fringe) per track.
    pub c_ground_ff_per_track: f64,
    /// Coupling capacitance per track of overlap between parallel
    /// wires one track apart; falls off as `1/d` for distance `d`.
    pub c_coupling_ff_per_track: f64,
    /// Maximum coupling distance considered, in tracks.
    pub coupling_range: i32,
    /// Via resistance.
    pub r_via_ohm: f64,
    /// Via capacitance.
    pub c_via_ff: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Technology {
            r_ohm_per_track: 0.25,
            c_ground_ff_per_track: 0.13,
            c_coupling_ff_per_track: 0.09,
            coupling_range: 3,
            r_via_ohm: 2.0,
            c_via_ff: 0.3,
        }
    }
}

impl Technology {
    /// Coupling capacitance per track of overlap at `d` tracks of
    /// separation (0 for `d` out of range).
    pub fn coupling_at(&self, d: i32) -> f64 {
        if d >= 1 && d <= self.coupling_range {
            self.c_coupling_ff_per_track / f64::from(d)
        } else {
            0.0
        }
    }
}

/// Extracted parasitics of one net.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetParasitics {
    /// Total wire + via resistance in Ω.
    pub r_ohm: f64,
    /// Capacitance to ground in fF (wire + vias; pin caps are added by
    /// the simulator from the cell library).
    pub c_ground_ff: f64,
    /// Coupling capacitances to neighbouring nets: `(other, fF)`.
    pub couplings: Vec<(NetId, f64)>,
}

impl NetParasitics {
    /// Total capacitance seen by a switching driver: ground plus all
    /// coupling capacitance (worst-case quiet neighbours).
    pub fn total_cap_ff(&self) -> f64 {
        self.c_ground_ff + self.couplings.iter().map(|&(_, c)| c).sum::<f64>()
    }
}

/// Extracted parasitics for a whole design, indexed by [`NetId`].
#[derive(Debug, Clone, Default)]
pub struct Parasitics {
    /// Per-net records (nets without routed geometry have zeroes).
    pub nets: Vec<NetParasitics>,
}

impl Parasitics {
    /// The record for `net`.
    pub fn net(&self, net: NetId) -> &NetParasitics {
        &self.nets[net.index()]
    }

    /// Total wire capacitance of the design in fF.
    pub fn total_wire_cap_ff(&self) -> f64 {
        self.nets.iter().map(|n| n.c_ground_ff).sum()
    }
}

/// A straight wire span used for coupling detection:
/// `(net, fixed coordinate, span start, span end)` per layer
/// orientation.
type Span = (NetId, i32, i32, i32);

/// Extraction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// A technology constant is NaN, infinite or negative.
    BadTechnology {
        /// Name of the offending parameter.
        param: &'static str,
        /// Its value.
        value: f64,
    },
    /// A routed net's id does not exist in the netlist.
    UnknownNet {
        /// The out-of-range net index.
        index: usize,
        /// Number of nets in the netlist.
        net_count: usize,
    },
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::BadTechnology { param, value } => {
                write!(f, "technology parameter `{param}` has invalid value {value}")
            }
            ExtractError::UnknownNet { index, net_count } => {
                write!(
                    f,
                    "routed net index {index} out of range (netlist has {net_count} nets)"
                )
            }
        }
    }
}

impl std::error::Error for ExtractError {}

impl Technology {
    /// Validates that every constant is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::BadTechnology`] naming the first bad
    /// parameter.
    pub fn validate(&self) -> Result<(), ExtractError> {
        let params: [(&'static str, f64); 5] = [
            ("r_ohm_per_track", self.r_ohm_per_track),
            ("c_ground_ff_per_track", self.c_ground_ff_per_track),
            ("c_coupling_ff_per_track", self.c_coupling_ff_per_track),
            ("r_via_ohm", self.r_via_ohm),
            ("c_via_ff", self.c_via_ff),
        ];
        for (param, value) in params {
            if !value.is_finite() || value < 0.0 {
                return Err(ExtractError::BadTechnology { param, value });
            }
        }
        Ok(())
    }
}

/// Validating wrapper around [`extract`]: rejects NaN/negative
/// technology constants and routed nets that do not exist in `nl`
/// before running the extraction itself.
///
/// # Errors
///
/// Returns [`ExtractError`] on a bad technology parameter or a routed
/// net id out of range.
pub fn try_extract(
    design: &RoutedDesign,
    nl: &Netlist,
    tech: &Technology,
) -> Result<Parasitics, ExtractError> {
    tech.validate()?;
    for rn in &design.nets {
        if rn.net.index() >= nl.net_count() {
            return Err(ExtractError::UnknownNet {
                index: rn.net.index(),
                net_count: nl.net_count(),
            });
        }
    }
    Ok(extract(design, nl, tech))
}

/// Extracts parasitics from a routed design.
///
/// Lengths are converted to physical tracks using the design's
/// [`secflow_pnr::GridPitch`], so fat (double-pitch) designs extract
/// with their true physical dimensions.
pub fn extract(design: &RoutedDesign, nl: &Netlist, tech: &Technology) -> Parasitics {
    let scale = f64::from(design.placed.pitch.tracks());
    let mut nets = vec![NetParasitics::default(); nl.net_count()];

    // R and ground C: one parallel task per routed net, partial sums
    // merged in input order so the accumulation is thread-count
    // independent.
    let rc: Vec<(f64, f64)> = par_map(&design.nets, |rn| {
        let (mut r, mut c) = (0.0f64, 0.0f64);
        for s in &rn.segments {
            if s.is_via() {
                r += tech.r_via_ohm;
                c += tech.c_via_ff;
            } else {
                let len = f64::from(s.len()) * scale;
                r += len * tech.r_ohm_per_track;
                c += len * tech.c_ground_ff_per_track;
            }
        }
        (r, c)
    });
    for (rn, (r, c)) in design.nets.iter().zip(rc) {
        let p = &mut nets[rn.net.index()];
        p.r_ohm += r;
        p.c_ground_ff += c;
    }

    // Coupling: same-layer parallel overlap. Horizontal wires couple
    // across y; vertical wires across x. Ordered maps everywhere:
    // per-pair capacitance is a sum of f64 contributions, so the
    // iteration (= accumulation) order must not depend on hashing.
    let mut spans_by_layer: BTreeMap<u8, Vec<Span>> = BTreeMap::new();
    for rn in &design.nets {
        for s in &rn.segments {
            if s.is_via() {
                continue;
            }
            let span = if is_horizontal(s.a.layer) {
                let (x0, x1) = (s.a.x.min(s.b.x), s.a.x.max(s.b.x));
                (rn.net, s.a.y, x0, x1)
            } else {
                let (y0, y1) = (s.a.y.min(s.b.y), s.a.y.max(s.b.y));
                (rn.net, s.a.x, y0, y1)
            };
            spans_by_layer.entry(s.a.layer).or_default().push(span);
        }
    }
    let mut pair_caps: BTreeMap<(NetId, NetId), Vec<f64>> = BTreeMap::new();
    for spans in spans_by_layer.values() {
        couple_spans(spans, tech, scale, &mut pair_caps);
    }
    for (&(a, b), caps) in &pair_caps {
        // Fixed-shape reduction: the pair's total is one specific f64
        // for a given contribution list, at any thread count.
        let c = tree_sum(caps);
        nets[a.index()].couplings.push((b, c));
        nets[b.index()].couplings.push((a, c));
    }
    for n in &mut nets {
        n.couplings.sort_by_key(|&(id, _)| id);
    }

    secflow_obs::add(secflow_obs::Counter::ExtractNets, design.nets.len() as u64);
    secflow_obs::add(secflow_obs::Counter::ExtractCouplings, pair_caps.len() as u64);

    Parasitics { nets }
}

/// Collects coupling contributions between parallel spans on one
/// orientation, keyed by ordered net pair. Parallel over occupied
/// coordinates; each coordinate's contributions are generated in scan
/// order and merged in coordinate order.
fn couple_spans(
    spans: &[Span],
    tech: &Technology,
    scale: f64,
    pair_caps: &mut BTreeMap<(NetId, NetId), Vec<f64>>,
) {
    // Bucket spans by their fixed coordinate.
    let mut by_coord: BTreeMap<i32, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        by_coord.entry(s.1).or_default().push(s);
    }
    let coords: Vec<i32> = by_coord.keys().copied().collect();
    let contribs: Vec<Vec<((NetId, NetId), f64)>> = par_map(&coords, |&c0| {
        let list = &by_coord[&c0];
        let mut out = Vec::new();
        for d in 1..=tech.coupling_range {
            let Some(other) = by_coord.get(&(c0 + d)) else {
                continue;
            };
            for &&(na, _, a0, a1) in list {
                for &&(nb, _, b0, b1) in other {
                    if na == nb {
                        continue;
                    }
                    let overlap = a1.min(b1) - a0.max(b0);
                    if overlap <= 0 {
                        continue;
                    }
                    let cap = f64::from(overlap) * scale * tech.coupling_at(d);
                    let key = if na < nb { (na, nb) } else { (nb, na) };
                    out.push((key, cap));
                }
            }
        }
        out
    });
    for list in contribs {
        for (key, cap) in list {
            pair_caps.entry(key).or_default().push(cap);
        }
    }
}

/// Capacitance-mismatch report for one differential pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMismatch {
    /// True-rail net.
    pub net_t: NetId,
    /// False-rail net.
    pub net_f: NetId,
    /// Total cap of the true rail in fF.
    pub cap_t_ff: f64,
    /// Total cap of the false rail in fF.
    pub cap_f_ff: f64,
    /// Relative mismatch `|Ct − Cf| / ((Ct + Cf)/2)` (0 when both are
    /// zero).
    pub relative: f64,
}

/// Computes the capacitance mismatch of each differential pair — the
/// quantity the paper's differential-pair routing minimizes. The
/// mutual coupling between the two rails of a pair is excluded (it
/// loads both rails identically by symmetry).
pub fn pair_mismatch(parasitics: &Parasitics, pairs: &[(NetId, NetId)]) -> Vec<PairMismatch> {
    pairs
        .iter()
        .map(|&(t, f)| {
            let cap = |a: NetId, b: NetId| {
                let p = parasitics.net(a);
                p.c_ground_ff
                    + p.couplings
                        .iter()
                        .filter(|&&(o, _)| o != b)
                        .map(|&(_, c)| c)
                        .sum::<f64>()
            };
            let ct = cap(t, f);
            let cf = cap(f, t);
            let mean = (ct + cf) / 2.0;
            PairMismatch {
                net_t: t,
                net_f: f,
                cap_t_ff: ct,
                cap_f_ff: cf,
                relative: if mean > 0.0 {
                    (ct - cf).abs() / mean
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;
    use secflow_pnr::{
        GridPitch, PlacedCell, PlacedDesign, Point, RoutedNet, Segment, LAYER_H, LAYER_V,
    };

    fn netlist_with_nets(n: usize) -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        for i in 0..n {
            let y = nl.add_net(format!("n{i}"));
            nl.add_gate(format!("g{i}"), "BUF", GateKind::Comb, vec![a], vec![y]);
        }
        nl
    }

    fn design_with(nl: &Netlist, nets: Vec<RoutedNet>, pitch: GridPitch) -> RoutedDesign {
        RoutedDesign {
            placed: PlacedDesign {
                name: "x".into(),
                width: 100,
                height: 100,
                row_height: 8,
                pitch,
                cells: vec![PlacedCell { x: 0, row: 0 }; nl.gate_count()],
                input_pads: vec![],
                output_pads: vec![],
            },
            nets,
        }
    }

    fn hseg(y: i32, x0: i32, x1: i32) -> Segment {
        Segment::new(Point::new(LAYER_H, x0, y), Point::new(LAYER_H, x1, y))
    }

    #[test]
    fn rc_scales_with_length() {
        let nl = netlist_with_nets(2);
        let n0 = nl.net_by_name("n0").unwrap();
        let n1 = nl.net_by_name("n1").unwrap();
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: n0,
                    segments: vec![hseg(0, 0, 10)],
                },
                RoutedNet {
                    net: n1,
                    segments: vec![hseg(20, 0, 30)],
                },
            ],
            GridPitch::Normal,
        );
        let tech = Technology::default();
        let p = extract(&d, &nl, &tech);
        let r0 = p.net(n0).r_ohm;
        let r1 = p.net(n1).r_ohm;
        assert!((r1 / r0 - 3.0).abs() < 1e-9);
        assert!((p.net(n1).c_ground_ff / p.net(n0).c_ground_ff - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fat_pitch_doubles_length() {
        let nl = netlist_with_nets(1);
        let n0 = nl.net_by_name("n0").unwrap();
        let mk = |pitch| {
            design_with(
                &nl,
                vec![RoutedNet {
                    net: n0,
                    segments: vec![hseg(0, 0, 10)],
                }],
                pitch,
            )
        };
        let tech = Technology::default();
        let normal = extract(&mk(GridPitch::Normal), &nl, &tech);
        let fat = extract(&mk(GridPitch::Fat), &nl, &tech);
        assert!((fat.net(n0).r_ohm / normal.net(n0).r_ohm - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_wires_couple_with_overlap() {
        let nl = netlist_with_nets(2);
        let n0 = nl.net_by_name("n0").unwrap();
        let n1 = nl.net_by_name("n1").unwrap();
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: n0,
                    segments: vec![hseg(5, 0, 20)],
                },
                RoutedNet {
                    net: n1,
                    segments: vec![hseg(6, 10, 30)],
                },
            ],
            GridPitch::Normal,
        );
        let tech = Technology::default();
        let p = extract(&d, &nl, &tech);
        let c01 = p
            .net(n0)
            .couplings
            .iter()
            .find(|&&(o, _)| o == n1)
            .map(|&(_, c)| c)
            .unwrap();
        // Overlap is x 10..20 = 10 tracks at distance 1.
        assert!((c01 - 10.0 * tech.c_coupling_ff_per_track).abs() < 1e-9);
        // Symmetric.
        let c10 = p
            .net(n1)
            .couplings
            .iter()
            .find(|&&(o, _)| o == n0)
            .map(|&(_, c)| c)
            .unwrap();
        assert!((c01 - c10).abs() < 1e-12);
    }

    #[test]
    fn coupling_decays_with_distance() {
        let tech = Technology::default();
        assert!(tech.coupling_at(1) > tech.coupling_at(2));
        assert!(tech.coupling_at(2) > tech.coupling_at(3));
        assert_eq!(tech.coupling_at(4), 0.0);
        assert_eq!(tech.coupling_at(0), 0.0);
    }

    #[test]
    fn vertical_wires_couple_too() {
        let nl = netlist_with_nets(2);
        let n0 = nl.net_by_name("n0").unwrap();
        let n1 = nl.net_by_name("n1").unwrap();
        let vseg = |x: i32, y0: i32, y1: i32| {
            Segment::new(Point::new(LAYER_V, x, y0), Point::new(LAYER_V, x, y1))
        };
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: n0,
                    segments: vec![vseg(5, 0, 8)],
                },
                RoutedNet {
                    net: n1,
                    segments: vec![vseg(6, 0, 8)],
                },
            ],
            GridPitch::Normal,
        );
        let p = extract(&d, &nl, &Technology::default());
        assert_eq!(p.net(n0).couplings.len(), 1);
    }

    #[test]
    fn different_layers_do_not_couple() {
        let nl = netlist_with_nets(2);
        let n0 = nl.net_by_name("n0").unwrap();
        let n1 = nl.net_by_name("n1").unwrap();
        let vseg = Segment::new(Point::new(LAYER_V, 5, 0), Point::new(LAYER_V, 5, 20));
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: n0,
                    segments: vec![hseg(6, 0, 20)],
                },
                RoutedNet {
                    net: n1,
                    segments: vec![vseg],
                },
            ],
            GridPitch::Normal,
        );
        let p = extract(&d, &nl, &Technology::default());
        assert!(p.net(n0).couplings.is_empty());
    }

    #[test]
    fn parallel_pair_has_zero_mismatch() {
        // Two identical parallel wires, translated by one track — the
        // decomposition result. Their caps must match exactly.
        let nl = netlist_with_nets(2);
        let t = nl.net_by_name("n0").unwrap();
        let f = nl.net_by_name("n1").unwrap();
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: t,
                    segments: vec![hseg(10, 0, 40)],
                },
                RoutedNet {
                    net: f,
                    segments: vec![hseg(11, 1, 41)],
                },
            ],
            GridPitch::Normal,
        );
        let p = extract(&d, &nl, &Technology::default());
        let reports = pair_mismatch(&p, &[(t, f)]);
        assert!(
            reports[0].relative < 1e-9,
            "mismatch {}",
            reports[0].relative
        );
    }

    #[test]
    fn diverging_pair_has_mismatch() {
        let nl = netlist_with_nets(2);
        let t = nl.net_by_name("n0").unwrap();
        let f = nl.net_by_name("n1").unwrap();
        let d = design_with(
            &nl,
            vec![
                RoutedNet {
                    net: t,
                    segments: vec![hseg(10, 0, 40)],
                },
                RoutedNet {
                    net: f,
                    segments: vec![hseg(50, 0, 25)],
                },
            ],
            GridPitch::Normal,
        );
        let p = extract(&d, &nl, &Technology::default());
        let reports = pair_mismatch(&p, &[(t, f)]);
        assert!(reports[0].relative > 0.3);
    }

    #[test]
    fn total_cap_includes_couplings() {
        let p = NetParasitics {
            r_ohm: 1.0,
            c_ground_ff: 2.0,
            couplings: vec![(NetId(7), 0.5), (NetId(9), 0.25)],
        };
        assert!((p.total_cap_ff() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn try_extract_rejects_nan_technology() {
        let nl = netlist_with_nets(1);
        let d = design_with(&nl, vec![], GridPitch::Normal);
        let tech = Technology {
            c_ground_ff_per_track: f64::NAN,
            ..Technology::default()
        };
        let err = try_extract(&d, &nl, &tech).unwrap_err();
        assert!(matches!(
            err,
            ExtractError::BadTechnology {
                param: "c_ground_ff_per_track",
                ..
            }
        ));
    }

    #[test]
    fn try_extract_rejects_negative_technology() {
        let nl = netlist_with_nets(1);
        let d = design_with(&nl, vec![], GridPitch::Normal);
        let tech = Technology {
            r_via_ohm: -2.0,
            ..Technology::default()
        };
        let err = try_extract(&d, &nl, &tech).unwrap_err();
        assert!(matches!(
            err,
            ExtractError::BadTechnology {
                param: "r_via_ohm",
                ..
            }
        ));
    }

    #[test]
    fn try_extract_rejects_foreign_net_id() {
        let nl = netlist_with_nets(1);
        let foreign = NetId(99);
        let d = design_with(
            &nl,
            vec![RoutedNet {
                net: foreign,
                segments: vec![hseg(2, 0, 5)],
            }],
            GridPitch::Normal,
        );
        let err = try_extract(&d, &nl, &Technology::default()).unwrap_err();
        assert!(matches!(err, ExtractError::UnknownNet { index: 99, .. }));
    }

    #[test]
    fn try_extract_matches_extract_on_valid_input() {
        let nl = netlist_with_nets(2);
        let n0 = nl.net_by_name("n0").unwrap();
        let d = design_with(
            &nl,
            vec![RoutedNet {
                net: n0,
                segments: vec![hseg(2, 0, 8)],
            }],
            GridPitch::Normal,
        );
        let a = try_extract(&d, &nl, &Technology::default()).unwrap();
        let b = extract(&d, &nl, &Technology::default());
        assert_eq!(a.nets, b.nets);
    }
}

/// Writes the extracted design as a SPICE-like netlist: one subcircuit
/// call per gate and an RC element pair per net — the "spice netlists,
/// which include the layout parasitics" that the paper extracts in
/// Virtuoso before simulation.
///
/// The text is for inspection and diffing; the workspace's simulator
/// consumes [`Parasitics`] directly.
pub fn write_spice(nl: &Netlist, parasitics: &Parasitics, title: &str) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "* {title} — extracted netlist with layout parasitics");
    let _ = writeln!(s, ".GLOBAL VDD VSS");
    for (i, g) in nl.gates().iter().enumerate() {
        let pins: Vec<String> = g
            .inputs
            .iter()
            .chain(g.outputs.iter())
            .map(|&n| sanitize_node(&nl.net(n).name))
            .collect();
        let _ = writeln!(
            s,
            "X{i}_{} {} {}",
            sanitize_node(&g.name),
            pins.join(" "),
            g.cell
        );
    }
    let mut r_count = 0usize;
    let mut c_count = 0usize;
    for id in nl.net_ids() {
        let p = parasitics.net(id);
        if p.r_ohm == 0.0 && p.c_ground_ff == 0.0 && p.couplings.is_empty() {
            continue;
        }
        let node = sanitize_node(&nl.net(id).name);
        if p.r_ohm > 0.0 {
            // Lumped wire resistance between the driver-side node and
            // the loads-side node.
            let _ = writeln!(s, "R{r_count} {node}_drv {node} {:.3}", p.r_ohm);
            r_count += 1;
        }
        if p.c_ground_ff > 0.0 {
            let _ = writeln!(s, "C{c_count} {node} VSS {:.3}f", p.c_ground_ff);
            c_count += 1;
        }
        for &(other, cc) in &p.couplings {
            // Emit each coupling once (low id side).
            if id < other {
                let _ = writeln!(
                    s,
                    "C{c_count} {node} {} {:.3}f",
                    sanitize_node(&nl.net(other).name),
                    cc
                );
                c_count += 1;
            }
        }
    }
    let _ = writeln!(s, ".END");
    s
}

/// SPICE node names: conservative character set.
fn sanitize_node(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod spice_tests {
    use super::*;
    use secflow_netlist::GateKind;
    use secflow_pnr::{GridPitch, PlacedCell, PlacedDesign, Point, RoutedNet, Segment, LAYER_H};

    #[test]
    fn spice_netlist_lists_gates_and_rc() {
        let mut nl = Netlist::new("sp");
        let a = nl.add_input("a");
        let y = nl.add_net("y[0]");
        nl.add_gate("g0", "INV", GateKind::Comb, vec![a], vec![y]);
        nl.mark_output(y);
        let design = secflow_pnr::RoutedDesign {
            placed: PlacedDesign {
                name: "sp".into(),
                width: 30,
                height: 16,
                row_height: 8,
                pitch: GridPitch::Normal,
                cells: vec![PlacedCell { x: 0, row: 0 }],
                input_pads: vec![],
                output_pads: vec![],
            },
            nets: vec![RoutedNet {
                net: y,
                segments: vec![Segment::new(
                    Point::new(LAYER_H, 0, 4),
                    Point::new(LAYER_H, 10, 4),
                )],
            }],
        };
        let par = extract(&design, &nl, &Technology::default());
        let text = write_spice(&nl, &par, "test");
        assert!(text.contains("X0_g0 a y_0_ INV"));
        assert!(text.contains("R0 y_0__drv y_0_"));
        assert!(text.contains("VSS"));
        assert!(text.trim_end().ends_with(".END"));
    }
}
