//! Experiment E2 — Fig. 3: fat routing and its decomposition into the
//! differential design.
//!
//! Routes a small design in fat mode, decomposes it, and prints both
//! the geometric statistics and an ASCII rendering of one metal layer
//! before and after decomposition (the visual analogue of Fig. 3).
//!
//! Usage: `exp_fig3_decompose`.

use secflow_cells::Library;
use secflow_core::{decompose, substitute};
use secflow_netlist::{GateKind, Netlist};
use secflow_pnr::{
    is_horizontal, place, route, GridPitch, PlaceOptions, RouteOptions, RoutedDesign,
};

/// The six-gate example of Fig. 3.
fn six_gate_design() -> Netlist {
    let mut nl = Netlist::new("fig3");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let w1 = nl.add_net("w1");
    let w2 = nl.add_net("w2");
    let w3 = nl.add_net("w3");
    let w4 = nl.add_net("w4");
    let w5 = nl.add_net("w5");
    let y = nl.add_net("y");
    nl.add_gate("g1", "AND2", GateKind::Comb, vec![a, b], vec![w1]);
    nl.add_gate("g2", "OR2", GateKind::Comb, vec![c, d], vec![w2]);
    nl.add_gate("g3", "XOR2", GateKind::Comb, vec![w1, w2], vec![w3]);
    nl.add_gate("g4", "NAND2", GateKind::Comb, vec![w1, c], vec![w4]);
    nl.add_gate("g5", "AOI21", GateKind::Comb, vec![w3, w4, a], vec![w5]);
    nl.add_gate("g6", "INV", GateKind::Comb, vec![w5], vec![y]);
    nl.mark_output(y);
    nl
}

/// Renders one layer of a routed design as ASCII art.
fn render(design: &RoutedDesign, layer: u8, max_w: i32, max_h: i32) -> String {
    let w = design.placed.width.min(max_w);
    let h = design.placed.height.min(max_h);
    let mut canvas = vec![vec![' '; w as usize]; h as usize];
    for (i, rn) in design.nets.iter().enumerate() {
        let ch = char::from(b'0' + (i % 10) as u8);
        for s in &rn.segments {
            if s.is_via() {
                if s.a.x < w && s.a.y < h {
                    canvas[s.a.y as usize][s.a.x as usize] = '+';
                }
                continue;
            }
            if s.a.layer != layer {
                continue;
            }
            if is_horizontal(layer) {
                let (x0, x1) = (s.a.x.min(s.b.x), s.a.x.max(s.b.x));
                for x in x0..=x1.min(w - 1) {
                    if s.a.y < h {
                        canvas[s.a.y as usize][x as usize] = ch;
                    }
                }
            } else {
                let (y0, y1) = (s.a.y.min(s.b.y), s.a.y.max(s.b.y));
                for y in y0..=y1.min(h - 1) {
                    if s.a.x < w {
                        canvas[y as usize][s.a.x as usize] = ch;
                    }
                }
            }
        }
    }
    canvas
        .into_iter()
        .rev()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let _run = opts.start_run("exp_fig3_decompose");
    let nl = six_gate_design();
    let lib = Library::lib180();
    let sub = substitute(&nl, &lib).expect("substitution");

    let placed = secflow_bench::ok_or_exit(place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            pitch: GridPitch::Fat,
            ..Default::default()
        },
    ));
    let fat =
        route(&sub.fat, &sub.fat_lib, &placed, &RouteOptions::default()).expect("fat routing");
    let diff = secflow_bench::ok_or_exit(decompose(&fat, &sub));

    println!("=== Fig. 3 reproduction: fat design (left) vs differential design (right) ===\n");
    println!(
        "fat design:  {} nets, wirelength {} fat units, {} vias",
        fat.nets.len(),
        fat.total_wirelength(),
        fat.total_vias()
    );
    println!(
        "differential: {} nets, wirelength {} tracks, {} vias",
        diff.nets.len(),
        diff.total_wirelength(),
        diff.total_vias()
    );
    assert_eq!(diff.nets.len(), 2 * fat.nets.len());
    assert_eq!(diff.total_wirelength(), 4 * fat.total_wirelength());
    println!("every fat wire decomposed into exactly 2 rails; rail length = 2x fat units\n");

    println!("--- fat design, horizontal layer 0 (one char per fat track) ---");
    println!("{}", render(&fat, 0, 80, 40));
    println!("\n--- differential design, horizontal layer 0 (one char per track) ---");
    println!("{}", render(&diff, 0, 160, 80));

    // Pairwise geometry check: every rail pair parallel at (1, 1).
    let mut checked = 0;
    for pair in diff.nets.chunks(2) {
        for (st, sf) in pair[0].segments.iter().zip(&pair[1].segments) {
            assert_eq!(sf.a.x - st.a.x, 1);
            assert_eq!(sf.a.y - st.a.y, 1);
            checked += 1;
        }
    }
    println!("\nverified {checked} segment pairs: rails parallel at 1-track offset everywhere");
}
