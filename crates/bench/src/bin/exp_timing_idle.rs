//! Experiment E9 — §4.1: can a power trace expose inserted idle
//! cycles?
//!
//! Drives both implementations with an alternating pattern of active
//! cycles (fresh random plaintext) and idle cycles (inputs held), and
//! measures how visible the idle cycles are in the per-cycle energy:
//! the d′ sensitivity index and an attacker's classification accuracy.
//!
//! In the regular design idle cycles draw almost nothing; in WDDL
//! every gate still has its one switching event per cycle.
//!
//! Usage: `exp_timing_idle [n_cycles] [seed]` (defaults 400, 3).

use secflow_rand::{RngExt, SeedableRng, StdRng};

use secflow_bench::{build_des_implementations, header, paper_sim_config, row};
use secflow_dpa::timing::{idle_classification_accuracy, idle_visibility};
use secflow_sim::{simulate_single_ended, simulate_wddl};

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(400);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let _run = opts.start_run("exp_timing_idle");

    eprintln!("building both implementations through the flows...");
    let imps = build_des_implementations();
    let cfg = paper_sim_config();

    // Stimulus: a fresh plaintext every 6 cycles, inputs held in
    // between. The datapath is a 2-deep pipeline, so cycles 1 and 2
    // after a change still digest it; cycles 3..5 are genuinely idle.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vectors: Vec<Vec<bool>> = Vec::with_capacity(n);
    let mut idle_flags = Vec::with_capacity(n);
    let mut current: Vec<bool> = (0..16).map(|_| rng.random()).collect();
    for c in 0..n {
        if c % 6 == 0 {
            current = (0..16).map(|_| rng.random()).collect();
        }
        vectors.push(current.clone());
        idle_flags.push(c % 6 >= 3);
    }

    eprintln!("simulating {n} cycles on each implementation...");
    let reg = simulate_single_ended(
        &imps.regular.netlist,
        &imps.lib,
        Some(&imps.regular.parasitics),
        &cfg,
        &vectors,
    )
    .expect("regular netlist simulates");
    let sec = simulate_wddl(
        &imps.secure.substitution.differential,
        &imps.secure.substitution.diff_lib,
        Some(&imps.secure.parasitics),
        &cfg,
        &imps.secure.substitution.input_pairs,
        &vectors,
    )
    .expect("WDDL netlist simulates");

    // Skip warm-up cycles (registers settling).
    let skip = 4;
    let reg_e = &reg.cycle_energy_fj[skip..];
    let sec_e = &sec.cycle_energy_fj[skip..];
    let flags = &idle_flags[skip..];

    let mean = |v: &[f64], f: bool| {
        let sel: Vec<f64> = v
            .iter()
            .zip(flags)
            .filter(|&(_, &fl)| fl == f)
            .map(|(&e, _)| e)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };

    header("E9: idle-cycle visibility in the power trace (§4.1)");
    row(
        "mean active-cycle energy (fJ)",
        format!("{:.0}", mean(reg_e, false)),
        format!("{:.0}", mean(sec_e, false)),
    );
    row(
        "mean idle-cycle energy (fJ)",
        format!("{:.0}", mean(reg_e, true)),
        format!("{:.0}", mean(sec_e, true)),
    );
    let reg_d = idle_visibility(reg_e, flags);
    let sec_d = idle_visibility(sec_e, flags);
    row(
        "idle/active separation d'",
        format!("{reg_d:.2}"),
        format!("{sec_d:.2}"),
    );
    let reg_acc = idle_classification_accuracy(reg_e, flags);
    let sec_acc = idle_classification_accuracy(sec_e, flags);
    row(
        "attacker accuracy (%)",
        format!("{:.1}", reg_acc * 100.0),
        format!("{:.1}", sec_acc * 100.0),
    );
    println!(
        "\npaper's claim: idle cycles are exposed in the regular design (expect d' >> 1,\n\
         accuracy ~100%) and hidden in WDDL (expect d' near 0, accuracy near 50%)."
    );
    assert!(reg_d > sec_d, "WDDL should reduce idle visibility");
}
