//! Experiment E11 — §4.3: Differential Fault Analysis via clock
//! glitching, and the WDDL redundant-encoding alarm.
//!
//! The attack raises the clock frequency so combinational paths miss
//! the capturing edge. The experiment sweeps the evaluation-phase
//! duration of the secure DES module and reports, at each point, how
//! many register captures saw the invalid `(0, 0)` code (alarms) and
//! whether every corrupted output was caught.
//!
//! Usage: `exp_dfa_glitch [n_cycles] [seed]` (defaults 60, 5).

use secflow_rand::{RngExt, SeedableRng, StdRng};

use secflow_bench::{build_des_implementations, paper_sim_config};
use secflow_dpa::dfa::glitch_sweep;

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    let _run = opts.start_run("exp_dfa_glitch");

    eprintln!("building the secure implementation...");
    let imps = build_des_implementations();
    let sub = &imps.secure.substitution;
    let cfg = paper_sim_config();

    let mut rng = StdRng::seed_from_u64(seed);
    let vectors: Vec<Vec<bool>> = (0..n)
        .map(|_| (0..16).map(|_| rng.random()).collect())
        .collect();

    println!("=== E11: clock-glitch sweep on the secure DES module (§4.3) ===\n");
    println!(
        "{:>12} {:>12} {:>10} {:>12} {:>10}",
        "precharge %", "eval ps", "alarms", "corrupted", "detected"
    );
    let fractions = [0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.98];
    let points = glitch_sweep(
        &sub.differential,
        &sub.diff_lib,
        Some(&imps.secure.parasitics),
        &cfg,
        &sub.input_pairs,
        &vectors,
        &fractions,
    );
    let points = secflow_bench::ok_or_exit(points);
    let mut attack_succeeded = false;
    for p in &points {
        let eval_ps = (cfg.period_ps as f64 * (1.0 - p.precharge_fraction)) as u64;
        println!(
            "{:>12.0} {:>12} {:>10} {:>12} {:>10}",
            p.precharge_fraction * 100.0,
            eval_ps,
            p.alarms,
            p.corrupted_outputs,
            if p.corrupted_outputs == 0 {
                "-"
            } else if p.faults_detected {
                "YES"
            } else {
                "MISSED"
            }
        );
        if p.corrupted_outputs > 0 && !p.faults_detected {
            attack_succeeded = true;
        }
    }
    println!(
        "\npaper's claim: every glitch-induced fault leaves some register input at (0,0),\n\
         so monitoring the code validity catches the attack before wrong data is used."
    );
    if attack_succeeded {
        println!("RESULT: some fault escaped detection — countermeasure violated!");
        std::process::exit(1);
    } else {
        println!("RESULT: all injected faults were detected by the (0,0) alarm.");
    }
}
