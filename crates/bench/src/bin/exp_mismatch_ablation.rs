//! Experiment E12 — ablation of §2.2: is the fat-wire differential-
//! pair routing actually necessary, or would WDDL cells with ordinary
//! routing suffice?
//!
//! Builds the same differential WDDL netlist twice:
//!
//! * **paper flow** — fat routing + interconnect decomposition (the
//!   two rails are parallel wires one track apart);
//! * **naive flow** — the differential netlist is placed and routed
//!   directly, each rail as an independent net.
//!
//! Reports the per-pair capacitance mismatch of both layouts and runs
//! the DPA against both.
//!
//! Usage: `exp_mismatch_ablation [n_traces] [seed]` (defaults 1000, 1).

use secflow_bench::{build_des_implementations, header_cols, paper_sim_config, row};
use secflow_sim::SimBackend;
use secflow_core::{decompose_styled, DecomposeStyle};
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::attack::mtd_scan;
use secflow_dpa::harness::{collect_des_traces, DesTarget};
use secflow_dpa::stats::EnergyStats;
use secflow_extract::{extract, pair_mismatch, Technology};
use secflow_pnr::{place, route, GridPitch, PlaceOptions, RouteOptions};

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let backend = opts.backend;
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let _run = opts.start_run("exp_mismatch_ablation");

    eprintln!("building the secure implementation (paper flow)...");
    let imps = build_des_implementations();
    let sub = &imps.secure.substitution;
    let pair_list: Vec<_> = sub.pairs.iter().map(|p| (p.t, p.f)).collect();

    eprintln!("routing the differential netlist naively (ablation)...");
    let naive_placed = secflow_bench::ok_or_exit(place(
        &sub.differential,
        &sub.diff_lib,
        &PlaceOptions {
            pitch: GridPitch::Normal,
            ..Default::default()
        },
    ));
    let naive_routed = route(
        &sub.differential,
        &sub.diff_lib,
        &naive_placed,
        &RouteOptions::default(),
    )
    .expect("naive routing");
    let tech = Technology::default();
    let naive_par = extract(&naive_routed, &sub.differential, &tech);

    let summarize = |par: &secflow_extract::Parasitics| -> (f64, f64) {
        let reports = pair_mismatch(par, &pair_list);
        let routed: Vec<_> = reports
            .iter()
            .filter(|m| m.cap_t_ff + m.cap_f_ff > 0.0)
            .collect();
        let mean = routed.iter().map(|m| m.relative).sum::<f64>() / routed.len() as f64;
        let max = routed.iter().map(|m| m.relative).fold(0.0, f64::max);
        (mean, max)
    };
    let (paper_mean, paper_max) = summarize(&imps.secure.parasitics);
    let (naive_mean, naive_max) = summarize(&naive_par);

    // E13: the paper's §2.2 hardening options — shields or wider pair
    // spacing ("the tradeoff is an increase in silicon area").
    let styled = |style: DecomposeStyle| {
        let d = secflow_bench::ok_or_exit(decompose_styled(&imps.secure.fat_routed, sub, style));
        let par = extract(&d, &sub.differential, &tech);
        summarize(&par)
    };
    let (spaced_mean, spaced_max) = styled(DecomposeStyle::Spaced);
    let (shield_mean, shield_max) = styled(DecomposeStyle::Shielded);

    println!("\n=== E12/E13: differential-pair capacitance mismatch ===");
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14}",
        "metric", "naive routing", "paper (dense)", "spaced", "shielded"
    );
    println!(
        "{:<24} {:>13.2}% {:>13.2}% {:>13.2}% {:>13.2}%",
        "mean pair mismatch",
        naive_mean * 100.0,
        paper_mean * 100.0,
        spaced_mean * 100.0,
        shield_mean * 100.0
    );
    println!(
        "{:<24} {:>13.2}% {:>13.2}% {:>13.2}% {:>13.2}%",
        "max pair mismatch",
        naive_max * 100.0,
        paper_max * 100.0,
        spaced_max * 100.0,
        shield_max * 100.0
    );
    println!(
        "{:<24} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x",
        "relative die area",
        1.0, // the naive layout sizes itself
        1.0,
        (DecomposeStyle::Spaced.scale() as f64 / 2.0).powi(2),
        (DecomposeStyle::Shielded.scale() as f64 / 2.0).powi(2)
    );

    eprintln!("\nsimulating {n} encryptions against both layouts...");
    let cfg = paper_sim_config();
    let step = (n / 20).max(10);
    let paper_set = secflow_bench::ok_or_exit(collect_des_traces(&imps.secure_target().with_backend(backend), &cfg, PAPER_KEY, n, seed));
    let naive_target = DesTarget {
        netlist: &sub.differential,
        lib: &sub.diff_lib,
        parasitics: Some(&naive_par),
        wddl_inputs: Some(&sub.input_pairs),
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let naive_set = secflow_bench::ok_or_exit(collect_des_traces(&naive_target, &cfg, PAPER_KEY, n, seed));

    let paper_scan = secflow_bench::analysis_or_exit(mtd_scan(
        &paper_set.traces,
        64,
        PAPER_KEY,
        step,
        paper_set.selector(),
    ));
    let naive_scan = secflow_bench::analysis_or_exit(mtd_scan(
        &naive_set.traces,
        64,
        PAPER_KEY,
        step,
        naive_set.selector(),
    ));

    let paper_stats = secflow_bench::analysis_or_exit(EnergyStats::try_of(&paper_set.energies, 1));
    let naive_stats = secflow_bench::analysis_or_exit(EnergyStats::try_of(&naive_set.energies, 1));
    header_cols(
        "power-signature quality (energy per encryption)",
        "paper flow",
        "naive routing",
    );
    row(
        "normalized energy deviation (%)",
        format!("{:.2}", paper_stats.ned * 100.0),
        format!("{:.2}", naive_stats.ned * 100.0),
    );
    row(
        "normalized std deviation (%)",
        format!("{:.3}", paper_stats.nsd * 100.0),
        format!("{:.3}", naive_stats.nsd * 100.0),
    );

    header_cols(
        "DPA outcome (both are WDDL; only the routing differs)",
        "paper flow",
        "naive routing",
    );
    row(
        "MTD",
        paper_scan
            .mtd
            .map_or("not disclosed".into(), |m| format!("{m}")),
        naive_scan
            .mtd
            .map_or("not disclosed".into(), |m| format!("{m}")),
    );
    let last = |s: &secflow_dpa::attack::MtdScan| {
        let p = s.points.last().expect("points");
        format!("{:.2}", p.correct_peak / p.best_wrong_peak.max(1e-12))
    };
    row(
        "final correct/wrong peak ratio",
        last(&paper_scan),
        last(&naive_scan),
    );
    println!(
        "\nthe paper's claim: WDDL logic alone is not enough — without matched\n\
         interconnect capacitances (fat routing + decomposition) the residual pair\n\
         mismatch restores a usable power side channel."
    );
}
