//! Experiment E12 — the Fig. 6 MTD curve pushed to a million traces.
//!
//! The paper's prototype comparison stops at 2000 measurements; its
//! §5 argument is that the secure implementation's residual leak is
//! small enough that disclosure needs orders of magnitude more. This
//! experiment runs the single-bit DPA MTD scan on the fused streaming
//! path ([`collect_des_analysis_streaming`]) so the full trace matrix
//! never exists: peak memory is one in-flight chunk plus the
//! O(points × guesses) accumulator state, regardless of `n`.
//!
//! Usage: `exp_mtd_1m [n_traces] [seed]` (defaults: 1 000 000, 1), or
//! `exp_mtd_1m --smoke` for the CI gate (a 3000-trace curve in
//! seconds). `--trace-store DIR` additionally appends every chunk to
//! an out-of-core trace store under `DIR/<implementation>` and then
//! replays it through fresh accumulators, asserting byte-identity.
//! `--sim-backend event|bitslice` selects the kernel; this experiment
//! defaults to the bit-sliced one (64 encryptions per word is what
//! makes 10⁶ windows tractable). Throughput and peak-RSS lines go to
//! stderr; stdout stays byte-deterministic.

use std::time::Instant;

use secflow_bench::{build_des_implementations, header, paper_sim_config};
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::harness::{
    analyze_trace_store, collect_des_analysis_streaming, AnalysisPlan, CampaignProgram,
};
use secflow_dpa::store::TraceStore;
use secflow_sim::SimBackend;

/// Encryptions simulated per streaming chunk: 64 bit-sliced batches.
const CHUNK: usize = 4096;

/// Peak resident-set size in kB from `/proc/self/status` (`VmHWM`),
/// if the platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    // Bit-sliced kernel unless the flag asks otherwise — at 10⁶
    // windows the event kernel is an order of magnitude off the pace.
    let explicit_backend = std::env::args().any(|a| a == "--sim-backend");
    let mut opts = secflow_bench::CommonOpts::parse();
    if !explicit_backend {
        opts.backend = SimBackend::Bitslice;
    }
    let backend = opts.backend;
    let smoke = opts.take_flag("--smoke");
    let store_root = match opts.args.iter().position(|a| a == "--trace-store") {
        Some(i) => {
            if i + 1 >= opts.args.len() {
                eprintln!("error: --trace-store requires a directory");
                std::process::exit(2);
            }
            opts.args.remove(i);
            Some(std::path::PathBuf::from(opts.args.remove(i)))
        }
        None => None,
    };
    let default_n = if smoke { 3000 } else { 1_000_000 };
    let n: usize = opts
        .args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let step = (n / 40).max(10);
    let _run = opts.start_run("exp_mtd_1m");

    eprintln!("building both implementations through the flows...");
    let imps = build_des_implementations();
    // The MTD statistic lives in a handful of leakage samples; 100
    // samples per cycle keeps the per-window work small enough that
    // 10⁶ encryptions finish in minutes without moving any peak.
    let cfg = secflow_sim::SimConfig {
        samples_per_cycle: 100,
        ..paper_sim_config()
    };
    let plan = AnalysisPlan {
        n_keys: 64,
        correct_key: PAPER_KEY,
        step: Some(step),
        dpa: true,
        cpa: false,
    };

    header(&format!(
        "Fig. 6 (top) at scale: MTD over {n} measurements (streaming)"
    ));
    for (name, target) in [
        ("reference", imps.regular_target().with_backend(backend)),
        ("secure", imps.secure_target().with_backend(backend)),
    ] {
        let program =
            secflow_bench::ok_or_exit(CampaignProgram::build(&target, &cfg));
        let store_dir = store_root.as_ref().map(|d| d.join(name));
        eprintln!("streaming {n} encryptions on the {name} implementation (K = {PAPER_KEY})...");
        let t0 = Instant::now();
        let analysis = secflow_bench::analysis_or_exit(collect_des_analysis_streaming(
            &program,
            &target,
            &cfg,
            PAPER_KEY,
            n,
            seed,
            &plan,
            CHUNK,
            store_dir.as_deref(),
        ));
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "{name}: {:.0} traces/sec ({n} traces in {secs:.1}s){}",
            n as f64 / secs,
            peak_rss_kb().map_or(String::new(), |kb| format!(", peak RSS {kb} kB")),
        );

        let scan = analysis.dpa_mtd.as_ref().expect("planned dpa mtd");
        println!("\n--- {name} implementation ---");
        println!("{:>9} {:>12} {:>14} {:>10}", "traces", "correct pk", "best wrong pk", "disclosed");
        for p in &scan.points {
            println!(
                "{:>9} {:>12.4} {:>14.4} {:>10}",
                p.traces,
                p.correct_peak,
                p.best_wrong_peak,
                if p.disclosed { "YES" } else { "no" }
            );
        }
        match scan.mtd {
            Some(m) => println!("MTD({name}) = {m} measurements"),
            None => println!("MTD({name}) = not disclosed within {n} measurements"),
        }

        if let Some(dir) = &store_dir {
            let store = secflow_bench::analysis_or_exit(TraceStore::open(dir));
            let replay = secflow_bench::analysis_or_exit(analyze_trace_store(&store, &plan));
            assert!(
                replay == analysis,
                "store replay diverged from the fused analysis"
            );
            println!(
                "trace store: {} traces in {} chunks, replay byte-identical",
                store.n_traces(),
                store.n_chunks()
            );
        }
    }
}
