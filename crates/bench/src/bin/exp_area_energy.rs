//! Experiments E3–E5 — the §3 design-example table.
//!
//! The paper reports, for the reference and secure implementations of
//! the Fig. 4 DES module:
//!
//! * layout area: 3782 µm² vs 12880 µm² (≈ 3.4×),
//! * mean energy per encryption: 4.6 pJ vs 27.1 pJ (≈ 5.9×),
//! * normalized energy deviation: 60 % vs 6.6 %,
//! * normalized standard deviation: 12 % vs 0.9 %.
//!
//! Usage: `exp_area_energy [n_encryptions] [seed]` (defaults 2000, 1).

use secflow_bench::{build_des_implementations, header, paper_sim_config, row};
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::harness::collect_des_traces;
use secflow_dpa::stats::EnergyStats;

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let backend = opts.backend;
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let _run = opts.start_run("exp_area_energy");

    eprintln!("building both implementations through the flows...");
    let imps = build_des_implementations();
    let cfg = paper_sim_config();

    header("design size");
    row(
        "gate instances",
        imps.regular.report.stats.gates,
        imps.secure.report.stats.gates,
    );
    row(
        "cell area (um^2)",
        format!("{:.0}", imps.regular.report.cell_area_um2),
        format!("{:.0}", imps.secure.report.cell_area_um2),
    );
    row(
        "die area (um^2)",
        format!("{:.0}", imps.regular.report.die_area_um2),
        format!("{:.0}", imps.secure.report.die_area_um2),
    );
    row(
        "wirelength (tracks)",
        imps.regular.report.wirelength_tracks,
        imps.secure.report.wirelength_tracks,
    );
    let area_ratio = imps.secure.report.die_area_um2 / imps.regular.report.die_area_um2;
    println!("area ratio secure/reference = {area_ratio:.2} (paper: 12880/3782 = 3.41)");

    eprintln!("simulating {n} encryptions on each implementation...");
    let reg = secflow_bench::ok_or_exit(collect_des_traces(&imps.regular_target().with_backend(backend), &cfg, PAPER_KEY, n, seed));
    let sec = secflow_bench::ok_or_exit(collect_des_traces(&imps.secure_target().with_backend(backend), &cfg, PAPER_KEY, n, seed));
    let reg_stats = secflow_bench::analysis_or_exit(EnergyStats::try_of(&reg.energies, 1));
    let sec_stats = secflow_bench::analysis_or_exit(EnergyStats::try_of(&sec.energies, 1));

    header("energy per encryption");
    row(
        "mean energy (pJ)",
        format!("{:.3}", reg_stats.mean / 1000.0),
        format!("{:.3}", sec_stats.mean / 1000.0),
    );
    row(
        "normalized energy deviation (%)",
        format!("{:.1}", reg_stats.ned * 100.0),
        format!("{:.1}", sec_stats.ned * 100.0),
    );
    row(
        "normalized std deviation (%)",
        format!("{:.2}", reg_stats.nsd * 100.0),
        format!("{:.2}", sec_stats.nsd * 100.0),
    );
    println!(
        "energy ratio secure/reference = {:.2} (paper: 27.1/4.6 = 5.89)",
        sec_stats.mean / reg_stats.mean
    );

    header("paper comparison (reference, secure)");
    row("paper area (um^2)", 3782, 12880);
    row(
        "measured area (um^2)",
        format!("{:.0}", imps.regular.report.die_area_um2),
        format!("{:.0}", imps.secure.report.die_area_um2),
    );
    row("paper mean energy (pJ)", 4.6, 27.1);
    row(
        "measured mean energy (pJ)",
        format!("{:.2}", reg_stats.mean / 1000.0),
        format!("{:.2}", sec_stats.mean / 1000.0),
    );
    row("paper NED (%)", 60.0, 6.6);
    row(
        "measured NED (%)",
        format!("{:.1}", reg_stats.ned * 100.0),
        format!("{:.1}", sec_stats.ned * 100.0),
    );
    row("paper NSD (%)", 12.0, 0.9);
    row(
        "measured NSD (%)",
        format!("{:.2}", reg_stats.nsd * 100.0),
        format!("{:.2}", sec_stats.nsd * 100.0),
    );

    header("pair-matching quality (secure flow, §2.2)");
    row(
        "mean pair cap mismatch (%)",
        "-",
        format!(
            "{:.3}",
            imps.secure.report.mean_pair_mismatch.unwrap_or(0.0) * 100.0
        ),
    );
    row(
        "max pair cap mismatch (%)",
        "-",
        format!(
            "{:.3}",
            imps.secure.report.max_pair_mismatch.unwrap_or(0.0) * 100.0
        ),
    );
}
