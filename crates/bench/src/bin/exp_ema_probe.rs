//! Experiment E10 — §4.2: Electromagnetic Analysis and the
//! differential-pair geometry.
//!
//! The paper's Fig. 7 argument: differential output wires are routed
//! ~1 µm apart with lengths of 10–100 µm, while an EM probe sits
//! 1–10 mm away. To exploit EM the attacker must tell which of the two
//! wires carried the charge; this experiment quantifies the relative
//! field difference between those two events over probe distance and
//! wire geometry, plus a whole-layout comparison.
//!
//! Usage: `exp_ema_probe`.

use secflow_bench::build_des_implementations;
use secflow_cells::TRACK_UM;
use secflow_dpa::ema::{layout_field, pair_discrimination};

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let _run = opts.start_run("exp_ema_probe");
    println!("=== E10: EM discrimination of differential pairs (§4.2, Fig. 7) ===\n");
    println!("relative field difference |B_railA - B_railB| / B_avg");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "probe (um)", "len 10 um", "len 100 um", "len 100, sep 5"
    );
    for dist in [10.0, 100.0, 1_000.0, 3_000.0, 10_000.0] {
        println!(
            "{:>12} {:>14.3e} {:>14.3e} {:>14.3e}",
            dist,
            pair_discrimination(10.0, 1.0, dist),
            pair_discrimination(100.0, 1.0, dist),
            pair_discrimination(100.0, 5.0, dist),
        );
    }
    println!(
        "\nat the paper's probe distances (1-10 mm) the discrimination is below 1e-3:\n\
         the two rails are indistinguishable; at wafer-probe distances (10 um) they are not."
    );

    // Whole-layout version: the decomposed DES module; compare the
    // total field when the true rails switch vs when the false rails
    // switch (same |charge|, opposite rail selection).
    eprintln!("\nbuilding the secure implementation for the layout-level check...");
    let imps = build_des_implementations();
    let sub = &imps.secure.substitution;
    let layout = &imps.secure.decomposed;

    let die_w = f64::from(layout.placed.width) * TRACK_UM;
    let die_h = f64::from(layout.placed.height) * TRACK_UM;
    println!("decomposed layout: {die_w:.0} x {die_h:.0} um");

    println!(
        "\n{:>14} {:>16} {:>16} {:>14}",
        "probe z (um)", "B(true rails)", "B(false rails)", "rel diff"
    );
    for z in [50.0, 200.0, 1_000.0, 5_000.0] {
        let probe = [die_w / 2.0, die_h / 2.0, z];
        let t_currents: Vec<_> = sub.pairs.iter().map(|p| (p.t, 1.0)).collect();
        let f_currents: Vec<_> = sub.pairs.iter().map(|p| (p.f, 1.0)).collect();
        let bt = layout_field(layout, TRACK_UM, &t_currents, probe);
        let bf = layout_field(layout, TRACK_UM, &f_currents, probe);
        let rel = (bt - bf).abs() / ((bt + bf) / 2.0);
        println!("{z:>14} {bt:>16.4e} {bf:>16.4e} {rel:>14.3e}");
    }
    println!(
        "\nthe two complementary switching events produce near-identical fields at\n\
         millimetre probe distances — the EMA channel collapses to the power channel."
    );
}
