//! Experiment E15 (ablation) — how much of the reference design's
//! leakage comes from glitches?
//!
//! DESIGN.md calls out glitch modelling (inertial delays) as a
//! load-bearing simulator feature: single-ended CMOS logic glitches,
//! and the extra, data-dependent transitions both burn energy and
//! leak. This ablation re-runs the DPA against the reference
//! implementation under the idealized glitch-free power model (every
//! net switches at most once per cycle) and compares.
//!
//! Usage: `exp_glitch_ablation [n_traces] [seed]` (defaults 2000, 1).

use secflow_bench::{build_des_implementations, header_cols, paper_sim_config, row};
use secflow_sim::SimBackend;
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::attack::mtd_scan;
use secflow_dpa::harness::{collect_des_traces, DesTarget};
use secflow_dpa::stats::EnergyStats;

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let backend = opts.backend;
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let step = (n / 40).max(10);
    let _run = opts.start_run("exp_glitch_ablation");

    eprintln!("building the reference implementation...");
    let imps = build_des_implementations();
    let cfg = paper_sim_config();

    let glitchy = imps.regular_target().with_backend(backend);
    let glitch_free = DesTarget {
        glitch_free: true,
        backend: SimBackend::Event,
        ..glitchy
    };

    eprintln!("simulating {n} encryptions under both power models...");
    let set_g = secflow_bench::ok_or_exit(collect_des_traces(&glitchy, &cfg, PAPER_KEY, n, seed));
    let set_f = secflow_bench::ok_or_exit(collect_des_traces(&glitch_free, &cfg, PAPER_KEY, n, seed));

    let e_g = secflow_bench::analysis_or_exit(EnergyStats::try_of(&set_g.energies, 1));
    let e_f = secflow_bench::analysis_or_exit(EnergyStats::try_of(&set_f.energies, 1));
    header_cols(
        "E15: glitch contribution in the reference design",
        "with glitches",
        "glitch-free",
    );
    row(
        "mean energy (pJ)",
        format!("{:.3}", e_g.mean / 1000.0),
        format!("{:.3}", e_f.mean / 1000.0),
    );
    row(
        "mean supply charge / encryption (fC)",
        format!("{:.1}", mean_charge(&set_g)),
        format!("{:.1}", mean_charge(&set_f)),
    );
    row(
        "energy NSD (%)",
        format!("{:.2}", e_g.nsd * 100.0),
        format!("{:.2}", e_f.nsd * 100.0),
    );

    let scan_g =
        secflow_bench::analysis_or_exit(mtd_scan(&set_g.traces, 64, PAPER_KEY, step, set_g.selector()));
    let scan_f =
        secflow_bench::analysis_or_exit(mtd_scan(&set_f.traces, 64, PAPER_KEY, step, set_f.selector()));
    row(
        "DPA MTD",
        scan_g.mtd.map_or("not disclosed".into(), |m| m.to_string()),
        scan_f.mtd.map_or("not disclosed".into(), |m| m.to_string()),
    );
    let last = |s: &secflow_dpa::attack::MtdScan| {
        let p = s.points.last().expect("points");
        format!("{:.2}", p.correct_peak / p.best_wrong_peak.max(1e-12))
    };
    row("final correct/wrong ratio", last(&scan_g), last(&scan_f));
    println!(
        "\nglitch energy = {:.1} % of the reference design's consumption",
        (e_g.mean - e_f.mean) / e_g.mean * 100.0
    );
}

/// Mean integrated supply charge per encryption trace (fC) — a
/// switching-activity proxy.
fn mean_charge(set: &secflow_dpa::harness::TraceSet) -> f64 {
    set.traces
        .iter()
        .map(|t| t.iter().sum::<f64>())
        .sum::<f64>()
        / set.traces.len() as f64
}
