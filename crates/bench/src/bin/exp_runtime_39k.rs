//! Experiment E8 — flow-runtime overhead on a 39 K-gate design.
//!
//! The paper reports that its two flow insertions cost about 6 minutes
//! of CPU for a 39 K-gate prototype IC on a 550 MHz SunFire v100:
//! < 4 min for the cell-substitution parser and ≈ 2 min for the
//! interconnect-decomposition parser. We reproduce the experiment on a
//! synthetic design of the same size and report our own wall-clock
//! times (absolute values differ with hardware; the point is that the
//! insertions are cheap relative to the rest of the flow).
//!
//! The paper's runtime claims concern only the two inserted parsers,
//! so this experiment times them on the full-size design; the
//! decomposition input is a fat `.def` with one synthetic L-shaped
//! route per net (decomposition cost depends only on the geometry
//! volume, not on how the router produced it — maze-routing 39 K
//! gates is hours of unrelated work).
//!
//! Usage: `exp_runtime_39k [target_and_nodes] [seed]`
//! (defaults 72000 AND nodes ≈ 39 K mapped gates, 7).

use std::time::Instant;

use secflow_cells::Library;
use secflow_core::{decompose, substitute};
use secflow_crypto::bench_gen::synthetic_design;
use secflow_netlist::NetlistStats;
use secflow_pnr::{
    place, GridPitch, PlaceOptions, Point, RoutedDesign, RoutedNet, Segment, LAYER_H, LAYER_V,
};
use secflow_synth::{map_design, MapOptions};

/// Builds an L-shaped route between consecutive pins of each net —
/// a synthetic `fat.def` with realistic geometry volume.
fn synthetic_routes(
    nl: &secflow_netlist::Netlist,
    lib: &Library,
    placed: &secflow_pnr::PlacedDesign,
) -> RoutedDesign {
    let mut nets = Vec::new();
    for net in nl.net_ids() {
        let pins = placed.net_pins(nl, lib, net);
        if pins.len() < 2 {
            continue;
        }
        let mut segments = Vec::new();
        for w in pins.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x0 != x1 {
                segments.push(Segment::new(
                    Point::new(LAYER_H, x0.min(x1), y0),
                    Point::new(LAYER_H, x0.max(x1), y0),
                ));
            }
            segments.push(Segment::new(
                Point::new(LAYER_H, x1, y0),
                Point::new(LAYER_V, x1, y0),
            ));
            if y0 != y1 {
                segments.push(Segment::new(
                    Point::new(LAYER_V, x1, y0.min(y1)),
                    Point::new(LAYER_V, x1, y0.max(y1)),
                ));
            }
        }
        nets.push(RoutedNet { net, segments });
    }
    RoutedDesign {
        placed: placed.clone(),
        nets,
    }
}

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let target: usize = opts
        .args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(72_000);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(7);
    let _run = opts.start_run("exp_runtime_39k");

    println!("=== E8: flow-insertion runtime at the paper's 39 K-gate scale ===");
    eprintln!("generating and mapping the synthetic design...");
    let design = synthetic_design("proto39k", target, 128, seed);
    let t = Instant::now();
    let mapped = map_design(&design, &Library::lib180(), &MapOptions::default()).expect("mapping");
    let synth_s = t.elapsed().as_secs_f64();
    println!(
        "mapped netlist: {} ({synth_s:.1} s synthesis)",
        NetlistStats::of(&mapped)
    );

    // --- The paper's first insertion: cell substitution. ---
    let t = Instant::now();
    let sub = substitute(&mapped, &Library::lib180()).expect("substitution");
    let substitute_s = t.elapsed().as_secs_f64();
    println!(
        "cell substitution: {substitute_s:.2} s  (paper: < 4 min for 39 K gates on a 550 MHz SunFire)"
    );
    println!(
        "  fat netlist: {} gates; differential netlist: {} gates; {} WDDL compounds derived; {} inverters removed",
        sub.fat.gate_count(),
        sub.differential.gate_count(),
        sub.wddl.len(),
        sub.removed_inverters
    );

    eprintln!("placing the fat design (coarse effort)...");
    let t = Instant::now();
    let placed = secflow_bench::ok_or_exit(place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            anneal_moves_per_gate: 0,
            pitch: GridPitch::Fat,
            ..Default::default()
        },
    ));
    let place_s = t.elapsed().as_secs_f64();
    println!(
        "fat placement: {place_s:.2} s ({} x {} fat units)",
        placed.width, placed.height
    );

    eprintln!("building the synthetic fat .def...");
    let routed = synthetic_routes(&sub.fat, &sub.fat_lib, &placed);
    let n_segments: usize = routed.nets.iter().map(|n| n.segments.len()).sum();
    println!(
        "fat design file: {} nets, {} segments, wirelength {} fat units",
        routed.nets.len(),
        n_segments,
        routed.total_wirelength()
    );

    // --- The paper's second insertion: interconnect decomposition. ---
    let t = Instant::now();
    let diff = secflow_bench::ok_or_exit(decompose(&routed, &sub));
    let decompose_s = t.elapsed().as_secs_f64();
    println!(
        "interconnect decomposition: {decompose_s:.2} s  (paper: ~2 min on a 550 MHz SunFire)"
    );
    println!(
        "  differential geometry: {} rails, wirelength {} tracks",
        diff.nets.len(),
        diff.total_wirelength()
    );

    println!("\n=== summary ===");
    println!("{:<28} {:>10}", "stage", "seconds");
    for (stage, s) in [
        ("synthesis (mapping)", synth_s),
        ("cell substitution", substitute_s),
        ("fat placement", place_s),
        ("interconnect decomposition", decompose_s),
    ] {
        println!("{stage:<28} {s:>10.2}");
    }
    println!(
        "\nthe two flow insertions take {:.2} s total — the paper's claim that the \
         additions have negligible design-time overhead holds with huge margin on \
         modern hardware",
        substitute_s + decompose_s
    );
}
