//! Experiment E14 (extension) — the stronger attacker of §3: "the
//! more powerful an attacker is, the better his results may be".
//!
//! Escalates from Kocher's single-bit DPA to Correlation Power
//! Analysis with a Hamming-weight model of the predicted S-box output,
//! and compares the measurements-to-disclosure of both attacks against
//! both implementations.
//!
//! Usage: `exp_cpa [n_traces] [seed]` (defaults 2500, 1).

use secflow_bench::{build_des_implementations, paper_sim_config};
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::attack::mtd_scan;
use secflow_dpa::cpa::{cpa_mtd_scan, sbox_hamming_model, sbox_hd_model};
use secflow_dpa::harness::collect_des_traces;

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let backend = opts.backend;
    let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(2500);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let step = (n / 40).max(10);
    let _run = opts.start_run("exp_cpa");

    eprintln!("building both implementations through the flows...");
    let imps = build_des_implementations();
    let cfg = paper_sim_config();

    println!("=== E14: single-bit DPA vs Hamming-weight CPA ({n} traces, K = {PAPER_KEY}) ===");
    for (name, target) in [
        ("reference", imps.regular_target().with_backend(backend)),
        ("secure", imps.secure_target().with_backend(backend)),
    ] {
        eprintln!("simulating {n} encryptions on the {name} implementation...");
        let set = secflow_bench::ok_or_exit(collect_des_traces(&target, &cfg, PAPER_KEY, n, seed));

        let dpa =
            secflow_bench::analysis_or_exit(mtd_scan(&set.traces, 64, PAPER_KEY, step, set.selector()));
        let (hw_points, hw_mtd) =
            secflow_bench::analysis_or_exit(cpa_mtd_scan(&set.traces, 64, PAPER_KEY, step, |k, i| {
                let (cl, cr) = set.ciphertexts[i];
                sbox_hamming_model(k, cl, cr)
            }));
        // The transition (Hamming-distance) model uses the previous
        // encryption's ciphertext — CMOS power follows transitions.
        let (hd_points, hd_mtd) =
            secflow_bench::analysis_or_exit(cpa_mtd_scan(&set.traces, 64, PAPER_KEY, step, |k, i| {
                let cr_prev = if i == 0 { 0 } else { set.ciphertexts[i - 1].1 };
                sbox_hd_model(k, cr_prev, set.ciphertexts[i].1)
            }));

        println!("\n=== {name} implementation ===");
        println!(
            "{:<30} {:>15} {:>15} {:>15}",
            "metric", "single-bit DPA", "HW CPA", "HD CPA"
        );
        let fmt_mtd = |m: Option<usize>| m.map_or("none".to_string(), |v| v.to_string());
        println!(
            "{:<30} {:>15} {:>15} {:>15}",
            "MTD",
            fmt_mtd(dpa.mtd),
            fmt_mtd(hw_mtd),
            fmt_mtd(hd_mtd)
        );
        let dpa_last = dpa.points.last().expect("points");
        let hw_last = hw_points.last().expect("points");
        let hd_last = hd_points.last().expect("points");
        println!(
            "{:<30} {:>15.2} {:>15.2} {:>15.2}",
            "final correct/wrong ratio",
            dpa_last.correct_peak / dpa_last.best_wrong_peak.max(1e-12),
            hw_last.correct_corr / hw_last.best_wrong_corr.max(1e-12),
            hd_last.correct_corr / hd_last.best_wrong_corr.max(1e-12),
        );
        println!(
            "{:<30} {:>15.3} {:>15.3} {:>15.3}",
            "final correct-key statistic",
            dpa_last.correct_peak,
            hw_last.correct_corr,
            hd_last.correct_corr,
        );
    }
    println!(
        "\nexpected shape: at least one CPA model discloses the reference implementation\n\
         (the transition/HD model matches this substrate's charge-per-transition leakage;\n\
         the value/HW model does not), and every attack fails against the secure one —\n\
         the flow's margin extends beyond the paper's original single-bit DPA."
    );
}
