//! Experiment E6/E7 — Fig. 6 of the paper.
//!
//! Top: measurements to disclosure (MTD). The paper reports that a DPA
//! on the reference implementation discloses the secret key after
//! ~250 measurements, while the secure implementation does not
//! disclose it after 2000+.
//!
//! Bottom: the peak-to-peak value of the 64 key guesses' differential
//! traces at 2000 measurements — the correct key stands out only for
//! the reference implementation.
//!
//! Usage: `exp_fig6_mtd [n_traces] [seed]` (defaults: 2000, 1), or
//! `exp_fig6_mtd --smoke` for the CI gate: a 150-trace campaign that
//! exercises the full build–simulate–attack pipeline in minutes.
//! `--sim-backend event|bitslice` selects the campaign kernel; both
//! produce byte-identical stdout (the CI gate compares them).

use secflow_bench::{build_des_implementations, header, paper_sim_config, row};
use secflow_crypto::dpa_module::PAPER_KEY;
use secflow_dpa::attack::{dpa_attack, mtd_scan};
use secflow_dpa::harness::collect_des_traces;

fn main() {
    let mut opts = secflow_bench::CommonOpts::parse();
    let backend = opts.backend;
    let smoke = opts.take_flag("--smoke");
    let default_n = if smoke { 150 } else { 2000 };
    let n: usize = opts
        .args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let seed: u64 = opts.args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let step = (n / 40).max(10);
    let _run = opts.start_run("exp_fig6_mtd");

    eprintln!("building both implementations through the flows...");
    let imps = build_des_implementations();
    let cfg = paper_sim_config();

    eprintln!("simulating {n} encryptions on each implementation (K = {PAPER_KEY})...");
    let sets = [
        (
            "reference",
            secflow_bench::ok_or_exit(collect_des_traces(
                &imps.regular_target().with_backend(backend),
                &cfg,
                PAPER_KEY,
                n,
                seed,
            )),
        ),
        (
            "secure",
            secflow_bench::ok_or_exit(collect_des_traces(
                &imps.secure_target().with_backend(backend),
                &cfg,
                PAPER_KEY,
                n,
                seed,
            )),
        ),
    ];

    header("Fig. 6 (top): measurements to disclosure");
    let mut mtds = Vec::new();
    for (name, set) in &sets {
        let scan =
            secflow_bench::analysis_or_exit(mtd_scan(&set.traces, 64, PAPER_KEY, step, set.selector()));
        println!("\n--- {name} implementation ---");
        println!(
            "{:>8} {:>12} {:>14} {:>10}",
            "traces", "correct pk", "best wrong pk", "disclosed"
        );
        for p in &scan.points {
            println!(
                "{:>8} {:>12.4} {:>14.4} {:>10}",
                p.traces,
                p.correct_peak,
                p.best_wrong_peak,
                if p.disclosed { "YES" } else { "no" }
            );
        }
        match scan.mtd {
            Some(m) => println!("MTD({name}) = {m} measurements"),
            None => println!("MTD({name}) = not disclosed within {n} measurements"),
        }
        mtds.push(scan.mtd);
    }

    header("Fig. 6 (bottom): peak-to-peak of differential traces per key guess");
    for (name, set) in &sets {
        let r = secflow_bench::analysis_or_exit(dpa_attack(&set.traces, 64, set.selector()));
        println!("\n--- {name} implementation at {n} measurements ---");
        for chunk in r.guesses.chunks(8) {
            let line: Vec<String> = chunk
                .iter()
                .map(|g| {
                    let mark = if g.key == PAPER_KEY { "*" } else { " " };
                    format!("K{:02}{mark}{:7.3}", g.key, g.p2p)
                })
                .collect();
            println!("{}", line.join("  "));
        }
        let correct = r.guesses[PAPER_KEY as usize].p2p;
        let wrong_max = r
            .guesses
            .iter()
            .filter(|g| g.key != PAPER_KEY)
            .map(|g| g.p2p)
            .fold(0.0f64, f64::max);
        println!(
            "correct-key p2p = {correct:.3}, max wrong-key p2p = {wrong_max:.3}, ratio = {:.2}",
            correct / wrong_max
        );
        println!(
            "best key guess: {} (true key {PAPER_KEY}), margin {:.2}",
            r.best_key, r.margin
        );
    }

    header("paper comparison");
    row("paper MTD", "~250", ">2000 (none)");
    row(
        "measured MTD",
        mtds[0].map_or("none".to_string(), |m| m.to_string()),
        mtds[1].map_or("none".to_string(), |m| m.to_string()),
    );
}
