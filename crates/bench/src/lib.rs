//! Shared experiment plumbing for the benchmark harness: builds the
//! paper's two DES-module implementations (regular flow vs secure
//! flow) and provides consistent reporting helpers.

pub mod seed_engine;

use secflow_cells::Library;
use secflow_core::{
    run_regular_flow, run_secure_flow, FlowError, FlowOptions, RegularFlowResult, SecureFlowResult,
};
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::harness::DesTarget;
use secflow_sim::{SimBackend, SimConfig};

/// Exit code for failures in post-flow analysis (stats, attacks) that
/// have no [`secflow_core::Stage`] of their own.
pub const ANALYSIS_EXIT_CODE: i32 = secflow_dpa::error::ANALYSIS_EXIT_CODE;

/// Reports a flow error as a structured single-line JSON object on
/// stderr — `{"error":{"stage":...,"kind":...,"detail":...}}` — and
/// exits with the originating stage's exit code (10–19).
pub fn exit_with_flow_error(e: &FlowError) -> ! {
    eprintln!("{}", e.to_json());
    std::process::exit(e.exit_code());
}

/// Unwraps a stage result or exits with the structured stderr report;
/// any stage error convertible to [`FlowError`] (placement, routing,
/// simulation, ...) gets its stage's exit code.
pub fn ok_or_exit<T, E: Into<FlowError>>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => exit_with_flow_error(&e.into()),
    }
}

/// Unwraps a post-flow analysis result (energy statistics, attack
/// bookkeeping) or exits with a structured stderr report under the
/// `analysis` pseudo-stage and [`ANALYSIS_EXIT_CODE`].
pub fn analysis_or_exit<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            let mut inner = secflow_obs::json::Obj::new();
            inner
                .str("stage", "analysis")
                .str("kind", "Analysis")
                .str("detail", &format!("{e}"));
            let mut outer = secflow_obs::json::Obj::new();
            outer.raw("error", &inner.build());
            eprintln!("{}", outer.build());
            std::process::exit(ANALYSIS_EXIT_CODE);
        }
    }
}

/// Both implementations of the Fig. 4 DES module, fully placed,
/// routed and extracted.
pub struct DesImplementations {
    /// The base standard cell library.
    pub lib: Library,
    /// Regular (reference) flow result.
    pub regular: RegularFlowResult,
    /// Secure flow result.
    pub secure: SecureFlowResult,
}

/// Runs both flows on the DES DPA module with the paper's settings
/// (aspect ratio 1, fill factor 80 %).
///
/// # Errors
///
/// Returns the first stage's [`FlowError`] if either flow fails.
pub fn try_build_des_implementations() -> Result<DesImplementations, FlowError> {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let opts = FlowOptions::default();
    let regular = run_regular_flow(&design, &lib, &opts)?;
    let secure = run_secure_flow(&design, &lib, &opts)?;
    Ok(DesImplementations {
        lib,
        regular,
        secure,
    })
}

/// [`try_build_des_implementations`], reporting any flow failure as a
/// structured stderr line and exiting with the stage's code — the
/// entry point experiment binaries use.
pub fn build_des_implementations() -> DesImplementations {
    ok_or_exit(try_build_des_implementations())
}

impl DesImplementations {
    /// Simulation target for the regular implementation (with layout
    /// parasitics).
    pub fn regular_target(&self) -> DesTarget<'_> {
        DesTarget {
            netlist: &self.regular.netlist,
            lib: &self.lib,
            parasitics: Some(&self.regular.parasitics),
            wddl_inputs: None,
            glitch_free: false,
            backend: SimBackend::Event,
        }
    }

    /// Simulation target for the secure implementation (with layout
    /// parasitics of the decomposed differential design).
    pub fn secure_target(&self) -> DesTarget<'_> {
        DesTarget {
            netlist: &self.secure.substitution.differential,
            lib: &self.secure.substitution.diff_lib,
            parasitics: Some(&self.secure.parasitics),
            wddl_inputs: Some(&self.secure.substitution.input_pairs),
            glitch_free: false,
            backend: SimBackend::Event,
        }
    }
}

/// The paper's measurement configuration: 125 MHz, 800 samples per
/// cycle, 1.8 V.
pub fn paper_sim_config() -> SimConfig {
    SimConfig::default()
}

/// Strips a `--threads N` flag from `args`, applies it via
/// [`secflow_exec::set_threads`], and returns the effective worker
/// count. Exits with status 2 on a malformed value; leaves every
/// other argument in place, so positional parsing can proceed on the
/// remainder.
pub fn parse_threads(args: &mut Vec<String>) -> usize {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("error: --threads requires a positive integer");
                std::process::exit(2);
            };
            secflow_exec::set_threads(n);
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    secflow_exec::effective_threads()
}

/// Strips a `--sim-backend NAME` flag from `args` and returns the
/// selected simulation kernel (default [`SimBackend::Event`]). Exits
/// with status 2 on an unknown backend name. Like [`parse_threads`],
/// leaves every other argument in place. Both backends produce
/// byte-identical traces, so experiment stdout must not change with
/// this flag (the CI gate compares it).
pub fn parse_sim_backend(args: &mut Vec<String>) -> SimBackend {
    let mut backend = SimBackend::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--sim-backend" {
            let Some(b) = args.get(i + 1).and_then(|v| v.parse::<SimBackend>().ok()) else {
                eprintln!("error: --sim-backend requires `event` or `bitslice`");
                std::process::exit(2);
            };
            backend = b;
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    backend
}

/// Emits the experiment's run-info JSON line to **stderr** — stderr so
/// experiment stdout stays byte-identical across thread counts (the
/// determinism gate compares it). Called only after *all* option
/// parsing succeeded, so a usage error produces exactly one stderr
/// line (its own) and no run-info line.
pub fn emit_run_info(exp: &str, threads: usize) {
    let mut obj = secflow_obs::json::Obj::new();
    obj.str("exp", exp).u64("threads", threads as u64);
    eprintln!("{}", obj.build());
}

/// Strips a `--obs PATH` flag from `args` and returns the metrics
/// output path, falling back to a non-empty `SECFLOW_OBS` environment
/// variable. Exits with status 2 if the flag is given without a path.
/// Like [`parse_threads`], leaves every other argument in place.
pub fn parse_obs(args: &mut Vec<String>) -> Option<std::path::PathBuf> {
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--obs" {
            let Some(p) = args.get(i + 1).filter(|p| !p.is_empty()) else {
                eprintln!("error: --obs requires an output path");
                std::process::exit(2);
            };
            path = Some(std::path::PathBuf::from(p));
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    path.or_else(|| {
        std::env::var("SECFLOW_OBS")
            .ok()
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    })
}

/// The options every experiment binary shares — `--threads N`,
/// `--obs PATH`, `--sim-backend NAME` — parsed in one pass, plus the
/// remaining (positional) arguments. This is the single entry point
/// the ten `exp_*` binaries use, so a new shared flag is added here
/// once rather than ten times:
///
/// ```no_run
/// let mut opts = secflow_bench::CommonOpts::parse();
/// let smoke = opts.take_flag("--smoke");
/// let n: usize = opts.args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
/// let _run = opts.start_run("exp_example");
/// ```
pub struct CommonOpts {
    /// Effective worker-thread count (already applied to the pool).
    pub threads: usize,
    /// Metrics output path from `--obs` / `SECFLOW_OBS`, if any.
    /// Consumed by [`CommonOpts::start_run`].
    pub obs: Option<std::path::PathBuf>,
    /// Selected simulation kernel (default [`SimBackend::Event`]).
    pub backend: SimBackend,
    /// Arguments left over after the shared flags were stripped, in
    /// their original order — positional parsing proceeds on these.
    pub args: Vec<String>,
}

impl CommonOpts {
    /// Parses the shared flags out of `std::env::args()`. Exits with
    /// status 2 on a malformed value, before any run-info line is
    /// emitted.
    pub fn parse() -> CommonOpts {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let threads = parse_threads(&mut args);
        let obs = parse_obs(&mut args);
        let backend = parse_sim_backend(&mut args);
        CommonOpts {
            threads,
            obs,
            backend,
            args,
        }
    }

    /// Strips every occurrence of a boolean flag (e.g. `--smoke`) from
    /// the remaining arguments; returns whether it was present.
    pub fn take_flag(&mut self, name: &str) -> bool {
        let present = self.args.iter().any(|a| a == name);
        self.args.retain(|a| a != name);
        present
    }

    /// Emits the run-info line and arms observability — call once all
    /// experiment-specific parsing has succeeded. Equivalent to
    /// [`start_run`] with this struct's fields; the obs path is
    /// consumed.
    pub fn start_run(&mut self, exp: &'static str) -> RunInfo {
        start_run(exp, self.threads, self.obs.take())
    }
}

/// RAII guard for one experiment run: emits the run-info line and, if
/// an observability path was requested, starts the session. On drop it
/// finishes the session and writes the metrics JSON plus the chrome
/// trace next to it.
///
/// Construct with [`start_run`] *after* all option parsing, so usage
/// errors never produce a run-info line or a partial metrics file.
pub struct RunInfo {
    exp: &'static str,
    threads: usize,
    obs_path: Option<std::path::PathBuf>,
}

/// Emits the run-info stderr line and arms observability when
/// `obs_path` is set (from [`parse_obs`]). The returned guard must be
/// kept alive for the whole run: metrics are written when it drops.
pub fn start_run(
    exp: &'static str,
    threads: usize,
    obs_path: Option<std::path::PathBuf>,
) -> RunInfo {
    emit_run_info(exp, threads);
    if obs_path.is_some() && !secflow_obs::start() {
        eprintln!("error: observability session already active");
        std::process::exit(2);
    }
    RunInfo {
        exp,
        threads,
        obs_path,
    }
}

impl Drop for RunInfo {
    fn drop(&mut self) {
        let Some(path) = self.obs_path.take() else {
            return;
        };
        let Some(report) = secflow_obs::finish() else {
            return;
        };
        match report.write_files(self.exp, self.threads, &path) {
            Ok(trace) => eprintln!(
                "wrote {} and {}",
                path.display(),
                trace.display()
            ),
            Err(e) => eprintln!("error: failed to write {}: {e}", path.display()),
        }
    }
}

/// Prints a labelled table row (fixed-width columns, for experiment
/// output).
pub fn row(label: &str, reference: impl std::fmt::Display, secure: impl std::fmt::Display) {
    println!("{label:<38} {reference:>16} {secure:>16}");
}

/// Prints a table header with the default reference/secure columns.
pub fn header(title: &str) {
    header_cols(title, "reference", "secure");
}

/// Prints a table header with custom column labels.
pub fn header_cols(title: &str, col1: &str, col2: &str) {
    println!("\n=== {title} ===");
    println!("{:<38} {col1:>16} {col2:>16}", "metric");
}
