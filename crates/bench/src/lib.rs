//! Shared experiment plumbing for the benchmark harness: builds the
//! paper's two DES-module implementations (regular flow vs secure
//! flow) and provides consistent reporting helpers.

use secflow_cells::Library;
use secflow_core::{
    run_regular_flow, run_secure_flow, FlowOptions, RegularFlowResult, SecureFlowResult,
};
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::harness::DesTarget;
use secflow_sim::SimConfig;

/// Both implementations of the Fig. 4 DES module, fully placed,
/// routed and extracted.
pub struct DesImplementations {
    /// The base standard cell library.
    pub lib: Library,
    /// Regular (reference) flow result.
    pub regular: RegularFlowResult,
    /// Secure flow result.
    pub secure: SecureFlowResult,
}

/// Runs both flows on the DES DPA module with the paper's settings
/// (aspect ratio 1, fill factor 80 %).
///
/// # Panics
///
/// Panics if either flow fails — the experiment cannot proceed.
pub fn build_des_implementations() -> DesImplementations {
    let design = des_dpa_design();
    let lib = Library::lib180();
    let opts = FlowOptions::default();
    let regular = run_regular_flow(&design, &lib, &opts).expect("regular flow");
    let secure = run_secure_flow(&design, &lib, &opts).expect("secure flow");
    DesImplementations {
        lib,
        regular,
        secure,
    }
}

impl DesImplementations {
    /// Simulation target for the regular implementation (with layout
    /// parasitics).
    pub fn regular_target(&self) -> DesTarget<'_> {
        DesTarget {
            netlist: &self.regular.netlist,
            lib: &self.lib,
            parasitics: Some(&self.regular.parasitics),
            wddl_inputs: None,
            glitch_free: false,
        }
    }

    /// Simulation target for the secure implementation (with layout
    /// parasitics of the decomposed differential design).
    pub fn secure_target(&self) -> DesTarget<'_> {
        DesTarget {
            netlist: &self.secure.substitution.differential,
            lib: &self.secure.substitution.diff_lib,
            parasitics: Some(&self.secure.parasitics),
            wddl_inputs: Some(&self.secure.substitution.input_pairs),
            glitch_free: false,
        }
    }
}

/// The paper's measurement configuration: 125 MHz, 800 samples per
/// cycle, 1.8 V.
pub fn paper_sim_config() -> SimConfig {
    SimConfig::default()
}

/// Prints a labelled table row (fixed-width columns, for experiment
/// output).
pub fn row(label: &str, reference: impl std::fmt::Display, secure: impl std::fmt::Display) {
    println!("{label:<38} {reference:>16} {secure:>16}");
}

/// Prints a table header with the default reference/secure columns.
pub fn header(title: &str) {
    header_cols(title, "reference", "secure");
}

/// Prints a table header with custom column labels.
pub fn header_cols(title: &str, col1: &str, col2: &str) {
    println!("\n=== {title} ===");
    println!("{:<38} {col1:>16} {col2:>16}", "metric");
}
