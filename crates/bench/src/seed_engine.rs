//! The original per-window simulation engine, frozen as a benchmark
//! baseline.
//!
//! This is a faithful copy of the event engine as it stood before the
//! compiled kernel ([`secflow_sim::CompiledSim`]) landed: every window
//! re-resolves each gate's cell through `Library::by_name`, re-derives
//! the topological order for initial settling, clones the resolved
//! cell behaviour on every gate evaluation, and collects each event's
//! fanout into a fresh `Vec`. The `sim_kernel` bench group in
//! `benches/flow_stages.rs` times a trace campaign through this engine
//! against the compiled kernel and records the speedup in
//! `results/BENCH_sim_kernel.json`; the group also asserts that both
//! engines produce byte-identical traces, so the baseline stays an
//! exact functional mirror, not just a plausible one.
//!
//! Nothing outside the benchmarks should use this module — the real
//! simulator lives in `secflow-sim`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use secflow_cells::{CellFunction, Library, TruthTable};
use secflow_netlist::{Gate, GateId, GateKind, NetId, Netlist};
use secflow_sim::{LoadModel, SimConfig};

fn is_wddl_register(gate: &Gate) -> bool {
    gate.kind == GateKind::Seq && gate.outputs.len() == 2 && gate.inputs.len() == 2
}

/// Per-gate resolved simulation behaviour (cloned per evaluation, as
/// the original engine did).
#[derive(Debug, Clone)]
enum CellSim {
    Comb {
        tt: TruthTable,
        intrinsic_ps: f64,
        drive_kohm: f64,
    },
    Dff,
    WddlDff,
    Tie(bool),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    order: u64,
    net: NetId,
    value: bool,
    gate: Option<(GateId, u64)>,
}

/// What the `sim_kernel` campaign extracts from each window.
pub struct WindowResult {
    /// Supply-current trace, `cycles × samples_per_cycle` bins.
    pub trace: Vec<f64>,
    /// Energy drawn per cycle, in fJ.
    pub cycle_energy_fj: Vec<f64>,
}

struct Engine<'a> {
    nl: &'a Netlist,
    load: &'a LoadModel,
    cfg: &'a SimConfig,
    cells: Vec<CellSim>,
    values: Vec<bool>,
    order: u64,
    gate_seq: Vec<u64>,
    pending: Vec<Option<bool>>,
    queue: BinaryHeap<Reverse<Event>>,
    last_transition: Vec<Option<(u64, bool)>>,
    exempt: Vec<bool>,
    trace: Vec<f64>,
    energy_fj: f64,
}

impl<'a> Engine<'a> {
    fn new(
        nl: &'a Netlist,
        lib: &Library,
        load: &'a LoadModel,
        cfg: &'a SimConfig,
        n_cycles: usize,
    ) -> Self {
        let cells = nl
            .gates()
            .iter()
            .map(|g| {
                let cell = lib
                    .by_name(&g.cell)
                    .unwrap_or_else(|| panic!("unknown cell `{}`", g.cell));
                match cell.function() {
                    CellFunction::Comb(tt) => CellSim::Comb {
                        tt: *tt,
                        intrinsic_ps: cell.intrinsic_delay_ps(),
                        drive_kohm: cell.drive_kohm(),
                    },
                    CellFunction::Dff if is_wddl_register(g) => CellSim::WddlDff,
                    CellFunction::Dff => CellSim::Dff,
                    CellFunction::WddlDff => CellSim::WddlDff,
                    CellFunction::Tie(v) => CellSim::Tie(*v),
                }
            })
            .collect();
        let mut exempt = vec![false; nl.net_count()];
        for &i in nl.inputs() {
            exempt[i.index()] = true;
        }
        Engine {
            nl,
            load,
            cfg,
            cells,
            values: vec![false; nl.net_count()],
            order: 0,
            gate_seq: vec![0; nl.gate_count()],
            pending: vec![None; nl.gate_count()],
            queue: BinaryHeap::new(),
            last_transition: vec![None; nl.net_count()],
            exempt,
            trace: vec![0.0; n_cycles * cfg.samples_per_cycle],
            energy_fj: 0.0,
        }
    }

    fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    fn settle_initial(&mut self) {
        let order = secflow_netlist::topo_order(self.nl).expect("acyclic netlist");
        for gid in order {
            match &self.cells[gid.index()] {
                CellSim::Tie(v) => {
                    let out = self.nl.gate(gid).outputs[0];
                    self.values[out.index()] = *v;
                }
                CellSim::Comb { tt, .. } => {
                    let g = self.nl.gate(gid);
                    let mut idx = 0u32;
                    for (i, &inp) in g.inputs.iter().enumerate() {
                        if self.values[inp.index()] {
                            idx |= 1 << i;
                        }
                    }
                    let v = tt.eval(idx);
                    self.values[g.outputs[0].index()] = v;
                }
                CellSim::Dff | CellSim::WddlDff => {}
            }
        }
    }

    fn inject(&mut self, net: NetId, time: u64, value: bool) {
        self.order += 1;
        self.queue.push(Reverse(Event {
            time,
            order: self.order,
            net,
            value,
            gate: None,
        }));
    }

    fn run_until(&mut self, t_end: u64) {
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time >= t_end {
                break;
            }
            self.queue.pop();
            if let Some((g, seq)) = ev.gate {
                if self.gate_seq[g.index()] != seq {
                    continue;
                }
                self.pending[g.index()] = None;
            }
            if self.values[ev.net.index()] == ev.value {
                self.last_transition[ev.net.index()] = Some((ev.time, ev.value));
                continue;
            }
            self.values[ev.net.index()] = ev.value;
            self.last_transition[ev.net.index()] = Some((ev.time, ev.value));
            if ev.value && !self.exempt[ev.net.index()] {
                self.record_rise(ev.net, ev.time);
            }
            // The per-event fanout allocation the compiled kernel's
            // CSR replaces.
            let sinks: Vec<GateId> = self.nl.net(ev.net).sinks.iter().map(|s| s.gate).collect();
            for g in sinks {
                self.evaluate_gate(g, ev.time);
            }
        }
    }

    fn evaluate_gate(&mut self, gid: GateId, now: u64) {
        let CellSim::Comb {
            tt,
            intrinsic_ps,
            drive_kohm,
        } = self.cells[gid.index()].clone()
        else {
            return;
        };
        let g = self.nl.gate(gid);
        let out = g.outputs[0];
        let mut idx = 0u32;
        for (i, &inp) in g.inputs.iter().enumerate() {
            if self.values[inp.index()] {
                idx |= 1 << i;
            }
        }
        let v = tt.eval(idx);
        let effective = self.pending[gid.index()].unwrap_or(self.values[out.index()]);
        if v == effective {
            return;
        }
        self.gate_seq[gid.index()] += 1;
        self.pending[gid.index()] = None;
        if v != self.values[out.index()] {
            let delay = self.load.delay_ps(intrinsic_ps, drive_kohm, out).max(1.0) as u64;
            self.order += 1;
            self.pending[gid.index()] = Some(v);
            self.queue.push(Reverse(Event {
                time: now + delay,
                order: self.order,
                net: out,
                value: v,
                gate: Some((gid, self.gate_seq[gid.index()])),
            }));
        }
    }

    fn record_rise(&mut self, net: NetId, time: u64) {
        let mut q_fc = self.load.c_eff_ff[net.index()] * self.cfg.vdd;
        for &(other, cc) in &self.load.couplings[net.index()] {
            if let Some((t2, v2)) = self.last_transition[other.index()] {
                if time.saturating_sub(t2) <= self.cfg.crosstalk_window_ps {
                    if v2 {
                        q_fc -= cc * self.cfg.vdd;
                    } else {
                        q_fc += cc * self.cfg.vdd;
                    }
                }
            }
        }
        let q_fc = q_fc.max(0.0);
        self.energy_fj += q_fc * self.cfg.vdd;

        let r = self.load.drive_kohm[net.index()];
        let c = self.load.c_eff_ff[net.index()];
        let tau_ps = (2.0 * r * c).max(self.cfg.sample_ps());
        let sample_ps = self.cfg.sample_ps();
        let first = (time as f64 / sample_ps) as usize;
        let nbins = (tau_ps / sample_ps).ceil().max(1.0) as usize;
        let per_bin = q_fc / nbins as f64;
        for b in first..(first + nbins).min(self.trace.len()) {
            self.trace[b] += per_bin;
        }
    }

    fn take_energy(&mut self) -> f64 {
        std::mem::take(&mut self.energy_fj)
    }
}

/// One WDDL window simulation with full per-window engine setup — the
/// pre-compiled-kernel cost model (the `LoadModel` is shared by the
/// caller, as the original campaign already did).
pub fn simulate_wddl_window(
    nl: &Netlist,
    lib: &Library,
    load: &LoadModel,
    cfg: &SimConfig,
    input_pairs: &[(NetId, NetId)],
    input_vectors: &[Vec<bool>],
) -> WindowResult {
    let n_cycles = input_vectors.len();
    let mut engine = Engine::new(nl, lib, load, cfg, n_cycles);
    engine.settle_initial();

    let regs: Vec<(NetId, NetId, NetId, NetId)> = nl
        .gate_ids()
        .filter(|&g| is_wddl_register(nl.gate(g)))
        .map(|g| {
            let gate = nl.gate(g);
            (
                gate.inputs[0],
                gate.inputs[1],
                gate.outputs[0],
                gate.outputs[1],
            )
        })
        .collect();
    let mut reg_state: Vec<(bool, bool)> = vec![(false, true); regs.len()];
    let mut cycle_energy_fj = Vec::with_capacity(n_cycles);

    for (c, vector) in input_vectors.iter().enumerate() {
        assert_eq!(vector.len(), input_pairs.len(), "bad vector length");
        let t0 = c as u64 * cfg.period_ps;
        let te = t0 + cfg.eval_start_ps();

        for (_, _, qt, qf) in &regs {
            engine.inject(*qt, t0 + cfg.clk2q_ps, false);
            engine.inject(*qf, t0 + cfg.clk2q_ps, false);
        }
        for &(t, f) in input_pairs {
            engine.inject(t, t0 + cfg.input_delay_ps, false);
            engine.inject(f, t0 + cfg.input_delay_ps, false);
        }
        for (i, (_, _, qt, qf)) in regs.iter().enumerate() {
            engine.inject(*qt, te + cfg.clk2q_ps, reg_state[i].0);
            engine.inject(*qf, te + cfg.clk2q_ps, reg_state[i].1);
        }
        for (&(t, f), &v) in input_pairs.iter().zip(vector) {
            engine.inject(t, te + cfg.input_delay_ps, v);
            engine.inject(f, te + cfg.input_delay_ps, !v);
        }
        engine.run_until(t0 + cfg.period_ps);

        for (i, (dt, df, _, _)) in regs.iter().enumerate() {
            reg_state[i] = (engine.value(*dt), engine.value(*df));
        }
        cycle_energy_fj.push(engine.take_energy());
    }
    WindowResult {
        trace: engine.trace,
        cycle_energy_fj,
    }
}
