//! Criterion micro-benchmarks of every flow stage: the two paper
//! insertions (cell substitution, interconnect decomposition) plus
//! synthesis, placement, routing, extraction, simulation and
//! equivalence checking — the data behind the E8 runtime claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use secflow_cells::Library;
use secflow_core::{decompose, run_secure_flow, substitute, FlowOptions, WddlLibrary};
use secflow_crypto::bench_gen::synthetic_design;
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::attack::dpa_attack;
use secflow_dpa::harness::{collect_des_traces, DesTarget};
use secflow_lec::check_equiv_with_parity;
use secflow_pnr::{place, route, GridPitch, PlaceOptions, RouteOptions};
use secflow_sim::SimConfig;
use secflow_synth::{map_design, MapOptions};

fn bench_substitution(c: &mut Criterion) {
    let lib = Library::lib180();
    let mut group = c.benchmark_group("cell_substitution");
    group.sample_size(10);
    for &gates in &[500usize, 2000, 8000] {
        let design = synthetic_design("sub", gates, 64, 3);
        let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
        group.bench_with_input(BenchmarkId::from_parameter(gates), &mapped, |b, nl| {
            b.iter(|| substitute(black_box(nl), &lib).expect("substitute"));
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    let placed = place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            pitch: GridPitch::Fat,
            anneal_moves_per_gate: 20,
            ..Default::default()
        },
    );
    let routed = route(&sub.fat, &sub.fat_lib, &placed, &RouteOptions::default())
        .expect("route");
    c.bench_function("interconnect_decomposition_des", |b| {
        b.iter(|| decompose(black_box(&routed), &sub));
    });
}

fn bench_pnr(c: &mut Criterion) {
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let mut group = c.benchmark_group("place_and_route_des");
    group.sample_size(10);
    group.bench_function("placement", |b| {
        b.iter(|| {
            place(
                black_box(&mapped),
                &lib,
                &PlaceOptions {
                    anneal_moves_per_gate: 40,
                    ..Default::default()
                },
            )
        });
    });
    let placed = place(
        &mapped,
        &lib,
        &PlaceOptions {
            anneal_moves_per_gate: 40,
            ..Default::default()
        },
    );
    group.bench_function("routing", |b| {
        b.iter(|| {
            route(
                black_box(&mapped),
                &lib,
                &placed,
                &RouteOptions::default(),
            )
            .expect("route")
        });
    });
    group.finish();
}

fn bench_wddl_library(c: &mut Criterion) {
    let lib = Library::lib180();
    c.bench_function("wddl_derive_base_cells", |b| {
        b.iter(|| {
            let mut w = WddlLibrary::new(black_box(&lib));
            w.derive_base_cells()
        });
    });
}

fn bench_lec(c: &mut Criterion) {
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    c.bench_function("lec_fat_vs_original_des", |b| {
        b.iter(|| {
            check_equiv_with_parity(
                black_box(&mapped),
                &lib,
                &sub.fat,
                &sub.fat_lib,
                Some(&sub.fat_output_parity),
                Some(&sub.fat_register_parity),
            )
            .expect("lec")
        });
    });
}

fn bench_power_sim_and_attack(c: &mut Criterion) {
    let lib = Library::lib180();
    let design = des_dpa_design();
    let secure = run_secure_flow(&design, &lib, &FlowOptions::default()).expect("flow");
    let cfg = SimConfig {
        samples_per_cycle: 200,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: &secure.substitution.differential,
        lib: &secure.substitution.diff_lib,
        parasitics: Some(&secure.parasitics),
        wddl_inputs: Some(&secure.substitution.input_pairs),
            glitch_free: false,
        };
    let mut group = c.benchmark_group("dpa_pipeline");
    group.sample_size(10);
    group.bench_function("simulate_50_encryptions_wddl", |b| {
        b.iter(|| collect_des_traces(black_box(&target), &cfg, 46, 50, 1));
    });
    let set = collect_des_traces(&target, &cfg, 46, 200, 1);
    group.bench_function("dpa_attack_200_traces_64_keys", |b| {
        b.iter(|| dpa_attack(black_box(&set.traces), 64, set.selector()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_substitution,
    bench_decomposition,
    bench_pnr,
    bench_wddl_library,
    bench_lec,
    bench_power_sim_and_attack
);
criterion_main!(benches);
