//! Micro-benchmarks of every flow stage: the two paper insertions
//! (cell substitution, interconnect decomposition) plus synthesis,
//! placement, routing, extraction, simulation and equivalence
//! checking — the data behind the E8 runtime claims.
//!
//! Runs on the in-repo median-of-K timing harness
//! (`secflow_testkit::timing`); each measurement prints one JSON line:
//!
//! ```text
//! {"bench":"cell_substitution/2000","median_ns":…,"min_ns":…,"max_ns":…,"k":5}
//! ```
//!
//! Invoke with `cargo bench --offline` or
//! `cargo bench --offline -- substitution` to filter by name.

use std::hint::black_box;

use secflow_cells::Library;
use secflow_core::{decompose, run_secure_flow, substitute, FlowOptions, WddlLibrary};
use secflow_crypto::bench_gen::synthetic_design;
use secflow_crypto::dpa_module::des_dpa_design;
use secflow_dpa::attack::dpa_attack;
use secflow_dpa::harness::{collect_des_traces, DesTarget};
use secflow_lec::check_equiv_with_parity;
use secflow_pnr::{place, route, GridPitch, PlaceOptions, RouteOptions};
use secflow_sim::{SimBackend, SimConfig};
use secflow_synth::{map_design, MapOptions};
use secflow_testkit::timing::{bench, time_median, Measurement};

/// Median-of-K runs per measurement; small because the individual
/// stages are long relative to timer noise.
const K: usize = 5;

fn bench_substitution(filter: &str) {
    if !"cell_substitution".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    for &gates in &[500usize, 2000, 8000] {
        let design = synthetic_design("sub", gates, 64, 3);
        let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
        bench(&format!("cell_substitution/{gates}"), K, || {
            substitute(black_box(&mapped), &lib).expect("substitute");
        });
    }
}

fn bench_decomposition(filter: &str) {
    if !"interconnect_decomposition_des".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    let placed = place(
        &sub.fat,
        &sub.fat_lib,
        &PlaceOptions {
            pitch: GridPitch::Fat,
            anneal_moves_per_gate: 20,
            ..Default::default()
        },
    )
    .expect("place");
    let routed = route(&sub.fat, &sub.fat_lib, &placed, &RouteOptions::default()).expect("route");
    bench("interconnect_decomposition_des", K, || {
        black_box(decompose(black_box(&routed), &sub).expect("decompose"));
    });
}

fn bench_pnr(filter: &str) {
    if !"place_and_route_des".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let opts = PlaceOptions {
        anneal_moves_per_gate: 40,
        ..Default::default()
    };
    bench("place_and_route_des/placement", K, || {
        black_box(place(black_box(&mapped), &lib, &opts).expect("place"));
    });
    let placed = place(&mapped, &lib, &opts).expect("place");
    bench("place_and_route_des/routing", K, || {
        route(black_box(&mapped), &lib, &placed, &RouteOptions::default()).expect("route");
    });
}

fn bench_wddl_library(filter: &str) {
    if !"wddl_derive_base_cells".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    bench("wddl_derive_base_cells", K, || {
        let mut w = WddlLibrary::new(black_box(&lib));
        black_box(w.derive_base_cells());
    });
}

fn bench_lec(filter: &str) {
    if !"lec_fat_vs_original_des".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    bench("lec_fat_vs_original_des", K, || {
        check_equiv_with_parity(
            black_box(&mapped),
            &lib,
            &sub.fat,
            &sub.fat_lib,
            Some(&sub.fat_output_parity),
            Some(&sub.fat_register_parity),
        )
        .expect("lec");
    });
}

fn bench_power_sim_and_attack(filter: &str) {
    if !"dpa_pipeline".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let design = des_dpa_design();
    let secure = run_secure_flow(&design, &lib, &FlowOptions::default()).expect("flow");
    let cfg = SimConfig {
        samples_per_cycle: 200,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: &secure.substitution.differential,
        lib: &secure.substitution.diff_lib,
        parasitics: Some(&secure.parasitics),
        wddl_inputs: Some(&secure.substitution.input_pairs),
        glitch_free: false,
        backend: SimBackend::Event,
    };
    bench("dpa_pipeline/simulate_50_encryptions_wddl", K, || {
        black_box(collect_des_traces(black_box(&target), &cfg, 46, 50, 1).expect("campaign"));
    });
    let set = collect_des_traces(&target, &cfg, 46, 200, 1).expect("campaign");
    bench("dpa_pipeline/dpa_attack_200_traces_64_keys", K, || {
        black_box(dpa_attack(black_box(&set.traces), 64, set.selector()).expect("dpa"));
    });
}

fn bench_exec_speedup(filter: &str) {
    if !"exec_speedup".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let design = des_dpa_design();
    let mapped = map_design(&design, &lib, &MapOptions::default()).expect("map");
    let cfg = SimConfig {
        samples_per_cycle: 200,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let n = 64;
    let threads = secflow_exec::effective_threads();
    let serial = time_median(&format!("exec_speedup/serial_{n}_encryptions"), K, || {
        secflow_exec::with_threads(1, || {
            black_box(collect_des_traces(black_box(&target), &cfg, 46, n, 1).expect("campaign"));
        });
    });
    let parallel = time_median(
        &format!("exec_speedup/parallel_{n}_encryptions_t{threads}"),
        K,
        || {
            black_box(collect_des_traces(black_box(&target), &cfg, 46, n, 1).expect("campaign"));
        },
    );
    println!("{}", serial.json_line());
    println!("{}", parallel.json_line());
    let speedup = serial.median_ns as f64 / parallel.median_ns as f64;
    let json = format!(
        "{{\"bench\":\"exec_speedup\",\"threads\":{threads},\
         \"serial_median_ns\":{},\"parallel_median_ns\":{},\
         \"speedup\":{speedup:.3},\"k\":{K}}}",
        serial.median_ns, parallel.median_ns
    );
    println!("{json}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_exec_speedup.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Compiled kernel vs the original per-window-setup engine, on the
/// same windowed WDDL trace campaign the DPA harness runs. The
/// baseline is the frozen pre-compiled engine
/// ([`secflow_bench::seed_engine`]); both are timed serially (thread
/// count pinned to 1) so the measured ratio is pure kernel speedup,
/// not parallelism. Results go to `results/BENCH_sim_kernel.json`;
/// `--smoke` shrinks the campaign and skips the JSON (a CI
/// compile-and-run check, not a measurement).
fn bench_sim_kernel(filter: &str, smoke: bool) {
    if !"sim_kernel".contains(filter) {
        return;
    }
    use secflow_rand::{RngExt, SeedableRng, StdRng};
    use secflow_sim::{CompiledSim, EngineScratch, LoadModel};

    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    let nl = &sub.differential;
    let wlib = &sub.diff_lib;
    let pairs = &sub.input_pairs[..];
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let key = 46u8;
    let n = if smoke { 8 } else { 256 };
    let k = if smoke { 1 } else { K };

    let mut rng = StdRng::seed_from_u64(1);
    let plaintexts: Vec<(u8, u8)> = (0..n)
        .map(|_| (rng.random_range(0..16u8), rng.random_range(0..64u8)))
        .collect();
    let vector = |pl: u8, pr: u8| -> Vec<bool> {
        let mut v = Vec::with_capacity(16);
        for i in 0..4 {
            v.push(pl >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(pr >> i & 1 == 1);
        }
        for i in 0..6 {
            v.push(key >> i & 1 == 1);
        }
        v
    };
    // The harness's window decomposition: h history cycles, the
    // leakage cycle, two flush cycles.
    let windows: Vec<Vec<Vec<bool>>> = (0..n)
        .map(|i| {
            let h = i.min(2);
            let mut vectors: Vec<Vec<bool>> = Vec::with_capacity(h + 3);
            for j in (i - h)..=i {
                let (pl, pr) = plaintexts[j];
                vectors.push(vector(pl, pr));
            }
            vectors.push(vector(0, 0));
            vectors.push(vector(0, 0));
            vectors
        })
        .collect();
    let spc = cfg.samples_per_cycle;

    // Each campaign returns every leakage-cycle (trace, energy).
    let baseline = || -> Vec<(Vec<f64>, f64)> {
        let load = LoadModel::try_build(nl, wlib, None).unwrap();
        windows
            .iter()
            .map(|vectors| {
                let r = secflow_bench::seed_engine::simulate_wddl_window(
                    nl, wlib, &load, &cfg, pairs, vectors,
                );
                let leak = vectors.len() - 2 - 1;
                (
                    r.trace[leak * spc..(leak + 1) * spc].to_vec(),
                    r.cycle_energy_fj[leak],
                )
            })
            .collect()
    };
    let compiled = || -> Vec<(Vec<f64>, f64)> {
        let load = LoadModel::try_build(nl, wlib, None).unwrap();
        let comp = CompiledSim::build(nl, wlib, &load, &cfg).expect("compiles");
        let mut scratch = EngineScratch::new();
        windows
            .iter()
            .map(|vectors| {
                comp.run_wddl(&mut scratch, pairs, vectors);
                let leak = vectors.len() - 2 - 1;
                (
                    scratch.cycle_trace(leak).to_vec(),
                    scratch.cycle_energy_fj()[leak],
                )
            })
            .collect()
    };

    // The baseline only earns its name if it is bit-for-bit the same
    // function: any drift would make the speedup meaningless.
    let a = baseline();
    let b = compiled();
    assert_eq!(a.len(), b.len());
    for (i, ((ta, ea), (tb, eb))) in a.iter().zip(&b).enumerate() {
        assert_eq!(ea.to_bits(), eb.to_bits(), "energy {i} diverged");
        let bits = |t: &[f64]| t.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ta), bits(tb), "trace {i} diverged");
    }

    let base = secflow_exec::with_threads(1, || {
        time_median(
            &format!("sim_kernel/per_window_setup_{n}_encryptions"),
            k,
            || {
                black_box(baseline());
            },
        )
    });
    let comp = secflow_exec::with_threads(1, || {
        time_median(&format!("sim_kernel/compiled_{n}_encryptions"), k, || {
            black_box(compiled());
        })
    });
    println!("{}", base.json_line());
    println!("{}", comp.json_line());
    let speedup = base.median_ns as f64 / comp.median_ns as f64;
    let json = format!(
        "{{\"bench\":\"sim_kernel\",\"threads\":1,\"n_encryptions\":{n},\
         \"baseline_median_ns\":{},\"compiled_median_ns\":{},\
         \"speedup\":{speedup:.3},\"k\":{k}}}",
        base.median_ns, comp.median_ns
    );
    println!("{json}");
    if smoke {
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_sim_kernel.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Bit-sliced campaign kernel vs the compiled event kernel, on the
/// same WDDL trace campaign the DPA harness runs. Both arms go through
/// [`collect_des_traces`] — the event backend simulates one window per
/// encryption, the bit-sliced backend packs up to 64 encryptions per
/// `u64` lane batch — so the measured ratio is the end-to-end campaign
/// speedup an experiment binary sees from `--sim-backend bitslice`.
/// Both are timed serially (thread count pinned to 1) so the ratio is
/// pure kernel speedup, not parallelism. A bit-for-bit trace
/// comparison runs before timing: the speedup is only meaningful if
/// the two kernels are the same function. Results go to
/// `results/BENCH_sim_bitslice.json`; `--smoke` shrinks the campaign
/// and skips the JSON.
fn bench_sim_bitslice(filter: &str, smoke: bool) {
    if !"sim_bitslice".contains(filter) {
        return;
    }
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let key = 46u8;
    // 1024 encryptions: the same order of magnitude as the paper's
    // Fig. 6 campaigns (2000 traces), and enough full 64-lane batches
    // that the ragged warm-up batches and the one-time build cost
    // amortize out of the ratio.
    let n = if smoke { 8 } else { 1024 };
    let k = if smoke { 1 } else { K };
    let target = |backend: SimBackend| DesTarget {
        netlist: &sub.differential,
        lib: &sub.diff_lib,
        parasitics: None,
        wddl_inputs: Some(&sub.input_pairs),
        glitch_free: false,
        backend,
    };
    let event = target(SimBackend::Event);
    let bitslice = target(SimBackend::Bitslice);
    let campaign = |t: &DesTarget| collect_des_traces(t, &cfg, key, n, 1).expect("campaign");

    // The speedup is only meaningful if both kernels are the same
    // function: byte-compare every trace sample before timing.
    let a = campaign(&event);
    let b = campaign(&bitslice);
    assert_eq!(a.ciphertexts, b.ciphertexts, "ciphertexts diverged");
    assert_eq!(a.traces.len(), b.traces.len());
    for (i, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
        let bits = |t: &[f64]| t.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ta), bits(tb), "trace {i} diverged");
    }

    let base = secflow_exec::with_threads(1, || {
        time_median(&format!("sim_bitslice/event_{n}_encryptions"), k, || {
            black_box(campaign(&event));
        })
    });
    let bs = secflow_exec::with_threads(1, || {
        time_median(&format!("sim_bitslice/bitslice_{n}_encryptions"), k, || {
            black_box(campaign(&bitslice));
        })
    });
    println!("{}", base.json_line());
    println!("{}", bs.json_line());
    let speedup = base.median_ns as f64 / bs.median_ns as f64;
    let json = format!(
        "{{\"bench\":\"sim_bitslice\",\"threads\":1,\"n_encryptions\":{n},\
         \"event_median_ns\":{},\"bitslice_median_ns\":{},\
         \"speedup\":{speedup:.3},\"k\":{k}}}",
        base.median_ns, bs.median_ns
    );
    println!("{json}");
    if smoke {
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_sim_bitslice.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Cost of the observability layer on the DPA trace campaign, in both
/// of its states: disabled (the default NoopSink path — one relaxed
/// atomic load per instrumentation point) and enabled (per-thread
/// sinks recording). The disabled overhead cannot be measured
/// differentially at runtime (the instrumentation is compiled in), so
/// it is bounded from measurements: per-call disabled cost × the exact
/// number of disabled-path checks the campaign executes (derived from
/// an enabled run's own counters). Results go to
/// `results/BENCH_obs_overhead.json`; the noop bound must stay < 1 %.
fn bench_obs_overhead(filter: &str, smoke: bool) {
    if !"obs_overhead".contains(filter) {
        return;
    }
    use secflow_obs::{self as obs, Counter};

    // (a) Per-call cost of the disabled path.
    assert!(!obs::enabled(), "obs must be disabled for the baseline");
    let iters: u64 = if smoke { 200_000 } else { 4_000_000 };
    let t = std::time::Instant::now();
    for _ in 0..iters {
        obs::add(black_box(Counter::SimWindows), black_box(1));
    }
    let add_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // (b) The campaign, with observability off and on.
    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let target = DesTarget {
        netlist: &mapped,
        lib: &lib,
        parasitics: None,
        wddl_inputs: None,
        glitch_free: false,
        backend: SimBackend::Event,
    };
    let n = if smoke { 8 } else { 64 };
    let k = if smoke { 1 } else { K };
    // Pinned serial so the measured deltas are instrumentation cost,
    // not scheduling noise.
    let campaign = || {
        secflow_exec::with_threads(1, || {
            black_box(collect_des_traces(black_box(&target), &cfg, 46, n, 1).expect("campaign"));
        });
    };
    // Interleaved A/B rounds: the disabled and enabled campaigns
    // alternate within each round so clock-frequency and cache drift
    // hit both arms equally (sequential block-of-K measurement showed
    // ±20 % drift swamping the real delta on shared machines).
    campaign(); // warm-up: page in code and data, fill caches
    let mut windows = 0u64;
    let mut regions = 0u64;
    let mut dis_ns: Vec<u128> = Vec::with_capacity(k);
    let mut en_ns: Vec<u128> = Vec::with_capacity(k);
    for _ in 0..k {
        let t = std::time::Instant::now();
        campaign();
        dis_ns.push(t.elapsed().as_nanos());
        let t = std::time::Instant::now();
        let ((), report) = obs::capture(campaign);
        en_ns.push(t.elapsed().as_nanos());
        windows = report.counter(Counter::SimWindows);
        regions = report.counter(Counter::ExecRegions);
    }
    let measurement = |name: &str, runs: &[u128]| {
        let mut sorted = runs.to_vec();
        sorted.sort_unstable();
        Measurement {
            name: name.to_string(),
            runs_ns: runs.to_vec(),
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("k > 0"),
        }
    };
    let disabled = measurement("obs_overhead/campaign_disabled", &dis_ns);
    let enabled = measurement("obs_overhead/campaign_enabled", &en_ns);
    println!("{}", disabled.json_line());
    println!("{}", enabled.json_line());

    // Disabled-path checks per campaign: one `enabled()` gate per
    // window, a handful per exec region (region id, span, worker
    // gate), and a fixed few per campaign (campaign span, trace
    // counter). Bounded generously.
    let noop_calls = windows + regions * 4 + 16;
    let noop_pct = noop_calls as f64 * add_ns / disabled.median_ns as f64 * 100.0;
    let enabled_pct =
        (enabled.median_ns as f64 / disabled.median_ns as f64 - 1.0) * 100.0;
    assert!(
        noop_pct < 1.0,
        "disabled observability must stay below 1% of campaign time \
         (bound: {noop_pct:.4}%)"
    );
    let json = format!(
        "{{\"bench\":\"obs_overhead\",\"threads\":1,\"n_encryptions\":{n},\
         \"disabled_add_ns_per_op\":{add_ns:.3},\
         \"campaign_disabled_median_ns\":{},\
         \"campaign_enabled_median_ns\":{},\
         \"noop_calls_per_campaign\":{noop_calls},\
         \"noop_overhead_pct\":{noop_pct:.5},\
         \"enabled_overhead_pct\":{enabled_pct:.3},\"k\":{k}}}",
        disabled.median_ns, enabled.median_ns
    );
    println!("{json}");
    if smoke {
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_obs_overhead.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Warm-vs-cold latency of the persistent job server's
/// content-addressed cache (`secflow-serve`), on the fig6 smoke
/// campaign (secure DES implementation, DPA, 150 traces). The cold
/// submission executes the whole map → substitute → place → route →
/// decompose → extract → compile → simulate → attack pipeline; the
/// warm resubmission of the *same* request is answered from the
/// response cache. The payloads must be byte-identical — the speedup
/// is only meaningful if the cache returns exactly what the pipeline
/// would. Results go to `results/BENCH_serve_cache.json`; the warm
/// path must be at least 5× faster. `--smoke` shrinks the campaign
/// and skips the JSON.
fn bench_serve_cache(filter: &str, smoke: bool) {
    if !"serve_cache".contains(filter) {
        return;
    }
    use secflow_serve::{proto::canonical_json, Engine, Request, Value};

    let n = if smoke { 8 } else { 150 };
    let tuning = if smoke {
        r#","options":{"anneal_moves_per_gate":4,"verify":false},"sim":{"samples_per_cycle":40}"#
    } else {
        ""
    };
    let req_text =
        format!(r#"{{"job":"campaign","attack":"dpa","n":{n},"seed":1,"key":46{tuning}}}"#);
    let request = Request::parse(req_text.as_bytes()).expect("request parses");
    let canonical = canonical_json(&Value::parse(&req_text).expect("request is JSON"));
    let engine = Engine::new(256 << 20, None);

    let t = std::time::Instant::now();
    let cold = engine.execute(&canonical, &request).expect("cold job");
    let cold_ns = t.elapsed().as_nanos();
    assert!(!cold.cached_response, "first submission must miss");
    let cold_m = Measurement {
        name: "serve_cache/cold_campaign".to_string(),
        runs_ns: vec![cold_ns],
        median_ns: cold_ns,
        min_ns: cold_ns,
        max_ns: cold_ns,
    };

    // One warm run up front pins the contract the speedup rests on:
    // the resubmission is served from cache, byte-identical.
    let warm = engine.execute(&canonical, &request).expect("warm job");
    assert!(warm.cached_response, "resubmission must hit the cache");
    assert_eq!(
        cold.payload, warm.payload,
        "cached payload must be byte-identical to the cold run"
    );

    let k = if smoke { 1 } else { K };
    let warm_m = time_median("serve_cache/warm_resubmission", k, || {
        let out = engine.execute(&canonical, &request).expect("warm job");
        assert!(out.cached_response);
        black_box(out);
    });
    println!("{}", cold_m.json_line());
    println!("{}", warm_m.json_line());
    let speedup = cold_ns as f64 / warm_m.median_ns as f64;
    let json = format!(
        "{{\"bench\":\"serve_cache\",\"n_traces\":{n},\
         \"cold_ns\":{cold_ns},\"warm_median_ns\":{},\
         \"speedup\":{speedup:.1},\"byte_identical\":true,\"k\":{k}}}",
        warm_m.median_ns
    );
    println!("{json}");
    if smoke {
        return;
    }
    assert!(
        speedup >= 5.0,
        "warm cache must be at least 5x faster (got {speedup:.1}x)"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_serve_cache.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Peak resident-set size in kB (`VmHWM` from `/proc/self/status`),
/// where the platform exposes it. A high-water mark, so arm ordering
/// matters: the streaming arm runs first, and the materialize arm's
/// later reading shows how far the trace matrix pushed the peak.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The fused streaming campaign (bit-sliced kernel feeding the
/// one-pass accumulators) against the materialize-then-attack path it
/// replaces: `collect_des_traces` (event kernel — the pre-streaming
/// default) building the full trace matrix, then the batch DPA +
/// MTD scan over it. All arms are timed serially (thread count pinned
/// to 1, the same discipline as `sim_bitslice`) so the ratio is
/// per-core throughput of the pipeline itself, not parallelism. A
/// byte-identity check runs before timing — the speedup is only
/// meaningful if both paths compute the same statistics. The
/// materialized bit-sliced arm is also timed so the JSON separates
/// kernel gain from fusion gain. Results go to
/// `results/BENCH_stream_1m.json`; the fused path must deliver at
/// least 5× the baseline's traces/sec. `--smoke` shrinks the campaign
/// and skips the JSON and the floor.
fn bench_stream_1m(filter: &str, smoke: bool) {
    if !"stream_1m".contains(filter) {
        return;
    }
    use secflow_dpa::harness::{
        analyze_trace_set, collect_des_analysis_streaming, collect_des_traces_with, AnalysisPlan,
        CampaignProgram,
    };

    let lib = Library::lib180();
    let mapped = map_design(&des_dpa_design(), &lib, &MapOptions::default()).expect("map");
    let sub = substitute(&mapped, &lib).expect("substitute");
    let cfg = SimConfig {
        samples_per_cycle: 100,
        ..Default::default()
    };
    let key = 46u8;
    let n = if smoke { 64 } else { 8192 };
    let k = if smoke { 1 } else { 3 };
    let chunk = 4096;
    let plan = AnalysisPlan {
        n_keys: 64,
        correct_key: key,
        step: Some((n / 40).max(10)),
        dpa: true,
        cpa: false,
    };
    let target = |backend: SimBackend| DesTarget {
        netlist: &sub.differential,
        lib: &sub.diff_lib,
        parasitics: None,
        wddl_inputs: Some(&sub.input_pairs),
        glitch_free: false,
        backend,
    };
    let event = target(SimBackend::Event);
    let bitslice = target(SimBackend::Bitslice);
    let bs_program = CampaignProgram::build(&bitslice, &cfg).expect("bitslice program");
    let ev_program = CampaignProgram::build(&event, &cfg).expect("event program");
    let stream = || {
        collect_des_analysis_streaming(&bs_program, &bitslice, &cfg, key, n, 1, &plan, chunk, None)
            .expect("streaming campaign")
    };
    let materialize = |program: &CampaignProgram, t: &DesTarget| {
        let set = collect_des_traces_with(program, t, &cfg, key, n, 1).expect("campaign");
        analyze_trace_set(&set, &plan).expect("analysis")
    };

    // The ratio is only meaningful if all three arms are the same
    // function: the event and bit-sliced kernels are differentially
    // tested elsewhere, and the streaming accumulators must reproduce
    // the batch statistics exactly.
    let a = stream();
    assert!(
        a == materialize(&ev_program, &event),
        "stream vs event-materialize diverged"
    );
    assert!(
        a == materialize(&bs_program, &bitslice),
        "stream vs bitslice-materialize diverged"
    );

    let stream_m = secflow_exec::with_threads(1, || {
        time_median(&format!("stream_1m/stream_bitslice_{n}"), k, || {
            black_box(stream());
        })
    });
    let stream_rss = peak_rss_kb();
    let mat_bs_m = secflow_exec::with_threads(1, || {
        time_median(&format!("stream_1m/materialize_bitslice_{n}"), k, || {
            black_box(materialize(&bs_program, &bitslice));
        })
    });
    let mat_ev_m = secflow_exec::with_threads(1, || {
        time_median(&format!("stream_1m/materialize_event_{n}"), k, || {
            black_box(materialize(&ev_program, &event));
        })
    });
    let mat_rss = peak_rss_kb();
    println!("{}", stream_m.json_line());
    println!("{}", mat_bs_m.json_line());
    println!("{}", mat_ev_m.json_line());

    let tps = |m: &Measurement| n as f64 / (m.median_ns as f64 / 1e9);
    let speedup = tps(&stream_m) / tps(&mat_ev_m);
    let json = format!(
        "{{\"bench\":\"stream_1m\",\"threads\":1,\"n_traces\":{n},\"chunk\":{chunk},\
         \"stream_traces_per_sec\":{:.0},\"materialize_event_traces_per_sec\":{:.0},\
         \"materialize_bitslice_traces_per_sec\":{:.0},\"speedup\":{speedup:.1},\
         \"stream_peak_rss_kb\":{},\"materialize_peak_rss_kb\":{},\
         \"byte_identical\":true,\"k\":{k}}}",
        tps(&stream_m),
        tps(&mat_ev_m),
        tps(&mat_bs_m),
        stream_rss.map_or("null".to_string(), |v| v.to_string()),
        mat_rss.map_or("null".to_string(), |v| v.to_string()),
    );
    println!("{json}");
    if smoke {
        return;
    }
    assert!(
        speedup >= 5.0,
        "fused streaming must deliver at least 5x the materialize-then-attack \
         baseline's throughput (got {speedup:.1}x)"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_stream_1m.json");
    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    // `cargo bench -- <substring>` runs only matching groups; the
    // harness also swallows libtest-style flags cargo may pass.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    let smoke = std::env::args().any(|a| a == "--smoke");
    const GROUPS: [&str; 12] = [
        "cell_substitution",
        "interconnect_decomposition_des",
        "place_and_route_des",
        "wddl_derive_base_cells",
        "lec_fat_vs_original_des",
        "dpa_pipeline",
        "exec_speedup",
        "sim_kernel",
        "sim_bitslice",
        "obs_overhead",
        "serve_cache",
        "stream_1m",
    ];
    if !GROUPS.iter().any(|g| g.contains(filter.as_str())) {
        eprintln!("no bench group matches `{filter}`; groups: {GROUPS:?}");
        return;
    }
    bench_substitution(&filter);
    bench_decomposition(&filter);
    bench_pnr(&filter);
    bench_wddl_library(&filter);
    bench_lec(&filter);
    bench_power_sim_and_attack(&filter);
    bench_exec_speedup(&filter);
    bench_sim_kernel(&filter, smoke);
    bench_sim_bitslice(&filter, smoke);
    bench_obs_overhead(&filter, smoke);
    bench_serve_cache(&filter, smoke);
    bench_stream_1m(&filter, smoke);
}
