//! Sum-of-products covers (cube lists).

use std::fmt;

use crate::tt::TruthTable;

/// A product term over up to 6 variables: a conjunction of positive and
/// negative literals, stored as two bit masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    pos: u8,
    neg: u8,
}

impl Cube {
    /// The empty product (tautology: evaluates true everywhere).
    pub fn tautology() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// Adds the positive literal `v` to the cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube already contains `¬v` (the cube would be
    /// unsatisfiable).
    pub fn with_pos_literal(mut self, v: u8) -> Self {
        assert!(self.neg >> v & 1 == 0, "contradictory cube");
        self.pos |= 1 << v;
        self
    }

    /// Adds the negative literal `¬v` to the cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube already contains `v`.
    pub fn with_neg_literal(mut self, v: u8) -> Self {
        assert!(self.pos >> v & 1 == 0, "contradictory cube");
        self.neg |= 1 << v;
        self
    }

    /// Mask of variables appearing positively.
    pub fn pos_mask(&self) -> u8 {
        self.pos
    }

    /// Mask of variables appearing negatively.
    pub fn neg_mask(&self) -> u8 {
        self.neg
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> u32 {
        (self.pos.count_ones()) + (self.neg.count_ones())
    }

    /// Evaluates the cube on the input assignment.
    pub fn eval(&self, input: u32) -> bool {
        let input = input as u8;
        input & self.pos == self.pos && !input & self.neg == self.neg
    }

    /// True if the cube has no negative literals.
    pub fn is_positive(&self) -> bool {
        self.neg == 0
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for v in 0..8u8 {
            if self.pos >> v & 1 == 1 {
                if !first {
                    write!(f, "·")?;
                }
                write!(f, "x{v}")?;
                first = false;
            }
            if self.neg >> v & 1 == 1 {
                if !first {
                    write!(f, "·")?;
                }
                write!(f, "¬x{v}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A sum-of-products cover: the disjunction of a list of [`Cube`]s over
/// a fixed variable count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    n: u8,
    cubes: Vec<Cube>,
}

impl Sop {
    /// Builds a cover over `n` variables from a cube list.
    pub fn new(n: u8, cubes: Vec<Cube>) -> Self {
        Sop { n, cubes }
    }

    /// Variable count.
    pub fn vars(&self) -> u8 {
        self.n
    }

    /// The cube list.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Evaluates the cover on an input assignment.
    pub fn eval(&self, input: u32) -> bool {
        self.cubes.iter().any(|c| c.eval(input))
    }

    /// Converts the cover back into a truth table over `n` variables.
    pub fn to_truth_table(&self, n: u8) -> TruthTable {
        TruthTable::from_fn(n, |a| self.eval(a))
    }

    /// Total literal count over all cubes (a proxy for gate cost).
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// True if every cube is free of negative literals — the property
    /// WDDL requires of its dual-rail covers after literal remapping.
    pub fn is_positive(&self) -> bool {
        self.cubes.iter().all(Cube::is_positive)
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self.cubes.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_eval() {
        let c = Cube::tautology().with_pos_literal(0).with_neg_literal(2);
        assert!(c.eval(0b001));
        assert!(c.eval(0b011));
        assert!(!c.eval(0b101));
        assert!(!c.eval(0b000));
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_cube_panics() {
        let _ = Cube::tautology().with_pos_literal(1).with_neg_literal(1);
    }

    #[test]
    fn sop_eval_and_display() {
        // x0·x1 + ¬x2
        let s = Sop::new(
            3,
            vec![
                Cube::tautology().with_pos_literal(0).with_pos_literal(1),
                Cube::tautology().with_neg_literal(2),
            ],
        );
        assert!(s.eval(0b011));
        assert!(s.eval(0b000));
        assert!(!s.eval(0b100));
        assert_eq!(s.literal_count(), 3);
        let text = s.to_string();
        assert!(text.contains('+'));
    }

    #[test]
    fn positivity_check() {
        let pos = Sop::new(2, vec![Cube::tautology().with_pos_literal(0)]);
        let neg = Sop::new(2, vec![Cube::tautology().with_neg_literal(0)]);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
    }

    #[test]
    fn empty_sop_is_false() {
        let s = Sop::new(2, vec![]);
        assert_eq!(s.to_truth_table(2), TruthTable::zero(2));
        assert_eq!(s.to_string(), "0");
    }
}
