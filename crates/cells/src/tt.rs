//! Truth tables over up to 6 variables, packed into a `u64`.
//!
//! Bit `i` of the table holds the function value for the input
//! assignment whose bits are the binary expansion of `i` (variable 0 is
//! the least significant bit).

use crate::sop::{Cube, Sop};

/// A complete truth table of a boolean function of `n ≤ 6` variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TruthTable {
    bits: u64,
    n: u8,
}

/// Mask of the `2^n` valid bits.
#[inline]
fn mask(n: u8) -> u64 {
    if n == 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << n)) - 1
    }
}

impl TruthTable {
    /// Maximum supported variable count.
    pub const MAX_VARS: u8 = 6;

    /// Builds a table from raw bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 6`.
    pub fn from_bits(n: u8, bits: u64) -> Self {
        assert!(n <= Self::MAX_VARS, "at most 6 variables supported");
        TruthTable {
            bits: bits & mask(n),
            n,
        }
    }

    /// Builds a table by evaluating `f` on every assignment.
    pub fn from_fn(n: u8, mut f: impl FnMut(u32) -> bool) -> Self {
        assert!(n <= Self::MAX_VARS);
        let mut bits = 0u64;
        for i in 0..(1u32 << n) {
            if f(i) {
                bits |= 1 << i;
            }
        }
        TruthTable { bits, n }
    }

    /// The constant-false function of `n` variables.
    pub fn zero(n: u8) -> Self {
        Self::from_bits(n, 0)
    }

    /// The constant-true function of `n` variables.
    pub fn one(n: u8) -> Self {
        Self::from_bits(n, u64::MAX)
    }

    /// The projection function returning variable `i`.
    pub fn var(n: u8, i: u8) -> Self {
        assert!(i < n);
        Self::from_fn(n, |a| a >> i & 1 == 1)
    }

    /// Two-input AND, for convenience in tests and the library.
    pub fn and2() -> Self {
        Self::from_fn(2, |a| a == 3)
    }

    /// Two-input OR.
    pub fn or2() -> Self {
        Self::from_fn(2, |a| a != 0)
    }

    /// Two-input XOR.
    pub fn xor2() -> Self {
        Self::from_fn(2, |a| (a.count_ones() & 1) == 1)
    }

    /// Number of variables.
    #[inline]
    pub fn vars(&self) -> u8 {
        self.n
    }

    /// Raw bit representation (only the low `2^n` bits are meaningful).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function on the assignment `input` (bit `i` =
    /// variable `i`).
    #[inline]
    pub fn eval(&self, input: u32) -> bool {
        debug_assert!(input < (1u32 << self.n));
        self.bits >> input & 1 == 1
    }

    /// Logical complement.
    pub fn not(&self) -> Self {
        TruthTable {
            bits: !self.bits & mask(self.n),
            n: self.n,
        }
    }

    /// Conjunction with `other` (same variable count required).
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        TruthTable {
            bits: self.bits & other.bits,
            n: self.n,
        }
    }

    /// Disjunction with `other`.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        TruthTable {
            bits: self.bits | other.bits,
            n: self.n,
        }
    }

    /// Exclusive-or with `other`.
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        TruthTable {
            bits: (self.bits ^ other.bits) & mask(self.n),
            n: self.n,
        }
    }

    /// Positive cofactor: the function with variable `v` fixed to
    /// `val`. The result still formally ranges over `n` variables (the
    /// fixed variable becomes irrelevant).
    pub fn cofactor(&self, v: u8, val: bool) -> Self {
        assert!(v < self.n);
        Self::from_fn(self.n, |a| {
            let a = if val { a | 1 << v } else { a & !(1u32 << v) };
            self.eval(a)
        })
    }

    /// The boolean dual: `f^d(x) = ¬f(¬x)`. WDDL's false-rail gate of a
    /// positive gate computes the dual on the complementary rails.
    pub fn dual(&self) -> Self {
        Self::from_fn(self.n, |a| !self.eval(!a & ((1 << self.n) - 1)))
    }

    /// True if the function depends on variable `v`.
    pub fn depends_on(&self, v: u8) -> bool {
        self.cofactor(v, false) != self.cofactor(v, true)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<u8> {
        (0..self.n).filter(|&v| self.depends_on(v)).collect()
    }

    /// True if the function is positive unate (monotone non-decreasing)
    /// in variable `v`.
    pub fn is_positive_unate_in(&self, v: u8) -> bool {
        let f0 = self.cofactor(v, false);
        let f1 = self.cofactor(v, true);
        f0.bits & !f1.bits == 0
    }

    /// True if the function is positive unate in all of its variables;
    /// such functions have an all-positive SOP cover.
    pub fn is_positive_unate(&self) -> bool {
        (0..self.n).all(|v| self.is_positive_unate_in(v))
    }

    /// Applies an input permutation: variable `i` of the result reads
    /// variable `perm[i]` of `self`.
    pub fn permute(&self, perm: &[u8]) -> Self {
        assert_eq!(perm.len(), self.n as usize);
        Self::from_fn(self.n, |a| {
            let mut orig = 0u32;
            for (i, &p) in perm.iter().enumerate() {
                if a >> i & 1 == 1 {
                    orig |= 1 << p;
                }
            }
            self.eval(orig)
        })
    }

    /// Applies an input phase: variable `i` of the result is the
    /// complement of variable `i` of `self` whenever bit `i` of `mask`
    /// is set: `tt'(x) = tt(x ^ mask)`.
    pub fn phase(&self, mask: u32) -> Self {
        Self::from_fn(self.n, |a| self.eval(a ^ mask))
    }

    /// Extends the function to `m ≥ n` variables (new variables are
    /// irrelevant).
    pub fn extend(&self, m: u8) -> Self {
        assert!(m >= self.n && m <= Self::MAX_VARS);
        Self::from_fn(m, |a| self.eval(a & ((1 << self.n) - 1)))
    }

    /// Number of input assignments on which the function is true.
    pub fn ones(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// Computes an irredundant sum-of-products cover of `f` using the
/// Minato–Morreale ISOP procedure.
///
/// The cover is exact (`cover.to_truth_table(n) == f`) and irredundant:
/// removing any cube changes the function. WDDL compound-gate generation
/// builds its positive dual-rail covers from this.
pub fn isop(f: &TruthTable) -> Sop {
    let n = f.vars();
    let cubes = isop_rec(*f, *f, n);
    Sop::new(n, cubes)
}

/// Recursive ISOP over the interval `[lower, upper]`: returns cubes
/// covering at least `lower` and staying within `upper`.
fn isop_rec(lower: TruthTable, upper: TruthTable, n: u8) -> Vec<Cube> {
    if lower.bits() == 0 {
        return Vec::new();
    }
    if upper == TruthTable::one(n) {
        return vec![Cube::tautology()];
    }
    // Pick the lowest variable in the support of lower or upper.
    let v = (0..n)
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("non-constant interval must have support");

    let l0 = lower.cofactor(v, false);
    let l1 = lower.cofactor(v, true);
    let u0 = upper.cofactor(v, false);
    let u1 = upper.cofactor(v, true);

    // Cubes that must contain literal ¬v.
    let c0 = isop_rec(l0.and(&u1.not()), u0, n);
    // Cubes that must contain literal v.
    let c1 = isop_rec(l1.and(&u0.not()), u1, n);

    let f0 = Sop::new(n, c0.clone()).to_truth_table(n);
    let f1 = Sop::new(n, c1.clone()).to_truth_table(n);

    // Remaining minterms covered without referencing v.
    let lnew = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let cstar = isop_rec(lnew, u0.and(&u1), n);

    let mut out = Vec::with_capacity(c0.len() + c1.len() + cstar.len());
    out.extend(c0.into_iter().map(|c| c.with_neg_literal(v)));
    out.extend(c1.into_iter().map(|c| c.with_pos_literal(v)));
    out.extend(cstar);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tables() {
        assert_eq!(TruthTable::and2().bits(), 0b1000);
        assert_eq!(TruthTable::or2().bits(), 0b1110);
        assert_eq!(TruthTable::xor2().bits(), 0b0110);
        assert!(TruthTable::and2().eval(3));
        assert!(!TruthTable::and2().eval(1));
    }

    #[test]
    fn var_projection() {
        let x0 = TruthTable::var(3, 0);
        for a in 0..8 {
            assert_eq!(x0.eval(a), a & 1 == 1);
        }
    }

    #[test]
    fn dual_of_and_is_or() {
        assert_eq!(TruthTable::and2().dual(), TruthTable::or2());
        assert_eq!(TruthTable::or2().dual(), TruthTable::and2());
    }

    #[test]
    fn aoi21_dual_is_oai21() {
        // AOI21 = ¬(ab + c); OAI21 = ¬((a+b)·c)
        let aoi = TruthTable::from_fn(3, |x| {
            let (a, b, c) = (x & 1 == 1, x >> 1 & 1 == 1, x >> 2 & 1 == 1);
            !((a && b) || c)
        });
        let oai = TruthTable::from_fn(3, |x| {
            let (a, b, c) = (x & 1 == 1, x >> 1 & 1 == 1, x >> 2 & 1 == 1);
            !((a || b) && c)
        });
        assert_eq!(aoi.dual(), oai);
    }

    #[test]
    fn unateness() {
        assert!(TruthTable::and2().is_positive_unate());
        assert!(TruthTable::or2().is_positive_unate());
        assert!(!TruthTable::xor2().is_positive_unate());
        let inv = TruthTable::from_fn(1, |a| a == 0);
        assert!(!inv.is_positive_unate_in(0));
    }

    #[test]
    fn support_ignores_irrelevant_vars() {
        let f = TruthTable::and2().extend(4);
        assert_eq!(f.support(), vec![0, 1]);
        assert!(!f.depends_on(3));
    }

    #[test]
    fn permute_swaps_inputs() {
        // f(a, b) = a AND NOT b — not symmetric.
        let f = TruthTable::from_fn(2, |x| x & 1 == 1 && x >> 1 & 1 == 0);
        let g = f.permute(&[1, 0]);
        for x in 0..4u32 {
            let swapped = (x & 1) << 1 | (x >> 1 & 1);
            assert_eq!(g.eval(x), f.eval(swapped));
        }
    }

    #[test]
    fn isop_of_xor_has_two_cubes() {
        let cover = isop(&TruthTable::xor2());
        assert_eq!(cover.cubes().len(), 2);
        assert_eq!(cover.to_truth_table(2), TruthTable::xor2());
    }

    #[test]
    fn isop_of_constants() {
        assert!(isop(&TruthTable::zero(3)).cubes().is_empty());
        let one = isop(&TruthTable::one(3));
        assert_eq!(one.to_truth_table(3), TruthTable::one(3));
    }

    #[test]
    fn isop_is_exact() {
        secflow_testkit::prop_check!(cases: 64, seed: 0x7701, |g| {
            let n = g.random_range(1..6u8);
            let f = TruthTable::from_bits(n, g.random());
            let cover = isop(&f);
            assert_eq!(cover.to_truth_table(n), f);
        });
    }

    #[test]
    fn isop_is_irredundant() {
        secflow_testkit::prop_check!(cases: 64, seed: 0x7702, |g| {
            let n = g.random_range(1..5u8);
            let f = TruthTable::from_bits(n, g.random());
            let cover = isop(&f);
            let cubes = cover.cubes();
            for skip in 0..cubes.len() {
                let reduced: Vec<_> = cubes
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, c)| *c)
                    .collect();
                let g = Sop::new(n, reduced).to_truth_table(n);
                assert_ne!(g, f, "cube {skip} is redundant");
            }
        });
    }

    #[test]
    fn dual_is_involutive() {
        secflow_testkit::prop_check!(cases: 64, seed: 0x7703, |g| {
            let n = g.random_range(1..6u8);
            let f = TruthTable::from_bits(n, g.random());
            assert_eq!(f.dual().dual(), f);
        });
    }

    #[test]
    fn demorgan_holds() {
        secflow_testkit::prop_check!(cases: 64, seed: 0x7704, |g| {
            let a = TruthTable::from_bits(4, g.random());
            let b = TruthTable::from_bits(4, g.random());
            assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        });
    }

    #[test]
    fn cofactor_shannon_expansion() {
        secflow_testkit::prop_check!(cases: 64, seed: 0x7705, |g| {
            let n = g.random_range(1..6u8);
            let v = g.random_range(0..n);
            let f = TruthTable::from_bits(n, g.random());
            let x = TruthTable::var(n, v);
            let recon = x.not().and(&f.cofactor(v, false)).or(&x.and(&f.cofactor(v, true)));
            assert_eq!(recon, f);
        });
    }
}
