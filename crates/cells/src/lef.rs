//! Physical (LEF-like) cell data: geometry on the placement/routing
//! grid.
//!
//! All horizontal dimensions are expressed in routing-track units; one
//! track is [`TRACK_UM`] micrometres. Cells are one standard row tall
//! ([`ROW_TRACKS`] tracks, [`ROW_HEIGHT_UM`] µm).

/// Routing pitch in micrometres (both directions), 0.18 µm flavoured.
pub const TRACK_UM: f64 = 0.66;

/// Standard cell row height in tracks.
pub const ROW_TRACKS: u32 = 8;

/// Standard cell row height in micrometres.
pub const ROW_HEIGHT_UM: f64 = ROW_TRACKS as f64 * TRACK_UM;

/// Physical abstract of a cell: its footprint and pin access points,
/// the information a placer and router need.
#[derive(Debug, Clone, PartialEq)]
pub struct LefMacro {
    /// Cell width in routing tracks.
    pub width_tracks: u32,
    /// Horizontal pin positions (track offset from the cell origin),
    /// one per input pin, in pin order.
    pub input_pin_tracks: Vec<u32>,
    /// Horizontal pin positions for output pins, in pin order.
    pub output_pin_tracks: Vec<u32>,
}

impl LefMacro {
    /// Builds a macro of `width_tracks` with `n_in` input pins and
    /// `n_out` output pins spread evenly across the cell width.
    ///
    /// # Panics
    ///
    /// Panics if the cell is too narrow to give every pin its own
    /// track.
    pub fn evenly_spread(width_tracks: u32, n_in: usize, n_out: usize) -> Self {
        let total = n_in + n_out;
        assert!(
            total as u32 <= width_tracks,
            "cell of width {width_tracks} cannot fit {total} pins"
        );
        // Distribute pins on distinct tracks: inputs from the left,
        // outputs from the right.
        let input_pin_tracks = (0..n_in as u32).collect();
        let output_pin_tracks = (0..n_out as u32).map(|i| width_tracks - 1 - i).collect();
        LefMacro {
            width_tracks,
            input_pin_tracks,
            output_pin_tracks,
        }
    }

    /// Cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.width_tracks as f64 * TRACK_UM * ROW_HEIGHT_UM
    }

    /// Widens the macro by a factor, keeping pins on distinct tracks.
    /// Used to derive fat (double-pitch) macros.
    pub fn scaled(&self, factor: u32) -> Self {
        LefMacro {
            width_tracks: self.width_tracks * factor,
            input_pin_tracks: self.input_pin_tracks.iter().map(|&t| t * factor).collect(),
            output_pin_tracks: self.output_pin_tracks.iter().map(|&t| t * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_spread_pins_are_distinct() {
        let m = LefMacro::evenly_spread(6, 3, 1);
        let mut all = m.input_pin_tracks.clone();
        all.extend(&m.output_pin_tracks);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|&t| t < 6));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn too_many_pins_panics() {
        let _ = LefMacro::evenly_spread(2, 3, 1);
    }

    #[test]
    fn area_scales_with_width() {
        let m = LefMacro::evenly_spread(5, 2, 1);
        let expected = 5.0 * TRACK_UM * ROW_HEIGHT_UM;
        assert!((m.area_um2() - expected).abs() < 1e-9);
    }

    #[test]
    fn scaled_doubles_geometry() {
        let m = LefMacro::evenly_spread(4, 2, 1);
        let f = m.scaled(2);
        assert_eq!(f.width_tracks, 8);
        assert_eq!(f.input_pin_tracks, vec![0, 2]);
        assert_eq!(f.output_pin_tracks, vec![6]);
    }
}
