//! Standard cell library model for the secure design flow.
//!
//! This crate plays the role of the vendor's `.lib`/`.lef` pair in the
//! paper: it describes, for every library cell,
//!
//! * the **logic function** as a [`TruthTable`] (up to 6 inputs),
//! * **electrical data** (pin capacitances, drive resistance, intrinsic
//!   delay) for the linear delay and charge-based power models,
//! * **physical data** ([`LefMacro`]: width in routing tracks, pin
//!   positions) for placement and routing.
//!
//! [`Library::lib180`] builds the default 0.18 µm-flavoured library used
//! throughout the reproduction. [`Sop`]/[`isop`] provide the
//! sum-of-products machinery that the WDDL generator uses to derive
//! positive dual-rail covers.
//!
//! # Example
//!
//! ```
//! use secflow_cells::{Library, TruthTable};
//!
//! let lib = Library::lib180();
//! let and2 = lib.by_name("AND2").expect("AND2 exists");
//! assert_eq!(and2.truth_table().unwrap(), &TruthTable::and2());
//! assert!(and2.area_um2() > 0.0);
//! ```

mod cell;
mod export;
mod lef;
mod library;
mod sop;
mod tt;

pub use cell::{CellFunction, LibCell};
pub use export::ParseLibertyError;
pub use lef::{LefMacro, ROW_HEIGHT_UM, ROW_TRACKS, TRACK_UM};
pub use library::{Library, MatchedCell};
pub use sop::{Cube, Sop};
pub use tt::{isop, TruthTable};
