//! The Liberty-like cell record.

use crate::lef::LefMacro;
use crate::tt::TruthTable;

/// The logic function a library cell implements.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFunction {
    /// A combinational single-output function.
    Comb(TruthTable),
    /// A rising-edge D flip-flop (`Q <= D`).
    Dff,
    /// A WDDL dual-rail register: inputs `(Dt, Df)`, outputs
    /// `(Qt, Qf)`. Both outputs are held at 0 during the precharge
    /// phase and take the stored differential value during evaluation.
    WddlDff,
    /// A constant driver (`false` = tie-low, `true` = tie-high).
    Tie(bool),
}

/// One standard cell: logic function plus electrical and physical data.
///
/// Electrical units follow the convenient convention `kΩ · fF = ps`, so
/// the linear delay model is simply
/// `delay = intrinsic_delay_ps + drive_kohm * c_load_ff`.
#[derive(Debug, Clone, PartialEq)]
pub struct LibCell {
    name: String,
    function: CellFunction,
    /// Input pin capacitances in fF, one per pin.
    pin_caps_ff: Vec<f64>,
    /// Equivalent output drive resistance in kΩ.
    drive_kohm: f64,
    /// Intrinsic (unloaded) delay in ps.
    intrinsic_delay_ps: f64,
    physical: LefMacro,
}

impl LibCell {
    /// Creates a cell record.
    ///
    /// # Panics
    ///
    /// Panics if the pin-capacitance list length disagrees with the
    /// function's input count, or the macro's pin counts disagree.
    pub fn new(
        name: impl Into<String>,
        function: CellFunction,
        pin_caps_ff: Vec<f64>,
        drive_kohm: f64,
        intrinsic_delay_ps: f64,
        physical: LefMacro,
    ) -> Self {
        let (n_in, n_out) = match &function {
            CellFunction::Comb(tt) => (tt.vars() as usize, 1),
            CellFunction::Dff => (1, 1),
            CellFunction::WddlDff => (2, 2),
            CellFunction::Tie(_) => (0, 1),
        };
        assert_eq!(pin_caps_ff.len(), n_in, "cell needs one pin cap per input");
        assert_eq!(physical.input_pin_tracks.len(), n_in);
        assert_eq!(physical.output_pin_tracks.len(), n_out);
        LibCell {
            name: name.into(),
            function,
            pin_caps_ff,
            drive_kohm,
            intrinsic_delay_ps,
            physical,
        }
    }

    /// Cell name, e.g. `"AOI32"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's logic function.
    pub fn function(&self) -> &CellFunction {
        &self.function
    }

    /// The combinational truth table, if this is a combinational cell.
    pub fn truth_table(&self) -> Option<&TruthTable> {
        match &self.function {
            CellFunction::Comb(tt) => Some(tt),
            _ => None,
        }
    }

    /// Number of input pins.
    pub fn input_count(&self) -> usize {
        self.pin_caps_ff.len()
    }

    /// Capacitance of input pin `i` in fF.
    pub fn pin_cap_ff(&self, i: usize) -> f64 {
        self.pin_caps_ff[i]
    }

    /// Equivalent output drive resistance in kΩ.
    pub fn drive_kohm(&self) -> f64 {
        self.drive_kohm
    }

    /// Intrinsic delay in ps.
    pub fn intrinsic_delay_ps(&self) -> f64 {
        self.intrinsic_delay_ps
    }

    /// Gate delay in ps under a load of `c_load_ff` fF.
    pub fn delay_ps(&self, c_load_ff: f64) -> f64 {
        self.intrinsic_delay_ps + self.drive_kohm * c_load_ff
    }

    /// Physical abstract.
    pub fn physical(&self) -> &LefMacro {
        &self.physical
    }

    /// Cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.physical.area_um2()
    }

    /// True for sequential (state-holding) cells.
    pub fn is_sequential(&self) -> bool {
        matches!(self.function, CellFunction::Dff | CellFunction::WddlDff)
    }

    /// Number of output pins.
    pub fn output_count(&self) -> usize {
        match self.function {
            CellFunction::WddlDff => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> LibCell {
        LibCell::new(
            "AND2",
            CellFunction::Comb(TruthTable::and2()),
            vec![2.0, 2.0],
            4.0,
            40.0,
            LefMacro::evenly_spread(5, 2, 1),
        )
    }

    #[test]
    fn delay_model_is_linear() {
        let c = and2();
        assert!((c.delay_ps(0.0) - 40.0).abs() < 1e-9);
        assert!((c.delay_ps(10.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let c = and2();
        assert_eq!(c.name(), "AND2");
        assert_eq!(c.input_count(), 2);
        assert!(!c.is_sequential());
        assert!(c.truth_table().is_some());
        assert!(c.area_um2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "one pin cap per input")]
    fn mismatched_caps_panic() {
        let _ = LibCell::new(
            "AND2",
            CellFunction::Comb(TruthTable::and2()),
            vec![2.0],
            4.0,
            40.0,
            LefMacro::evenly_spread(5, 2, 1),
        );
    }
}
