//! Text exports of the library in Liberty-like (`.lib`) and LEF-like
//! (`.lef`) formats — the `lib.v` / `fat_lib.lef` / `diff_lib.lef`
//! artifacts of the paper's flow.
//!
//! The formats are simplified but structurally faithful: one `cell`
//! group per library cell with function, per-pin capacitance, timing
//! and footprint data. They exist so the flow's intermediate products
//! can be inspected and diffed like their industrial counterparts.

use std::fmt::Write as _;

use crate::cell::CellFunction;
use crate::lef::{ROW_HEIGHT_UM, TRACK_UM};
use crate::library::Library;
use crate::sop::Sop;
use crate::tt::isop;

/// Renders a cover as a Liberty-style boolean expression over pins
/// `A..H`.
fn function_expr(cover: &Sop) -> String {
    const PINS: [char; 8] = ['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'];
    if cover.cubes().is_empty() {
        return "0".into();
    }
    let mut terms = Vec::new();
    for cube in cover.cubes() {
        let mut lits = Vec::new();
        for v in 0..8u8 {
            if cube.pos_mask() >> v & 1 == 1 {
                lits.push(format!("{}", PINS[v as usize]));
            }
            if cube.neg_mask() >> v & 1 == 1 {
                lits.push(format!("!{}", PINS[v as usize]));
            }
        }
        if lits.is_empty() {
            return "1".into();
        }
        terms.push(lits.join("*"));
    }
    terms.join(" + ")
}

impl Library {
    /// Serializes the library in a Liberty-like text format.
    pub fn to_liberty(&self, name: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "library ({name}) {{");
        let _ = writeln!(s, "  time_unit : \"1ps\";");
        let _ = writeln!(s, "  capacitive_load_unit (1, ff);");
        for cell in self.cells() {
            let _ = writeln!(s, "  cell ({}) {{", cell.name());
            let _ = writeln!(s, "    area : {:.3};", cell.area_um2());
            for i in 0..cell.input_count() {
                let pin = char::from(b'A' + i as u8);
                let pin = match cell.function() {
                    CellFunction::Dff if i == 0 => 'D',
                    _ => pin,
                };
                let _ = writeln!(s, "    pin ({pin}) {{");
                let _ = writeln!(s, "      direction : input;");
                let _ = writeln!(s, "      capacitance : {:.2};", cell.pin_cap_ff(i));
                let _ = writeln!(s, "    }}");
            }
            match cell.function() {
                CellFunction::Comb(tt) => {
                    let _ = writeln!(s, "    pin (Y) {{");
                    let _ = writeln!(s, "      direction : output;");
                    let _ = writeln!(s, "      function : \"{}\";", function_expr(&isop(tt)));
                    let _ = writeln!(
                        s,
                        "      intrinsic_delay : {:.1};",
                        cell.intrinsic_delay_ps()
                    );
                    let _ = writeln!(s, "      drive_resistance : {:.2};", cell.drive_kohm());
                    let _ = writeln!(s, "    }}");
                }
                CellFunction::Dff => {
                    let _ = writeln!(s, "    ff (IQ) {{ next_state : \"D\"; }}");
                    let _ = writeln!(s, "    pin (Q) {{");
                    let _ = writeln!(s, "      direction : output;");
                    let _ = writeln!(s, "      function : \"IQ\";");
                    let _ = writeln!(
                        s,
                        "      intrinsic_delay : {:.1};",
                        cell.intrinsic_delay_ps()
                    );
                    let _ = writeln!(s, "      drive_resistance : {:.2};", cell.drive_kohm());
                    let _ = writeln!(s, "    }}");
                }
                CellFunction::WddlDff => {
                    let _ = writeln!(s, "    ff_pair (IQT, IQF) {{ next_state : \"D A\"; }}");
                    let _ = writeln!(s, "    pin (Q) {{ direction : output; }}");
                    let _ = writeln!(s, "    pin (Q1) {{ direction : output; }}");
                    let _ = writeln!(s, "    intrinsic_delay : {:.1};", cell.intrinsic_delay_ps());
                    let _ = writeln!(s, "    drive_resistance : {:.2};", cell.drive_kohm());
                }
                CellFunction::Tie(v) => {
                    let _ = writeln!(s, "    pin (Y) {{");
                    let _ = writeln!(s, "      direction : output;");
                    let _ = writeln!(s, "      function : \"{}\";", u8::from(*v));
                    let _ = writeln!(
                        s,
                        "      intrinsic_delay : {:.1};",
                        cell.intrinsic_delay_ps()
                    );
                    let _ = writeln!(s, "      drive_resistance : {:.2};", cell.drive_kohm());
                    let _ = writeln!(s, "    }}");
                }
            }
            let _ = writeln!(s, "  }}");
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Serializes the library's physical abstracts in a LEF-like text
    /// format. `pitch_tracks` scales footprints (2 for the fat
    /// library, whose grid units are double-pitch).
    pub fn to_lef(&self, name: &str, pitch_tracks: u32) -> String {
        let mut s = String::new();
        let pitch = TRACK_UM * f64::from(pitch_tracks);
        let _ = writeln!(s, "# LEF-like abstract of library `{name}`");
        let _ = writeln!(s, "UNITS MICRONS ;");
        let _ = writeln!(s, "PITCH {pitch:.3} ;");
        for cell in self.cells() {
            let mac = cell.physical();
            let _ = writeln!(s, "MACRO {}", cell.name());
            let _ = writeln!(
                s,
                "  SIZE {:.3} BY {:.3} ;",
                f64::from(mac.width_tracks) * pitch,
                ROW_HEIGHT_UM * f64::from(pitch_tracks)
            );
            for (i, &t) in mac.input_pin_tracks.iter().enumerate() {
                let _ = writeln!(s, "  PIN IN{i} X {:.3} ;", f64::from(t) * pitch);
            }
            for (i, &t) in mac.output_pin_tracks.iter().enumerate() {
                let _ = writeln!(s, "  PIN OUT{i} X {:.3} ;", f64::from(t) * pitch);
            }
            let _ = writeln!(s, "END {}", cell.name());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tt::TruthTable;

    #[test]
    fn liberty_contains_every_cell_with_functions() {
        let lib = Library::lib180();
        let text = lib.to_liberty("lib180");
        for cell in lib.cells() {
            assert!(
                text.contains(&format!("cell ({})", cell.name())),
                "{} missing",
                cell.name()
            );
        }
        // Spot checks.
        assert!(text.contains("function : \"A*B\";")); // AND2
        assert!(text.contains("next_state : \"D\";")); // DFF
    }

    #[test]
    fn function_expr_renders_literals() {
        let xor = isop(&TruthTable::xor2());
        let e = function_expr(&xor);
        assert!(e.contains('!'));
        assert!(e.contains(" + "));
        assert_eq!(function_expr(&isop(&TruthTable::zero(2))), "0");
        assert_eq!(function_expr(&isop(&TruthTable::one(2))), "1");
    }

    #[test]
    fn lef_scales_with_pitch() {
        let lib = Library::lib180();
        let normal = lib.to_lef("lib180", 1);
        let fat = lib.to_lef("lib180_fat", 2);
        // The fat LEF declares a doubled pitch.
        assert!(normal.contains("PITCH 0.660 ;"));
        assert!(fat.contains("PITCH 1.320 ;"));
        assert!(normal.contains("MACRO AOI32"));
    }
}

/// Errors from the Liberty-like reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibertyError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "liberty parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseLibertyError {}

impl Library {
    /// Parses the Liberty-like dialect written by
    /// [`Library::to_liberty`], reconstructing logic functions from the
    /// boolean expressions and electrical data from the attributes.
    /// Physical macros are regenerated with the default pin spread (the
    /// LEF view carries geometry separately).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLibertyError`] on malformed input.
    pub fn from_liberty(text: &str) -> Result<Library, ParseLibertyError> {
        use crate::cell::{CellFunction, LibCell};
        use crate::lef::LefMacro;
        use crate::tt::TruthTable;

        let err = |line: usize, message: String| ParseLibertyError { line, message };
        let mut cells = Vec::new();

        // Collected per cell.
        struct Draft {
            name: String,
            line: usize,
            area: f64,
            pin_caps: Vec<(char, f64)>,
            function: Option<String>,
            is_ff: bool,
            is_wddl_ff: bool,
            intrinsic: f64,
            drive: f64,
        }
        let mut cur: Option<Draft> = None;
        let mut cur_pin: Option<char> = None;

        let attr = |rest: &str| -> Option<String> {
            rest.split(':').nth(1).map(|v| {
                v.trim()
                    .trim_end_matches(';')
                    .trim()
                    .trim_matches('"')
                    .to_string()
            })
        };

        for (ln0, raw) in text.lines().enumerate() {
            let ln = ln0 + 1;
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("cell (") {
                let name = rest.split(')').next().unwrap_or("").trim();
                cur = Some(Draft {
                    name: name.to_string(),
                    line: ln,
                    area: 0.0,
                    pin_caps: Vec::new(),
                    function: None,
                    is_ff: false,
                    is_wddl_ff: false,
                    intrinsic: 0.0,
                    drive: 0.0,
                });
            } else if let Some(rest) = line.strip_prefix("pin (") {
                let pin = rest.chars().next().unwrap_or('?');
                cur_pin = Some(pin);
            } else if line.starts_with("ff (") {
                if let Some(d) = cur.as_mut() {
                    d.is_ff = true;
                }
            } else if line.starts_with("ff_pair (") {
                if let Some(d) = cur.as_mut() {
                    d.is_wddl_ff = true;
                }
            } else if line.starts_with("area :") {
                if let (Some(d), Some(v)) = (cur.as_mut(), attr(line)) {
                    d.area = v.parse().map_err(|e| err(ln, format!("{e}")))?;
                }
            } else if line.starts_with("capacitance :") {
                if let (Some(d), Some(p), Some(v)) = (cur.as_mut(), cur_pin, attr(line)) {
                    d.pin_caps
                        .push((p, v.parse().map_err(|e| err(ln, format!("{e}")))?));
                }
            } else if line.starts_with("function :") {
                if let (Some(d), Some(v)) = (cur.as_mut(), attr(line)) {
                    if v != "IQ" {
                        d.function = Some(v);
                    }
                }
            } else if line.starts_with("intrinsic_delay :") {
                if let (Some(d), Some(v)) = (cur.as_mut(), attr(line)) {
                    d.intrinsic = v.parse().map_err(|e| err(ln, format!("{e}")))?;
                }
            } else if line.starts_with("drive_resistance :") {
                if let (Some(d), Some(v)) = (cur.as_mut(), attr(line)) {
                    d.drive = v.parse().map_err(|e| err(ln, format!("{e}")))?;
                }
            } else if line == "}" {
                // Close either a pin group or the cell group: a cell is
                // finished when we see `}` at cell level; approximate by
                // finishing when a new cell starts or at EOF. Track pin
                // closing by clearing cur_pin first.
                if cur_pin.is_some() {
                    cur_pin = None;
                } else if let Some(d) = cur.take() {
                    cells.push(finish_cell(d).map_err(|m| err(ln, m))?);
                }
            }
        }
        if let Some(d) = cur.take() {
            let line = d.line;
            cells.push(finish_cell(d).map_err(|m| err(line, m))?);
        }

        fn finish_cell(d: Draft) -> Result<LibCell, String> {
            let mut caps: Vec<(char, f64)> = d.pin_caps;
            caps.sort_by_key(|&(p, _)| p);
            let n = caps.len() as u8;
            let pin_caps: Vec<f64> = caps.iter().map(|&(_, c)| c).collect();
            // Reconstruct the width from the area.
            let width = (d.area / (crate::lef::TRACK_UM * crate::lef::ROW_HEIGHT_UM))
                .round()
                .max(1.0) as u32;
            let function = if d.is_wddl_ff {
                CellFunction::WddlDff
            } else if d.is_ff {
                CellFunction::Dff
            } else {
                let expr = d.function.ok_or("combinational cell without function")?;
                match expr.as_str() {
                    "0" => CellFunction::Tie(false),
                    "1" if n == 0 => CellFunction::Tie(true),
                    _ => {
                        let tt = parse_function(&expr, n)?;
                        CellFunction::Comb(tt)
                    }
                }
            };
            let (n_in, n_out) = match function {
                CellFunction::WddlDff => (2, 2),
                _ => (pin_caps.len(), 1),
            };
            Ok(LibCell::new(
                d.name,
                function,
                pin_caps,
                d.drive.max(0.1),
                d.intrinsic,
                LefMacro::evenly_spread(width.max((n_in + n_out) as u32), n_in, n_out),
            ))
        }

        /// Evaluates a sum-of-products expression over pins `A..H`.
        fn parse_function(expr: &str, n: u8) -> Result<TruthTable, String> {
            let terms: Vec<&str> = expr.split('+').map(str::trim).collect();
            Ok(TruthTable::from_fn(n, |assignment| {
                terms.iter().any(|term| {
                    term.split('*').map(str::trim).all(|lit| {
                        if lit == "1" {
                            return true;
                        }
                        let (neg, pin) = match lit.strip_prefix('!') {
                            Some(p) => (true, p.trim()),
                            None => (false, lit),
                        };
                        let Some(c) = pin.chars().next() else {
                            return false;
                        };
                        let idx = (c as u8).wrapping_sub(b'A');
                        if idx >= n {
                            return false;
                        }
                        (assignment >> idx & 1 == 1) != neg
                    })
                })
            }))
        }

        Ok(Library::new(cells))
    }
}

#[cfg(test)]
mod liberty_roundtrip_tests {
    use super::*;
    use crate::cell::CellFunction;

    #[test]
    fn liberty_round_trips_functions_and_electricals() {
        let lib = Library::lib180();
        let text = lib.to_liberty("lib180");
        let parsed = Library::from_liberty(&text).expect("parse back");
        assert_eq!(parsed.cells().len(), lib.cells().len());
        for cell in lib.cells() {
            let p = parsed
                .by_name(cell.name())
                .unwrap_or_else(|| panic!("{} lost", cell.name()));
            match (cell.function(), p.function()) {
                (CellFunction::Comb(a), CellFunction::Comb(b)) => {
                    assert_eq!(a, b, "{} function changed", cell.name());
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{} kind changed",
                    cell.name()
                ),
            }
            assert_eq!(p.input_count(), cell.input_count());
            assert!(
                (p.area_um2() - cell.area_um2()).abs()
                    < 2.0 * crate::lef::TRACK_UM * crate::lef::ROW_HEIGHT_UM
            );
            assert!((p.drive_kohm() - cell.drive_kohm()).abs() < 0.01);
            assert!((p.intrinsic_delay_ps() - cell.intrinsic_delay_ps()).abs() < 0.1);
            for i in 0..cell.input_count() {
                assert!((p.pin_cap_ff(i) - cell.pin_cap_ff(i)).abs() < 0.01);
            }
        }
    }

    #[test]
    fn malformed_liberty_is_rejected() {
        let bad = "cell (X) {\n  area : not_a_number;\n}\n";
        assert!(Library::from_liberty(bad).is_err());
    }
}
