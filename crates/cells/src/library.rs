//! The cell library container and the default 180 nm-flavoured library.

use std::collections::HashMap;

use crate::cell::{CellFunction, LibCell};
use crate::lef::LefMacro;
use crate::tt::TruthTable;

/// A technology-mapping match: a library cell realizing a requested
/// truth table under an input permutation, possibly with an inverted
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedCell {
    /// Name of the matching cell.
    pub cell: String,
    /// `perm[i]` = which requested variable feeds cell input pin `i`.
    pub perm: Vec<u8>,
    /// `input_neg[i]` = cell input pin `i` must be fed through an
    /// inverter.
    pub input_neg: Vec<bool>,
    /// True if the cell computes the complement of the requested
    /// function (an inverter must be appended).
    pub inverted: bool,
    /// Cell area (including all required inverters) in µm².
    pub area_um2: f64,
}

/// An immutable collection of [`LibCell`]s with name lookup and
/// matching queries.
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<LibCell>,
    by_name: HashMap<String, usize>,
}

impl Library {
    /// Builds a library from a cell list.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell names.
    pub fn new(cells: Vec<LibCell>) -> Self {
        let mut by_name = HashMap::new();
        for (i, c) in cells.iter().enumerate() {
            assert!(
                by_name.insert(c.name().to_string(), i).is_none(),
                "duplicate cell `{}`",
                c.name()
            );
        }
        Library { cells, by_name }
    }

    /// Looks up a cell by name.
    pub fn by_name(&self, name: &str) -> Option<&LibCell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// Looks up a cell's index by name. The index is stable for the
    /// lifetime of the library and resolves via [`Library::cell_at`]
    /// without hashing — compiled simulation kernels resolve each
    /// distinct cell name once and index thereafter.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The cell at `index` (as returned by [`Library::index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn cell_at(&self, index: usize) -> &LibCell {
        &self.cells[index]
    }

    /// All cells.
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// All combinational cells with their truth tables.
    pub fn comb_cells(&self) -> impl Iterator<Item = (&LibCell, &TruthTable)> {
        self.cells.iter().filter_map(|c| match c.function() {
            CellFunction::Comb(tt) => Some((c, tt)),
            _ => None,
        })
    }

    /// Names of the sequential cells (for the Verilog reader).
    pub fn seq_cell_names(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|c| c.is_sequential())
            .map(|c| c.name())
            .collect()
    }

    /// Finds the minimum-area realization of `target` (a function whose
    /// support uses variables `0..target.vars()`) as a library cell
    /// under an input permutation, an input phase assignment (inverters
    /// on selected pins) and an optional output inversion — NPN
    /// matching with inverter cost included.
    ///
    /// `allowed` restricts candidates to the named cells — this is the
    /// paper's synthesis `script` constraint mechanism (inverters for
    /// phase assignment require `INV` to be allowed too).
    pub fn find_match(
        &self,
        target: &TruthTable,
        allowed: Option<&dyn Fn(&str) -> bool>,
    ) -> Option<MatchedCell> {
        let inv_allowed = allowed.is_none_or(|f| f("INV"));
        let inv_area = self.by_name("INV").map(|c| c.area_um2());
        let mut best: Option<MatchedCell> = None;
        let mut consider = |cand: MatchedCell| {
            if best.as_ref().is_none_or(|b| cand.area_um2 < b.area_um2) {
                best = Some(cand);
            }
        };
        let n = target.vars();
        for (cell, tt) in self.comb_cells() {
            if let Some(f) = allowed {
                if !f(cell.name()) {
                    continue;
                }
            }
            if tt.vars() != n {
                continue;
            }
            for perm in permutations(n) {
                // Cell pin i is fed by target variable perm[i]; the
                // realized function equals target iff
                // cell_tt == target.permute(perm).phase(mask)
                // (optionally complemented).
                let permuted = target.permute(&perm);
                for mask in 0..(1u32 << n) {
                    let negs = mask.count_ones();
                    if negs > 0 && (!inv_allowed || inv_area.is_none()) {
                        continue;
                    }
                    let shifted = permuted.phase(mask);
                    let (inverted, matches) = if shifted == *tt {
                        (false, true)
                    } else if shifted == tt.not() {
                        (true, true)
                    } else {
                        (false, false)
                    };
                    if !matches || (inverted && (!inv_allowed || inv_area.is_none())) {
                        continue;
                    }
                    let extra = negs + inverted as u32;
                    let area = cell.area_um2() + f64::from(extra) * inv_area.unwrap_or(0.0);
                    consider(MatchedCell {
                        cell: cell.name().to_string(),
                        perm: perm.clone(),
                        input_neg: (0..n).map(|i| mask >> i & 1 == 1).collect(),
                        inverted,
                        area_um2: area,
                    });
                }
            }
        }
        best
    }

    /// Builds the default 0.18 µm / 1.8 V flavoured library used by the
    /// reproduction: the usual static CMOS set (inverters, buffers,
    /// NAND/NOR/AND/OR up to 4 inputs, XOR/XNOR, AOI/OAI compounds
    /// including the paper's AOI32, a mux, a D flip-flop and tie
    /// cells).
    pub fn lib180() -> Self {
        let mut cells = Vec::new();
        let bit = |x: u32, i: u8| x >> i & 1 == 1;

        let mut comb = |name: &str,
                        n: u8,
                        f: &dyn Fn(u32) -> bool,
                        width: u32,
                        cap: f64,
                        drive: f64,
                        d0: f64| {
            let tt = TruthTable::from_fn(n, f);
            // The drive/delay scaling keeps the paper's 125 MHz clock
            // closed on the evaluation half-cycle of the WDDL designs.
            cells.push(LibCell::new(
                name,
                CellFunction::Comb(tt),
                vec![cap; n as usize],
                drive * 0.45,
                d0 * 0.55,
                LefMacro::evenly_spread(width, n as usize, 1),
            ));
        };

        comb("INV", 1, &|x| !bit(x, 0), 3, 2.2, 4.0, 25.0);
        comb("BUF", 1, &|x| bit(x, 0), 4, 2.0, 3.0, 45.0);

        comb(
            "NAND2",
            2,
            &|x| !(bit(x, 0) && bit(x, 1)),
            4,
            2.1,
            3.8,
            35.0,
        );
        comb(
            "NAND3",
            3,
            &|x| !(bit(x, 0) && bit(x, 1) && bit(x, 2)),
            5,
            2.2,
            4.2,
            42.0,
        );
        comb(
            "NAND4",
            4,
            &|x| !(0..4).all(|i| bit(x, i)),
            6,
            2.3,
            4.6,
            50.0,
        );
        comb("NOR2", 2, &|x| !(bit(x, 0) || bit(x, 1)), 4, 2.1, 4.2, 38.0);
        comb(
            "NOR3",
            3,
            &|x| !(bit(x, 0) || bit(x, 1) || bit(x, 2)),
            5,
            2.2,
            4.6,
            46.0,
        );
        comb(
            "NOR4",
            4,
            &|x| !(0..4).any(|i| bit(x, i)),
            6,
            2.3,
            5.0,
            55.0,
        );

        comb("AND2", 2, &|x| bit(x, 0) && bit(x, 1), 5, 2.0, 4.0, 55.0);
        comb("AND3", 3, &|x| (0..3).all(|i| bit(x, i)), 6, 2.1, 4.2, 62.0);
        comb("AND4", 4, &|x| (0..4).all(|i| bit(x, i)), 7, 2.2, 4.5, 70.0);
        comb("OR2", 2, &|x| bit(x, 0) || bit(x, 1), 5, 2.0, 4.2, 58.0);
        comb("OR3", 3, &|x| (0..3).any(|i| bit(x, i)), 6, 2.1, 4.5, 66.0);
        comb("OR4", 4, &|x| (0..4).any(|i| bit(x, i)), 7, 2.2, 4.8, 74.0);

        comb("XOR2", 2, &|x| bit(x, 0) ^ bit(x, 1), 7, 2.6, 4.5, 70.0);
        comb("XNOR2", 2, &|x| !(bit(x, 0) ^ bit(x, 1)), 7, 2.6, 4.5, 70.0);

        comb(
            "AOI21",
            3,
            &|x| !((bit(x, 0) && bit(x, 1)) || bit(x, 2)),
            5,
            2.2,
            4.4,
            45.0,
        );
        comb(
            "AOI22",
            4,
            &|x| !((bit(x, 0) && bit(x, 1)) || (bit(x, 2) && bit(x, 3))),
            6,
            2.3,
            4.6,
            50.0,
        );
        comb(
            "AOI32",
            5,
            &|x| !((bit(x, 0) && bit(x, 1) && bit(x, 2)) || (bit(x, 3) && bit(x, 4))),
            7,
            2.4,
            4.8,
            55.0,
        );
        comb(
            "AOI33",
            6,
            &|x| !((bit(x, 0) && bit(x, 1) && bit(x, 2)) || (bit(x, 3) && bit(x, 4) && bit(x, 5))),
            8,
            2.5,
            5.0,
            60.0,
        );
        comb(
            "OAI21",
            3,
            &|x| !((bit(x, 0) || bit(x, 1)) && bit(x, 2)),
            5,
            2.2,
            4.4,
            45.0,
        );
        comb(
            "OAI22",
            4,
            &|x| !((bit(x, 0) || bit(x, 1)) && (bit(x, 2) || bit(x, 3))),
            6,
            2.3,
            4.6,
            50.0,
        );
        comb(
            "OAI32",
            5,
            &|x| !((bit(x, 0) || bit(x, 1) || bit(x, 2)) && (bit(x, 3) || bit(x, 4))),
            7,
            2.4,
            4.8,
            55.0,
        );
        comb(
            "OAI33",
            6,
            &|x| !((bit(x, 0) || bit(x, 1) || bit(x, 2)) && (bit(x, 3) || bit(x, 4) || bit(x, 5))),
            8,
            2.5,
            5.0,
            60.0,
        );

        // MUX2(a, b, s) = s ? b : a
        comb(
            "MUX2",
            3,
            &|x| if bit(x, 2) { bit(x, 1) } else { bit(x, 0) },
            7,
            2.4,
            4.4,
            65.0,
        );

        cells.push(LibCell::new(
            "DFF",
            CellFunction::Dff,
            vec![2.8],
            1.8,
            70.0,
            LefMacro::evenly_spread(12, 1, 1),
        ));
        cells.push(LibCell::new(
            "TIELO",
            CellFunction::Tie(false),
            vec![],
            8.0,
            0.0,
            LefMacro::evenly_spread(3, 0, 1),
        ));
        cells.push(LibCell::new(
            "TIEHI",
            CellFunction::Tie(true),
            vec![],
            8.0,
            0.0,
            LefMacro::evenly_spread(3, 0, 1),
        ));

        Library::new(cells)
    }
}

/// All permutations of `0..n` (n ≤ 6), via Heap's algorithm.
pub(crate) fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut items: Vec<u8> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n as usize, &mut items, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib180_has_core_cells() {
        let lib = Library::lib180();
        for name in [
            "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "AOI32", "OAI32", "MUX2", "DFF",
            "TIELO", "TIEHI",
        ] {
            assert!(lib.by_name(name).is_some(), "{name} missing");
        }
        assert!(lib.cells().len() >= 24);
    }

    #[test]
    fn aoi32_matches_paper_function() {
        let lib = Library::lib180();
        let aoi32 = lib.by_name("AOI32").unwrap().truth_table().unwrap();
        // Fig. 2: Y = NOT(A0·A1·A2 + B0·B1)
        let expect = TruthTable::from_fn(5, |x| {
            let a = x & 1 == 1 && x >> 1 & 1 == 1 && x >> 2 & 1 == 1;
            let b = x >> 3 & 1 == 1 && x >> 4 & 1 == 1;
            !(a || b)
        });
        assert_eq!(aoi32, &expect);
    }

    #[test]
    fn index_resolution_matches_by_name() {
        let lib = Library::lib180();
        for cell in lib.cells() {
            let i = lib.index_of(cell.name()).expect("indexed");
            assert!(std::ptr::eq(
                lib.cell_at(i),
                lib.by_name(cell.name()).unwrap()
            ));
        }
        assert_eq!(lib.index_of("NO_SUCH_CELL"), None);
    }

    #[test]
    fn seq_cells_listed() {
        let lib = Library::lib180();
        assert_eq!(lib.seq_cell_names(), vec!["DFF"]);
    }

    #[test]
    fn find_match_exact() {
        let lib = Library::lib180();
        let m = lib.find_match(&TruthTable::and2(), None).unwrap();
        assert_eq!(m.cell, "AND2");
        assert!(!m.inverted);
    }

    #[test]
    fn find_match_inverted() {
        let lib = Library::lib180();
        // NAND3's complement = AND3; but AND3 exists, so the direct
        // match should win on equal/lower area only if cheaper. Request
        // a function whose direct cell we exclude.
        let and3 = lib.by_name("AND3").unwrap().truth_table().unwrap();
        let allowed = |n: &str| n != "AND3";
        let m = lib.find_match(and3, Some(&allowed)).unwrap();
        assert!(m.inverted);
        assert_eq!(m.cell, "NAND3");
    }

    #[test]
    fn find_match_uses_permutation() {
        let lib = Library::lib180();
        // f(a, b, c) = ¬(c·b + a): AOI21 with permuted pins.
        let f = TruthTable::from_fn(3, |x| {
            let (a, b, c) = (x & 1 == 1, x >> 1 & 1 == 1, x >> 2 & 1 == 1);
            !((c && b) || a)
        });
        let m = lib.find_match(&f, None).unwrap();
        assert_eq!(m.cell, "AOI21");
        // Verify the permutation actually reproduces f.
        let cell_tt = lib.by_name("AOI21").unwrap().truth_table().unwrap();
        assert_eq!(&f.permute(&m.perm), cell_tt);
    }

    #[test]
    fn find_match_respects_allowlist() {
        let lib = Library::lib180();
        let allowed = |n: &str| n == "NOR2";
        assert!(lib
            .find_match(&TruthTable::and2(), Some(&allowed))
            .is_none());
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(0).len(), 1);
    }

    #[test]
    fn all_comb_cells_have_full_support() {
        // Every library function must depend on all of its declared
        // inputs — otherwise pin caps and matching are inconsistent.
        let lib = Library::lib180();
        for (cell, tt) in lib.comb_cells() {
            assert_eq!(
                tt.support().len(),
                cell.input_count(),
                "{} has dead inputs",
                cell.name()
            );
        }
    }
}
