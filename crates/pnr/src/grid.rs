//! The routing grid: two routing layers of tracks over the die.

use std::fmt;

/// The first horizontal routing layer (wires run in ±x). Layers
/// alternate direction: even layers are horizontal, odd are vertical.
pub const LAYER_H: u8 = 0;
/// The first vertical routing layer (wires run in ±y).
pub const LAYER_V: u8 = 1;

/// True if wires on `layer` run horizontally (±x).
pub fn is_horizontal(layer: u8) -> bool {
    layer.is_multiple_of(2)
}

/// Routing pitch selector: normal (single-track) wires or the paper's
/// fat (double-pitch) wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridPitch {
    /// One grid unit per routing track.
    Normal,
    /// One grid unit per *two* routing tracks; every wire stands for a
    /// future differential pair.
    Fat,
}

impl GridPitch {
    /// Number of normal tracks per grid unit.
    pub fn tracks(self) -> i32 {
        match self {
            GridPitch::Normal => 1,
            GridPitch::Fat => 2,
        }
    }
}

/// A point on one routing layer of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Routing layer ([`LAYER_H`] or [`LAYER_V`]).
    pub layer: u8,
    /// Column (grid units).
    pub x: i32,
    /// Row (grid units).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub fn new(layer: u8, x: i32, y: i32) -> Self {
        Point { layer, x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = if self.layer == LAYER_H { "H" } else { "V" };
        write!(f, "{}({},{})", l, self.x, self.y)
    }
}

/// A wire segment: a straight run on one layer, or a via (same x/y,
/// different layer on each end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// True if this segment is a via (layer change at one point).
    pub fn is_via(&self) -> bool {
        self.a.layer != self.b.layer
    }

    /// Manhattan length in grid units (0 for vias).
    pub fn len(&self) -> i32 {
        (self.a.x - self.b.x).abs() + (self.a.y - self.b.y).abs()
    }

    /// True for zero-length segments (vias and degenerate stubs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Occupancy and congestion bookkeeping for PathFinder-style routing.
///
/// Each (layer, x, y) node tracks which nets currently use it plus a
/// history penalty that grows on every congested iteration.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    width: i32,
    height: i32,
    layers: u8,
    /// Number of nets occupying each node.
    usage: Vec<u16>,
    /// Accumulated history cost per node.
    history: Vec<f32>,
}

impl RoutingGrid {
    /// Creates an empty grid of `width` × `height` grid units with
    /// `layers` routing layers of alternating direction.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is not positive or `layers` is zero.
    pub fn new_with_layers(width: i32, height: i32, layers: u8) -> Self {
        assert!(width > 0 && height > 0 && layers > 0);
        let n = width as usize * height as usize * layers as usize;
        RoutingGrid {
            width,
            height,
            layers,
            usage: vec![0; n],
            history: vec![0.0; n],
        }
    }

    /// Creates an empty two-layer grid (one horizontal, one vertical).
    pub fn new(width: i32, height: i32) -> Self {
        Self::new_with_layers(width, height, 2)
    }

    /// Number of routing layers.
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// Grid width in grid units.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Grid height in grid units.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Linear index of a point.
    #[inline]
    pub fn index(&self, p: Point) -> usize {
        debug_assert!(
            self.contains(p),
            "{p} outside {}x{}",
            self.width,
            self.height
        );
        ((p.layer as i32 * self.height + p.y) * self.width + p.x) as usize
    }

    /// True if the point lies inside the grid.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.layer < self.layers && p.x >= 0 && p.x < self.width && p.y >= 0 && p.y < self.height
    }

    /// Current number of nets using `p`.
    pub fn usage(&self, p: Point) -> u16 {
        self.usage[self.index(p)]
    }

    /// History cost of `p`.
    pub fn history(&self, p: Point) -> f32 {
        self.history[self.index(p)]
    }

    /// Marks `p` as used by one more net.
    pub fn occupy(&mut self, p: Point) {
        let i = self.index(p);
        self.usage[i] += 1;
    }

    /// Releases one use of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not currently used.
    pub fn release(&mut self, p: Point) {
        let i = self.index(p);
        assert!(self.usage[i] > 0, "release of unused node {p}");
        self.usage[i] -= 1;
    }

    /// Points currently used by more than one net.
    pub fn congested_points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        for layer in 0..self.layers {
            for y in 0..self.height {
                for x in 0..self.width {
                    let p = Point::new(layer, x, y);
                    if self.usage(p) > 1 {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    /// Adds history penalty to every node with more than one user and
    /// returns the number of congested nodes.
    pub fn accrue_history(&mut self, increment: f32) -> usize {
        let mut congested = 0;
        for (u, h) in self.usage.iter().zip(self.history.iter_mut()) {
            if *u > 1 {
                *h += increment;
                congested += 1;
            }
        }
        congested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_roundtrip() {
        let mut g = RoutingGrid::new(10, 10);
        let p = Point::new(LAYER_H, 3, 4);
        assert_eq!(g.usage(p), 0);
        g.occupy(p);
        g.occupy(p);
        assert_eq!(g.usage(p), 2);
        g.release(p);
        assert_eq!(g.usage(p), 1);
    }

    #[test]
    #[should_panic(expected = "release of unused")]
    fn release_unused_panics() {
        let mut g = RoutingGrid::new(4, 4);
        g.release(Point::new(LAYER_V, 0, 0));
    }

    #[test]
    fn history_accrues_only_on_congestion() {
        let mut g = RoutingGrid::new(4, 4);
        let p = Point::new(LAYER_H, 1, 1);
        g.occupy(p);
        assert_eq!(g.accrue_history(1.0), 0);
        g.occupy(p);
        assert_eq!(g.accrue_history(1.0), 1);
        assert!((g.history(p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_classification() {
        let via = Segment::new(Point::new(LAYER_H, 2, 2), Point::new(LAYER_V, 2, 2));
        assert!(via.is_via());
        assert_eq!(via.len(), 0);
        let wire = Segment::new(Point::new(LAYER_H, 0, 2), Point::new(LAYER_H, 5, 2));
        assert!(!wire.is_via());
        assert_eq!(wire.len(), 5);
    }

    #[test]
    fn pitch_tracks() {
        assert_eq!(GridPitch::Normal.tracks(), 1);
        assert_eq!(GridPitch::Fat.tracks(), 2);
    }
}
