//! Clock tree synthesis: a recursive-bipartition (H-tree-style)
//! buffered clock distribution over the placed registers, with an
//! Elmore-style insertion-delay and skew report.
//!
//! The paper's flow notes that "information from the original library
//! files is used in procedures such as clock routing"; this module
//! provides that stage for both the regular design (one clock pin per
//! DFF) and the fat/WDDL design (the register pair presents twice the
//! clock load — WDDL's advantage over clocked dynamic styles like SABL
//! is precisely that only the registers load the clock).

use secflow_cells::Library;
use secflow_netlist::{GateId, GateKind, Netlist};

use crate::design::PlacedDesign;

/// Clock-tree construction parameters.
#[derive(Debug, Clone)]
pub struct ClockOptions {
    /// Maximum sinks (or child buffers) driven by one buffer.
    pub max_fanout: usize,
    /// Clock-pin capacitance per sequential cell, fF.
    pub sink_cap_ff: f64,
    /// Buffer input capacitance, fF.
    pub buffer_cap_ff: f64,
    /// Buffer drive resistance, kΩ.
    pub buffer_drive_kohm: f64,
    /// Buffer intrinsic delay, ps.
    pub buffer_delay_ps: f64,
    /// Clock wire capacitance per track, fF.
    pub wire_cap_ff_per_track: f64,
}

impl Default for ClockOptions {
    fn default() -> Self {
        ClockOptions {
            max_fanout: 4,
            sink_cap_ff: 2.8,
            buffer_cap_ff: 2.0,
            buffer_drive_kohm: 1.2,
            buffer_delay_ps: 35.0,
            wire_cap_ff_per_track: 0.13,
        }
    }
}

/// A clock sink: one sequential cell's clock pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSink {
    /// The sequential gate.
    pub gate: GateId,
    /// Pin x in grid units.
    pub x: i32,
    /// Pin y in grid units.
    pub y: i32,
}

/// One buffer of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockBuffer {
    /// Buffer location (centroid of its subtree), grid units.
    pub x: i32,
    /// Buffer location y.
    pub y: i32,
    /// Children driven by this buffer.
    pub children: Vec<ClockNode>,
}

/// A child of a clock buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockNode {
    /// Index into [`ClockTree::buffers`].
    Buffer(usize),
    /// Index into [`ClockTree::sinks`].
    Sink(usize),
}

/// A synthesized clock tree.
#[derive(Debug, Clone)]
pub struct ClockTree {
    /// All clock sinks (sequential cells), in netlist order.
    pub sinks: Vec<ClockSink>,
    /// All buffers; the root drives the whole tree.
    pub buffers: Vec<ClockBuffer>,
    /// Index of the root buffer.
    pub root: usize,
}

/// Insertion-delay and load statistics of a clock tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockReport {
    /// Number of sinks.
    pub sinks: usize,
    /// Number of inserted buffers.
    pub buffers: usize,
    /// Total clock wirelength in grid units.
    pub wirelength: i64,
    /// Worst insertion delay, ps.
    pub max_insertion_ps: f64,
    /// Best insertion delay, ps.
    pub min_insertion_ps: f64,
    /// Skew = max − min insertion delay, ps.
    pub skew_ps: f64,
    /// Total capacitance hanging off the clock net, fF.
    pub total_cap_ff: f64,
}

/// Synthesizes a buffered clock tree over the sequential cells of a
/// placed design. Returns `None` for purely combinational designs.
pub fn build_clock_tree(
    nl: &Netlist,
    lib: &Library,
    placed: &PlacedDesign,
    opts: &ClockOptions,
) -> Option<ClockTree> {
    let sinks: Vec<ClockSink> = nl
        .gate_ids()
        .filter(|&g| nl.gate(g).kind == GateKind::Seq)
        .map(|g| {
            // Clock pin modelled at the cell's first input pin site.
            let (x, y) = placed.pin_point(nl, lib, g, 0, false);
            ClockSink { gate: g, x, y }
        })
        .collect();
    if sinks.is_empty() {
        return None;
    }
    let mut buffers = Vec::new();
    let idx: Vec<usize> = (0..sinks.len()).collect();
    let root = build_rec(&sinks, idx, opts.max_fanout, &mut buffers);
    Some(ClockTree {
        sinks,
        buffers,
        root,
    })
}

/// Recursively bipartitions `members` (sink indices) and returns the
/// index of the buffer driving them.
fn build_rec(
    sinks: &[ClockSink],
    mut members: Vec<usize>,
    max_fanout: usize,
    buffers: &mut Vec<ClockBuffer>,
) -> usize {
    let centroid = |ms: &[usize]| -> (i32, i32) {
        let n = ms.len() as i64;
        let sx: i64 = ms.iter().map(|&i| i64::from(sinks[i].x)).sum();
        let sy: i64 = ms.iter().map(|&i| i64::from(sinks[i].y)).sum();
        ((sx / n) as i32, (sy / n) as i32)
    };
    let (cx, cy) = centroid(&members);
    if members.len() <= max_fanout {
        let children = members.into_iter().map(ClockNode::Sink).collect();
        buffers.push(ClockBuffer {
            x: cx,
            y: cy,
            children,
        });
        return buffers.len() - 1;
    }
    // Split along the dimension with the larger spread, at the median.
    // `members` is non-empty here (len > max_fanout >= 0), so the
    // min/max defaults never kick in.
    let spread = |f: fn(&ClockSink) -> i32| {
        let lo = members.iter().map(|&i| f(&sinks[i])).min().unwrap_or(0);
        let hi = members.iter().map(|&i| f(&sinks[i])).max().unwrap_or(0);
        hi - lo
    };
    if spread(|s| s.x) >= spread(|s| s.y) {
        members.sort_by_key(|&i| (sinks[i].x, sinks[i].y, i));
    } else {
        members.sort_by_key(|&i| (sinks[i].y, sinks[i].x, i));
    }
    let right = members.split_off(members.len() / 2);
    let a = build_rec(sinks, members, max_fanout, buffers);
    let b = build_rec(sinks, right, max_fanout, buffers);
    buffers.push(ClockBuffer {
        x: cx,
        y: cy,
        children: vec![ClockNode::Buffer(a), ClockNode::Buffer(b)],
    });
    buffers.len() - 1
}

impl ClockTree {
    /// Computes insertion delays (Elmore-style: each buffer drives its
    /// direct wires and children's input caps) and the load report.
    pub fn report(&self, opts: &ClockOptions) -> ClockReport {
        let mut wirelength = 0i64;
        let mut total_cap = 0.0f64;
        let mut insertion = vec![0.0f64; self.sinks.len()];
        // DFS from the root with accumulated delay.
        let mut stack = vec![(self.root, 0.0f64)];
        while let Some((b, t0)) = stack.pop() {
            let buf = &self.buffers[b];
            // Load seen by this buffer: wires to children + their pins.
            let mut load = 0.0;
            for child in &buf.children {
                let (cx, cy, cap) = match *child {
                    ClockNode::Buffer(i) => {
                        (self.buffers[i].x, self.buffers[i].y, opts.buffer_cap_ff)
                    }
                    ClockNode::Sink(i) => (self.sinks[i].x, self.sinks[i].y, opts.sink_cap_ff),
                };
                let dist = i64::from((buf.x - cx).abs() + (buf.y - cy).abs());
                wirelength += dist;
                load += dist as f64 * opts.wire_cap_ff_per_track + cap;
            }
            total_cap += load + opts.buffer_cap_ff;
            let t_here = t0 + opts.buffer_delay_ps + opts.buffer_drive_kohm * load;
            for child in &buf.children {
                match *child {
                    ClockNode::Buffer(i) => stack.push((i, t_here)),
                    ClockNode::Sink(i) => insertion[i] = t_here,
                }
            }
        }
        let max = insertion.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = insertion.iter().copied().fold(f64::INFINITY, f64::min);
        ClockReport {
            sinks: self.sinks.len(),
            buffers: self.buffers.len(),
            wirelength,
            max_insertion_ps: max,
            min_insertion_ps: min,
            skew_ps: max - min,
            total_cap_ff: total_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PlacedCell;
    use crate::grid::GridPitch;
    use secflow_netlist::Netlist;

    /// A design with `n` registers placed on a grid.
    fn fixture(n: usize, cols: usize) -> (Netlist, PlacedDesign) {
        let mut nl = Netlist::new("regs");
        let mut cells = Vec::new();
        for i in 0..n {
            let d = nl.add_input(format!("d{i}"));
            let q = nl.add_net(format!("q{i}"));
            nl.add_gate(format!("r{i}"), "DFF", GateKind::Seq, vec![d], vec![q]);
            nl.mark_output(q);
            cells.push(PlacedCell {
                x: ((i % cols) * 14) as i32,
                row: (i / cols) as u32,
            });
        }
        let placed = PlacedDesign {
            name: "regs".into(),
            width: (cols * 14) as i32,
            height: (n as i32 / cols as i32 + 1) * 8,
            row_height: 8,
            pitch: GridPitch::Normal,
            cells,
            input_pads: vec![],
            output_pads: vec![],
        };
        (nl, placed)
    }

    #[test]
    fn fanout_bound_is_respected() {
        let (nl, placed) = fixture(37, 6);
        let lib = Library::lib180();
        let opts = ClockOptions::default();
        let tree = build_clock_tree(&nl, &lib, &placed, &opts).expect("has registers");
        assert_eq!(tree.sinks.len(), 37);
        for b in &tree.buffers {
            assert!(b.children.len() <= opts.max_fanout.max(2));
            assert!(!b.children.is_empty());
        }
        // Every sink appears exactly once.
        let mut seen = vec![0usize; tree.sinks.len()];
        for b in &tree.buffers {
            for c in &b.children {
                if let ClockNode::Sink(i) = *c {
                    seen[i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn balanced_grid_has_low_skew() {
        let (nl, placed) = fixture(64, 8);
        let lib = Library::lib180();
        let opts = ClockOptions::default();
        let tree = build_clock_tree(&nl, &lib, &placed, &opts).expect("registers");
        let rep = tree.report(&opts);
        assert_eq!(rep.sinks, 64);
        assert!(rep.buffers >= 16);
        assert!(rep.skew_ps >= 0.0);
        // A regular grid splits evenly: skew well under one buffer
        // stage.
        assert!(
            rep.skew_ps < opts.buffer_delay_ps * 2.0,
            "skew {}",
            rep.skew_ps
        );
        assert!(rep.total_cap_ff > 64.0 * opts.sink_cap_ff);
        assert!(rep.wirelength > 0);
    }

    #[test]
    fn combinational_design_has_no_tree() {
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_gate(
            "g",
            "BUF",
            secflow_netlist::GateKind::Comb,
            vec![a],
            vec![y],
        );
        let placed = PlacedDesign {
            name: "comb".into(),
            width: 20,
            height: 8,
            row_height: 8,
            pitch: GridPitch::Normal,
            cells: vec![PlacedCell { x: 0, row: 0 }],
            input_pads: vec![],
            output_pads: vec![],
        };
        let lib = Library::lib180();
        assert!(build_clock_tree(&nl, &lib, &placed, &ClockOptions::default()).is_none());
    }

    #[test]
    fn deterministic_construction() {
        let (nl, placed) = fixture(23, 5);
        let lib = Library::lib180();
        let opts = ClockOptions::default();
        let a = build_clock_tree(&nl, &lib, &placed, &opts).unwrap();
        let b = build_clock_tree(&nl, &lib, &placed, &opts).unwrap();
        assert_eq!(a.buffers, b.buffers);
    }
}
