//! Die sizing: rows and core width from total cell area, fill factor
//! and aspect ratio.

use secflow_cells::ROW_TRACKS;

/// A core floorplan: standard cell rows of equal width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    /// Number of cell rows.
    pub rows: u32,
    /// Core width in routing tracks.
    pub width_tracks: u32,
}

impl Floorplan {
    /// Sizes a floorplan for a given total cell width (in tracks).
    ///
    /// # Panics
    ///
    /// Panics if `fill_factor` is not in `(0, 1]` or `aspect_ratio` is
    /// not positive; [`crate::place`] validates both before calling.
    pub fn size_for_width(total_width_tracks: u64, fill_factor: f64, aspect_ratio: f64) -> Self {
        assert!(fill_factor > 0.0 && fill_factor <= 1.0);
        assert!(aspect_ratio > 0.0);
        // Core area in track² such that cells fill `fill_factor` of it.
        let area = (total_width_tracks.max(1) as f64) * f64::from(ROW_TRACKS) / fill_factor;
        // width / height = aspect  =>  height = sqrt(area / aspect).
        let height = (area / aspect_ratio).sqrt();
        let rows = (height / f64::from(ROW_TRACKS)).ceil().max(1.0) as u32;
        // Width so that the requested fill is achievable per row on
        // average, with a little slack for packing fragmentation.
        let width = ((total_width_tracks as f64) / (f64::from(rows) * fill_factor))
            .ceil()
            .max(4.0) as u32;
        Floorplan {
            rows,
            width_tracks: width,
        }
    }

    /// Core height in routing tracks.
    pub fn height_tracks(&self) -> u32 {
        self.rows * ROW_TRACKS
    }

    /// Core area in µm².
    pub fn area_um2(&self) -> f64 {
        use secflow_cells::TRACK_UM;
        f64::from(self.width_tracks) * TRACK_UM * f64::from(self.height_tracks()) * TRACK_UM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_floorplan_for_square_aspect() {
        let fp = Floorplan::size_for_width(800, 0.8, 1.0);
        let w = f64::from(fp.width_tracks);
        let h = f64::from(fp.height_tracks());
        let ratio = w / h;
        assert!((0.6..=1.6).contains(&ratio), "ratio {ratio}");
        // All cells must fit.
        assert!(u64::from(fp.width_tracks) * u64::from(fp.rows) >= 800);
    }

    #[test]
    fn lower_fill_means_more_area() {
        let tight = Floorplan::size_for_width(1000, 1.0, 1.0);
        let loose = Floorplan::size_for_width(1000, 0.5, 1.0);
        assert!(loose.area_um2() > tight.area_um2());
    }

    #[test]
    fn wide_aspect_gives_wide_die() {
        let wide = Floorplan::size_for_width(1000, 0.8, 4.0);
        let square = Floorplan::size_for_width(1000, 0.8, 1.0);
        assert!(wide.width_tracks > square.width_tracks);
        assert!(wide.rows <= square.rows);
    }

    #[test]
    #[should_panic]
    fn zero_fill_panics() {
        let _ = Floorplan::size_for_width(100, 0.0, 1.0);
    }

    #[test]
    fn tiny_netlist_gets_minimum_die() {
        let fp = Floorplan::size_for_width(0, 0.8, 1.0);
        assert!(fp.rows >= 1);
        assert!(fp.width_tracks >= 4);
    }
}
