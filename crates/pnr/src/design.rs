//! The DEF-like design database: placed components and routed nets,
//! with a text writer/reader for the `fat.def` / `diff.def` flow
//! artifacts.

use secflow_cells::Library;
use secflow_netlist::{GateId, NetId, Netlist, NetlistError};

use crate::grid::{GridPitch, Point, Segment, LAYER_H, LAYER_V};

/// A placed gate instance: grid-unit origin column and row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedCell {
    /// Origin column in grid units.
    pub x: i32,
    /// Row index (row 0 at the bottom).
    pub row: u32,
}

/// A placed design: one [`PlacedCell`] per gate of the netlist, on a
/// grid of `width × height` units.
///
/// In fat mode ([`GridPitch::Fat`]) one grid unit is two routing
/// tracks; the same integer geometry then describes the double-pitch
/// fat design, and physical track coordinates are obtained by
/// multiplying by [`GridPitch::tracks`].
#[derive(Debug, Clone)]
pub struct PlacedDesign {
    /// Design name (module name of the placed netlist).
    pub name: String,
    /// Grid width in grid units.
    pub width: i32,
    /// Grid height in grid units.
    pub height: i32,
    /// Row height in grid units.
    pub row_height: i32,
    /// Pitch of one grid unit.
    pub pitch: GridPitch,
    /// Placement per gate, indexed by [`GateId`].
    pub cells: Vec<PlacedCell>,
    /// Pad rows for primary-input nets on the left die edge:
    /// `(net, y)`.
    pub input_pads: Vec<(NetId, i32)>,
    /// Pad rows for primary-output nets on the right die edge.
    pub output_pads: Vec<(NetId, i32)>,
}

impl PlacedDesign {
    /// The grid-point access location of a gate pin: the pin's track
    /// within the cell, at the vertical center of the cell's row.
    ///
    /// # Panics
    ///
    /// Panics if the gate's cell is not in `lib` or the pin index is
    /// out of range.
    pub fn pin_point(
        &self,
        nl: &Netlist,
        lib: &Library,
        gate: GateId,
        pin: usize,
        is_output: bool,
    ) -> (i32, i32) {
        let g = nl.gate(gate);
        let mac = lib
            .by_name(&g.cell)
            .unwrap_or_else(|| panic!("unknown cell `{}`", g.cell))
            .physical();
        let off = if is_output {
            mac.output_pin_tracks[pin]
        } else {
            mac.input_pin_tracks[pin]
        };
        let pc = self.cells[gate.index()];
        let x = pc.x + off as i32;
        let y = pc.row as i32 * self.row_height + self.row_height / 2;
        (x, y)
    }

    /// The grid-point locations of every pin of `net`: the driver
    /// first (if any), then the sinks. Primary-input nets without a
    /// driver get a pseudo-pin on the left die edge at mid height;
    /// primary outputs similarly attach on the right edge.
    pub fn net_pins(&self, nl: &Netlist, lib: &Library, net: NetId) -> Vec<(i32, i32)> {
        let rec = nl.net(net);
        let mut pins = Vec::with_capacity(rec.sinks.len() + 1);
        match rec.driver {
            Some(d) => pins.push(self.pin_point(nl, lib, d.gate, d.pin as usize, true)),
            None => {
                // Primary input: enters at its left-edge pad.
                if let Some(&(_, y)) = self.input_pads.iter().find(|(n, _)| *n == net) {
                    pins.push((0, y));
                }
            }
        }
        for s in &rec.sinks {
            pins.push(self.pin_point(nl, lib, s.gate, s.pin as usize, false));
        }
        if let Some(&(_, y)) = self.output_pads.iter().find(|(n, _)| *n == net) {
            pins.push((self.width - 1, y));
        }
        pins
    }

    /// Half-perimeter wirelength of one net in grid units.
    pub fn net_hpwl(&self, nl: &Netlist, lib: &Library, net: NetId) -> i64 {
        let pins = self.net_pins(nl, lib, net);
        if pins.len() < 2 {
            return 0;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (i32::MAX, i32::MIN, i32::MAX, i32::MIN);
        for (x, y) in pins {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        i64::from(x1 - x0) + i64::from(y1 - y0)
    }

    /// Total half-perimeter wirelength over all nets, in grid units.
    pub fn total_hpwl(&self, nl: &Netlist, lib: &Library) -> i64 {
        nl.net_ids().map(|n| self.net_hpwl(nl, lib, n)).sum()
    }
}

/// One routed net: a list of wire segments and vias forming a
/// connected tree over the net's pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The net this geometry belongs to.
    pub net: NetId,
    /// Merged wire segments and vias.
    pub segments: Vec<Segment>,
}

impl RoutedNet {
    /// Total wire length in grid units (vias excluded).
    pub fn wirelength(&self) -> i64 {
        self.segments.iter().map(|s| i64::from(s.len())).sum()
    }

    /// Number of vias.
    pub fn via_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_via()).count()
    }
}

/// A fully placed and routed design — the in-memory `*.def`.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// The placement this routing was computed on.
    pub placed: PlacedDesign,
    /// Routed geometry per net (nets with fewer than two pins are
    /// omitted).
    pub nets: Vec<RoutedNet>,
}

impl RoutedDesign {
    /// Total routed wirelength in grid units.
    pub fn total_wirelength(&self) -> i64 {
        self.nets.iter().map(RoutedNet::wirelength).sum()
    }

    /// Total via count.
    pub fn total_vias(&self) -> usize {
        self.nets.iter().map(RoutedNet::via_count).sum()
    }
}

/// Serializes a routed design in the DEF-like text format.
pub fn write_def(design: &RoutedDesign, nl: &Netlist) -> String {
    let p = &design.placed;
    let mut s = String::new();
    s.push_str(&format!("DESIGN {} ;\n", p.name));
    s.push_str(&format!(
        "PITCH {} ;\n",
        match p.pitch {
            GridPitch::Normal => "NORMAL",
            GridPitch::Fat => "FAT",
        }
    ));
    s.push_str(&format!(
        "DIEAREA 0 0 {} {} ROWHEIGHT {} ;\n",
        p.width, p.height, p.row_height
    ));
    s.push_str(&format!("COMPONENTS {} ;\n", p.cells.len()));
    for gid in nl.gate_ids() {
        let g = nl.gate(gid);
        let c = p.cells[gid.index()];
        s.push_str(&format!("- {} {} {} {} ;\n", g.name, g.cell, c.x, c.row));
    }
    s.push_str("END COMPONENTS\n");
    s.push_str("PINS ;\n");
    for &(n, y) in &p.input_pads {
        s.push_str(&format!("- IN {} {} ;\n", nl.net(n).name, y));
    }
    for &(n, y) in &p.output_pads {
        s.push_str(&format!("- OUT {} {} ;\n", nl.net(n).name, y));
    }
    s.push_str("END PINS\n");
    s.push_str(&format!("NETS {} ;\n", design.nets.len()));
    for rn in &design.nets {
        s.push_str(&format!("- {} ;\n", nl.net(rn.net).name));
        for seg in &rn.segments {
            if seg.is_via() {
                s.push_str(&format!(
                    "  VIA {} {} {} {} ;\n",
                    seg.a.x, seg.a.y, seg.a.layer, seg.b.layer
                ));
            } else {
                s.push_str(&format!(
                    "  SEG L{} {} {} {} {} ;\n",
                    seg.a.layer, seg.a.x, seg.a.y, seg.b.x, seg.b.y
                ));
            }
        }
    }
    s.push_str("END NETS\nEND DESIGN\n");
    s
}

/// Parses the DEF-like format written by [`write_def`], resolving
/// instance and net names against `nl`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input or unknown
/// names.
pub fn parse_def(text: &str, nl: &Netlist) -> Result<RoutedDesign, NetlistError> {
    let err = |line: usize, message: String| NetlistError::Parse { line, message };
    let mut name = String::new();
    let mut pitch = GridPitch::Normal;
    let (mut width, mut height, mut row_height) = (0i32, 0i32, 8i32);
    let mut cells = vec![PlacedCell { x: 0, row: 0 }; nl.gate_count()];
    let mut nets: Vec<RoutedNet> = Vec::new();
    let mut input_pads: Vec<(NetId, i32)> = Vec::new();
    let mut output_pads: Vec<(NetId, i32)> = Vec::new();
    let mut in_components = false;
    let mut in_pins = false;
    let mut in_nets = false;

    let gate_by_name: std::collections::HashMap<&str, GateId> = nl
        .gate_ids()
        .map(|g| (nl.gate(g).name.as_str(), g))
        .collect();

    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim().trim_end_matches(';').trim();
        if line.is_empty() {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        match tok[0] {
            "DESIGN" => name = tok.get(1).unwrap_or(&"").to_string(),
            "PITCH" => {
                pitch = match tok.get(1) {
                    Some(&"FAT") => GridPitch::Fat,
                    Some(&"NORMAL") => GridPitch::Normal,
                    other => return Err(err(ln, format!("bad pitch {other:?}"))),
                }
            }
            "DIEAREA" => {
                if tok.len() < 7 {
                    return Err(err(ln, "short DIEAREA".into()));
                }
                width = tok[3].parse().map_err(|e| err(ln, format!("{e}")))?;
                height = tok[4].parse().map_err(|e| err(ln, format!("{e}")))?;
                row_height = tok[6].parse().map_err(|e| err(ln, format!("{e}")))?;
            }
            "COMPONENTS" => in_components = true,
            "PINS" => {
                in_components = false;
                in_pins = true;
            }
            "NETS" => {
                in_components = false;
                in_pins = false;
                in_nets = true;
            }
            "END" => {
                if tok.get(1) == Some(&"COMPONENTS") {
                    in_components = false;
                } else if tok.get(1) == Some(&"PINS") {
                    in_pins = false;
                } else if tok.get(1) == Some(&"NETS") {
                    in_nets = false;
                }
            }
            "-" if in_pins => {
                if tok.len() < 4 {
                    return Err(err(ln, "short pin".into()));
                }
                let net = nl
                    .net_by_name(tok[2])
                    .ok_or_else(|| err(ln, format!("unknown pad net `{}`", tok[2])))?;
                let y: i32 = tok[3].parse().map_err(|e| err(ln, format!("{e}")))?;
                if tok[1] == "IN" {
                    input_pads.push((net, y));
                } else {
                    output_pads.push((net, y));
                }
            }
            "-" if in_components => {
                if tok.len() < 5 {
                    return Err(err(ln, "short component".into()));
                }
                let gid = gate_by_name
                    .get(tok[1])
                    .ok_or_else(|| err(ln, format!("unknown instance `{}`", tok[1])))?;
                cells[gid.index()] = PlacedCell {
                    x: tok[3].parse().map_err(|e| err(ln, format!("{e}")))?,
                    row: tok[4].parse().map_err(|e| err(ln, format!("{e}")))?,
                };
            }
            "-" if in_nets => {
                let net = nl
                    .net_by_name(tok[1])
                    .ok_or_else(|| err(ln, format!("unknown net `{}`", tok[1])))?;
                nets.push(RoutedNet {
                    net,
                    segments: Vec::new(),
                });
            }
            "SEG" if in_nets => {
                let rn = nets
                    .last_mut()
                    .ok_or_else(|| err(ln, "SEG before net header".into()))?;
                if tok.len() < 6 {
                    return Err(err(ln, "short SEG".into()));
                }
                let layer = match tok[1] {
                    "H" => LAYER_H,
                    "V" => LAYER_V,
                    other => other
                        .strip_prefix('L')
                        .and_then(|n| n.parse::<u8>().ok())
                        .ok_or_else(|| err(ln, format!("bad layer `{other}`")))?,
                };
                let c: Vec<i32> = tok[2..6]
                    .iter()
                    .map(|t| t.parse().map_err(|e| err(ln, format!("{e}"))))
                    .collect::<Result<_, _>>()?;
                rn.segments.push(Segment::new(
                    Point::new(layer, c[0], c[1]),
                    Point::new(layer, c[2], c[3]),
                ));
            }
            "VIA" if in_nets => {
                let rn = nets
                    .last_mut()
                    .ok_or_else(|| err(ln, "VIA before net header".into()))?;
                let x: i32 = tok[1].parse().map_err(|e| err(ln, format!("{e}")))?;
                let y: i32 = tok[2].parse().map_err(|e| err(ln, format!("{e}")))?;
                let la: u8 = tok.get(3).and_then(|t| t.parse().ok()).unwrap_or(LAYER_H);
                let lb: u8 = tok.get(4).and_then(|t| t.parse().ok()).unwrap_or(LAYER_V);
                rn.segments
                    .push(Segment::new(Point::new(la, x, y), Point::new(lb, x, y)));
            }
            _ => return Err(err(ln, format!("unexpected token `{}`", tok[0]))),
        }
    }

    Ok(RoutedDesign {
        placed: PlacedDesign {
            name,
            width,
            height,
            row_height,
            pitch,
            cells,
            input_pads,
            output_pads,
        },
        nets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_netlist::GateKind;

    fn tiny() -> (Netlist, RoutedDesign) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![y]);
        nl.mark_output(y);
        let placed = PlacedDesign {
            name: "t".into(),
            width: 20,
            height: 16,
            row_height: 8,
            pitch: GridPitch::Fat,
            cells: vec![PlacedCell { x: 3, row: 1 }],
            input_pads: vec![(a, 0), (b, 1)],
            output_pads: vec![(y, 0)],
        };
        let nets = vec![RoutedNet {
            net: y,
            segments: vec![
                Segment::new(Point::new(LAYER_H, 7, 12), Point::new(LAYER_H, 12, 12)),
                Segment::new(Point::new(LAYER_H, 12, 12), Point::new(LAYER_V, 12, 12)),
                Segment::new(Point::new(LAYER_V, 12, 12), Point::new(LAYER_V, 12, 4)),
            ],
        }];
        (nl, RoutedDesign { placed, nets })
    }

    #[test]
    fn def_roundtrip() {
        let (nl, d) = tiny();
        let text = write_def(&d, &nl);
        let parsed = parse_def(&text, &nl).unwrap();
        assert_eq!(parsed.placed.pitch, GridPitch::Fat);
        assert_eq!(parsed.placed.cells, d.placed.cells);
        assert_eq!(parsed.nets, d.nets);
        assert_eq!(parsed.placed.width, 20);
    }

    #[test]
    fn wirelength_and_vias() {
        let (_, d) = tiny();
        assert_eq!(d.total_wirelength(), 5 + 8);
        assert_eq!(d.total_vias(), 1);
    }

    #[test]
    fn parse_rejects_unknown_instance() {
        let (nl, d) = tiny();
        let text = write_def(&d, &nl).replace("- g0 ", "- gX ");
        assert!(parse_def(&text, &nl).is_err());
    }

    #[test]
    fn hpwl_is_bounding_box() {
        let (nl, d) = tiny();
        let lib = Library::lib180();
        let y = nl.net_by_name("y").unwrap();
        // Driver pin at cell x=3 + AND2 output pin offset, row 1 center.
        let hp = d.placed.net_hpwl(&nl, &lib, y);
        assert!(hp > 0);
    }

    #[test]
    fn pin_point_uses_macro_offsets() {
        let (nl, d) = tiny();
        let lib = Library::lib180();
        let (x, y) = d.placed.pin_point(&nl, &lib, GateId(0), 0, true);
        let mac = lib.by_name("AND2").unwrap().physical();
        assert_eq!(x, 3 + mac.output_pin_tracks[0] as i32);
        assert_eq!(y, 12);
    }

    use secflow_netlist::GateId;
}
