//! Place & route for the secure design flow.
//!
//! This crate stands in for the commercial back-end tool (Silicon
//! Ensemble) in the paper's flow:
//!
//! * [`Floorplan`] — die sizing from total cell area, fill factor and
//!   aspect ratio (the paper uses aspect ratio 1, fill factor 80 %);
//! * [`place`] — row-based placement: a connectivity-ordered initial
//!   placement refined by simulated annealing on half-perimeter
//!   wirelength;
//! * [`route`] — a two-layer gridded router (horizontal/vertical track
//!   grid with vias) using PathFinder-style negotiated congestion;
//! * **fat-wire mode** — the entire router runs unchanged on a
//!   double-pitch grid ([`GridPitch::Fat`]), which is how the
//!   differential-pair routing trick of the paper is realized: the fat
//!   design is routed at pitch 2, then each fat wire is decomposed into
//!   two parallel wires at pitch 1 (see the `secflow-core` crate);
//! * [`RoutedDesign`] — the DEF-like design database, with a text
//!   writer/reader for the `fat.def` / `diff.def` artifacts.
//!
//! All coordinates are integer routing-track units; one track is
//! [`secflow_cells::TRACK_UM`] micrometres.

mod clock;
mod design;
mod floorplan;
mod grid;
mod place;
mod route;

pub use clock::{
    build_clock_tree, ClockBuffer, ClockNode, ClockOptions, ClockReport, ClockSink, ClockTree,
};
pub use design::{parse_def, write_def, PlacedCell, PlacedDesign, RoutedDesign, RoutedNet};
pub use floorplan::Floorplan;
pub use grid::{is_horizontal, GridPitch, Point, RoutingGrid, Segment, LAYER_H, LAYER_V};
pub use place::{place, place_best_of, PlaceError, PlaceOptions};
pub use route::{route, RouteError, RouteOptions};
