//! PathFinder-style negotiated-congestion routing on the two-layer
//! track grid.
//!
//! Every net is routed by multi-source Dijkstra from its partial tree
//! to each remaining pin; congestion is resolved by iteratively
//! re-routing all nets with growing present- and history-cost
//! penalties until no grid node is shared.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use secflow_cells::Library;
use secflow_netlist::{NetId, Netlist};

use crate::design::{PlacedDesign, RoutedDesign, RoutedNet};
use crate::grid::{is_horizontal, Point, RoutingGrid, Segment, LAYER_H, LAYER_V};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// Maximum negotiation iterations before giving up.
    pub max_iterations: usize,
    /// Cost of a via relative to one track of wire.
    pub via_cost: f64,
    /// History cost added to each congested node per iteration.
    pub history_increment: f32,
    /// Number of routing layers (alternating horizontal/vertical).
    pub layers: u8,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 150,
            via_cost: 3.0,
            history_increment: 0.6,
            layers: 4,
        }
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// A gate references a cell missing from the library, so its pin
    /// locations cannot be resolved.
    UnknownCell {
        /// Instance name of the offending gate.
        gate: String,
        /// The unresolvable cell name.
        cell: String,
    },
    /// A pin of the placed design falls outside the die (degenerate
    /// placement).
    PinOutOfBounds {
        /// Name of the net whose pin is off-die.
        net: String,
        /// Pin x coordinate (grid units).
        x: i32,
        /// Pin y coordinate (grid units).
        y: i32,
    },
    /// Two different nets have pins at the same grid location
    /// (overlapping cells in a degenerate placement).
    PinCollision {
        /// First net at the location.
        net_a: String,
        /// Second net at the location.
        net_b: String,
        /// Collision x coordinate (grid units).
        x: i32,
        /// Collision y coordinate (grid units).
        y: i32,
    },
    /// A pin could not be reached at all (grid disconnected).
    Unreachable {
        /// Name of the failing net.
        net: String,
    },
    /// Congestion never resolved within the iteration budget.
    Congested {
        /// Number of still-congested grid nodes.
        congested_nodes: usize,
        /// Iterations performed.
        iterations: usize,
        /// A few of the congested locations, as display strings.
        examples: Vec<String>,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownCell { gate, cell } => {
                write!(f, "gate `{gate}` references unknown cell `{cell}`")
            }
            RouteError::PinOutOfBounds { net, x, y } => {
                write!(f, "pin of net `{net}` at ({x},{y}) lies outside the die")
            }
            RouteError::PinCollision { net_a, net_b, x, y } => {
                write!(f, "pins of nets `{net_a}` and `{net_b}` collide at ({x},{y})")
            }
            RouteError::Unreachable { net } => write!(f, "net `{net}` has an unreachable pin"),
            RouteError::Congested {
                congested_nodes,
                iterations,
                examples,
            } => write!(
                f,
                "routing congestion unresolved after {iterations} iterations ({congested_nodes} nodes, e.g. {examples:?})"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

#[derive(PartialEq)]
struct HeapEntry {
    /// Priority: g + heuristic.
    cost: f64,
    /// Path cost from the tree.
    g: f64,
    point: Point,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.point.cmp(&other.point))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Scratch arrays reused across searches.
struct Search {
    dist: Vec<f64>,
    parent: Vec<Point>,
    stamp: Vec<u32>,
    generation: u32,
}

impl Search {
    fn new(n: usize) -> Self {
        Search {
            dist: vec![f64::INFINITY; n],
            parent: vec![Point::new(0, 0, 0); n],
            stamp: vec![0; n],
            generation: 0,
        }
    }

    fn begin(&mut self) {
        self.generation += 1;
    }

    #[inline]
    fn dist(&self, i: usize) -> f64 {
        if self.stamp[i] == self.generation {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, i: usize, d: f64, parent: Point) {
        self.stamp[i] = self.generation;
        self.dist[i] = d;
        self.parent[i] = parent;
    }
}

/// Routes all multi-pin nets of `placed`, returning the routed design.
///
/// # Errors
///
/// Returns [`RouteError`] if a gate's cell is missing from `lib`, the
/// placement is degenerate (off-die or colliding pins), some pin is
/// unreachable, or congestion cannot be negotiated away within
/// [`RouteOptions::max_iterations`].
pub fn route(
    nl: &Netlist,
    lib: &Library,
    placed: &PlacedDesign,
    opts: &RouteOptions,
) -> Result<RoutedDesign, RouteError> {
    // Resolve every cell upfront so pin lookups below cannot fail.
    for g in nl.gates() {
        if lib.by_name(&g.cell).is_none() {
            return Err(RouteError::UnknownCell {
                gate: g.name.clone(),
                cell: g.cell.clone(),
            });
        }
    }

    let mut grid = RoutingGrid::new_with_layers(placed.width, placed.height, opts.layers);
    let mut search =
        Search::new(placed.width as usize * placed.height as usize * opts.layers as usize);

    // Reserve every pin's access points (layers 0 and 1) for its own
    // net: a foreign wire through a pin would make the pin
    // permanently unreachable for its owner. Off-die or colliding pins
    // mean the placement is degenerate and routing cannot start.
    let mut pin_owner: HashMap<Point, NetId> = HashMap::new();
    for net in nl.net_ids() {
        for (x, y) in placed.net_pins(nl, lib, net) {
            if x < 0 || x >= placed.width || y < 0 || y >= placed.height {
                return Err(RouteError::PinOutOfBounds {
                    net: nl.net(net).name.clone(),
                    x,
                    y,
                });
            }
            for layer in [LAYER_H, LAYER_V] {
                let p = Point::new(layer, x, y);
                if let Some(&other) = pin_owner.get(&p) {
                    if other != net {
                        return Err(RouteError::PinCollision {
                            net_a: nl.net(other).name.clone(),
                            net_b: nl.net(net).name.clone(),
                            x,
                            y,
                        });
                    }
                }
                pin_owner.insert(p, net);
            }
        }
    }

    // Nets to route, shortest HPWL first.
    let mut work: Vec<(NetId, Vec<(i32, i32)>)> = nl
        .net_ids()
        .filter_map(|n| {
            let pins = placed.net_pins(nl, lib, n);
            if pins.len() >= 2 {
                Some((n, pins))
            } else {
                None
            }
        })
        .collect();
    work.sort_by_key(|(n, pins)| (placed.net_hpwl(nl, lib, *n), n.0, pins.len()));

    // Current tree points per net (for rip-up).
    let mut trees: Vec<Vec<Point>> = vec![Vec::new(); work.len()];
    let mut edges: Vec<Vec<(Point, Point)>> = vec![Vec::new(); work.len()];

    let mut present_factor = 0.5f64;
    let mut iterations = 0usize;
    let mut ripups = 0u64;
    // PathFinder refinement: after the first pass, only nets whose
    // trees touch congested nodes are ripped up and re-routed.
    let mut reroute: Vec<bool> = vec![true; work.len()];
    loop {
        iterations += 1;
        for (i, (net, pins)) in work.iter().enumerate() {
            if !reroute[i] {
                continue;
            }
            if !trees[i].is_empty() {
                ripups += 1;
            }
            // Rip up the previous route of this net.
            for &p in &trees[i] {
                grid.release(p);
            }
            trees[i].clear();
            edges[i].clear();

            let (tree, tree_edges) = route_net(
                &grid,
                &mut search,
                pins,
                opts,
                present_factor,
                *net,
                &pin_owner,
            )
            .ok_or_else(|| RouteError::Unreachable {
                net: nl.net(*net).name.clone(),
            })?;
            for &p in &tree {
                grid.occupy(p);
            }
            trees[i] = tree;
            edges[i] = tree_edges;
        }

        let congested = grid.accrue_history(opts.history_increment);
        if congested == 0 {
            break;
        }
        for (i, flag) in reroute.iter_mut().enumerate() {
            *flag = trees[i].iter().any(|&p| grid.usage(p) > 1);
        }
        if iterations >= opts.max_iterations {
            let examples = grid
                .congested_points()
                .into_iter()
                .take(4)
                .map(|p| {
                    let owners: Vec<&str> = work
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| trees[i].contains(&p))
                        .map(|(_, (n, _))| nl.net(*n).name.as_str())
                        .collect();
                    format!("{p} used by {owners:?}")
                })
                .collect();
            return Err(RouteError::Congested {
                congested_nodes: congested,
                iterations,
                examples,
            });
        }
        present_factor *= 1.6;
    }

    secflow_obs::add(secflow_obs::Counter::RouteNets, work.len() as u64);
    secflow_obs::add(secflow_obs::Counter::RouteRipups, ripups);
    secflow_obs::add(secflow_obs::Counter::RouteIterations, iterations as u64);

    let nets = work
        .iter()
        .enumerate()
        .map(|(i, (net, _))| RoutedNet {
            net: *net,
            segments: merge_edges(&edges[i]),
        })
        .collect();

    Ok(RoutedDesign {
        placed: placed.clone(),
        nets,
    })
}

/// Routes one net over the current grid state. Returns the set of tree
/// points and unit edges, or `None` if a pin is unreachable.
/// A routed net tree: its occupied points plus the unit edges.
type NetTree = (Vec<Point>, Vec<(Point, Point)>);

#[allow(clippy::too_many_arguments)]
fn route_net(
    grid: &RoutingGrid,
    search: &mut Search,
    pins: &[(i32, i32)],
    opts: &RouteOptions,
    present_factor: f64,
    net: NetId,
    pin_owner: &HashMap<Point, NetId>,
) -> Option<NetTree> {
    let mut tree: Vec<Point> = Vec::new();
    let mut tree_set: std::collections::HashSet<Point> = std::collections::HashSet::new();
    let mut tree_edges: Vec<(Point, Point)> = Vec::new();
    let push_tree =
        |p: Point, tree: &mut Vec<Point>, set: &mut std::collections::HashSet<Point>| {
            if set.insert(p) {
                tree.push(p);
            }
        };

    // Seed the tree with the first pin (both layers).
    let (x0, y0) = pins[0];
    push_tree(Point::new(LAYER_H, x0, y0), &mut tree, &mut tree_set);
    push_tree(Point::new(LAYER_V, x0, y0), &mut tree, &mut tree_set);
    tree_edges.push((Point::new(LAYER_H, x0, y0), Point::new(LAYER_V, x0, y0)));

    for &(px, py) in &pins[1..] {
        let t_h = Point::new(LAYER_H, px, py);
        let t_v = Point::new(LAYER_V, px, py);
        if tree_set.contains(&t_h) || tree_set.contains(&t_v) {
            // Pin already on the tree; still make sure both layers of
            // the pin point are attached.
            continue;
        }
        search.begin();
        // A*: an admissible heuristic (Manhattan distance to the sink;
        // every wire step costs at least 1, vias cost extra but do not
        // change x/y) keeps the search focused without affecting
        // optimality.
        let h = |p: Point| -> f64 { f64::from((p.x - px).abs() + (p.y - py).abs()) };
        let mut heap = BinaryHeap::new();
        for &p in &tree {
            let i = grid.index(p);
            search.set(i, 0.0, p);
            heap.push(HeapEntry {
                cost: h(p),
                g: 0.0,
                point: p,
            });
        }
        let mut found: Option<Point> = None;
        while let Some(HeapEntry { cost: _, g, point }) = heap.pop() {
            let pi = grid.index(point);
            if g > search.dist(pi) {
                continue; // stale entry
            }
            let cost = g;
            if point == t_h || point == t_v {
                found = Some(point);
                break;
            }
            // Neighbours: along the layer direction, plus a via.
            let mut push = |np: Point, step_cost: f64| {
                if !grid.contains(np) {
                    return;
                }
                // Foreign pin points are hard obstacles.
                if pin_owner.get(&np).is_some_and(|&o| o != net) {
                    return;
                }
                let ni = grid.index(np);
                let usage = f64::from(grid.usage(np));
                let congestion = if usage > 0.0 {
                    present_factor * usage
                } else {
                    0.0
                };
                let nc = cost + step_cost + congestion + f64::from(grid.history(np));
                if nc < search.dist(ni) {
                    search.set(ni, nc, point);
                    heap.push(HeapEntry {
                        cost: nc + h(np),
                        g: nc,
                        point: np,
                    });
                }
            };
            if is_horizontal(point.layer) {
                push(Point::new(point.layer, point.x - 1, point.y), 1.0);
                push(Point::new(point.layer, point.x + 1, point.y), 1.0);
            } else {
                push(Point::new(point.layer, point.x, point.y - 1), 1.0);
                push(Point::new(point.layer, point.x, point.y + 1), 1.0);
            }
            if point.layer > 0 {
                push(Point::new(point.layer - 1, point.x, point.y), opts.via_cost);
            }
            push(Point::new(point.layer + 1, point.x, point.y), opts.via_cost);
        }
        let target = found?;
        // Backtrace to the tree.
        let mut p = target;
        loop {
            let i = grid.index(p);
            let par = search.parent[i];
            if tree_set.insert(p) {
                tree.push(p);
            }
            if par == p {
                break;
            }
            tree_edges.push((par, p));
            p = par;
        }
    }
    Some((tree, tree_edges))
}

/// Merges unit edges into maximal straight segments plus vias.
fn merge_edges(edges: &[(Point, Point)]) -> Vec<Segment> {
    let mut vias: Vec<Segment> = Vec::new();
    // Horizontal runs keyed by (layer, y), vertical by (layer, x).
    let mut h_runs: std::collections::HashMap<(u8, i32), Vec<i32>> = Default::default();
    let mut v_runs: std::collections::HashMap<(u8, i32), Vec<i32>> = Default::default();
    for &(a, b) in edges {
        if a.layer != b.layer {
            let s = Segment::new(a, b);
            if !vias.contains(&s) {
                vias.push(s);
            }
        } else if is_horizontal(a.layer) {
            // Store the left x of each unit edge.
            h_runs.entry((a.layer, a.y)).or_default().push(a.x.min(b.x));
        } else {
            v_runs.entry((a.layer, a.x)).or_default().push(a.y.min(b.y));
        }
    }
    let mut out = vias;
    for ((layer, y), mut xs) in h_runs {
        xs.sort_unstable();
        xs.dedup();
        let mut start = xs[0];
        let mut prev = xs[0];
        for &x in &xs[1..] {
            if x != prev + 1 {
                out.push(Segment::new(
                    Point::new(layer, start, y),
                    Point::new(layer, prev + 1, y),
                ));
                start = x;
            }
            prev = x;
        }
        out.push(Segment::new(
            Point::new(layer, start, y),
            Point::new(layer, prev + 1, y),
        ));
    }
    for ((layer, x), mut ys) in v_runs {
        ys.sort_unstable();
        ys.dedup();
        let mut start = ys[0];
        let mut prev = ys[0];
        for &y in &ys[1..] {
            if y != prev + 1 {
                out.push(Segment::new(
                    Point::new(layer, x, start),
                    Point::new(layer, x, prev + 1),
                ));
                start = y;
            }
            prev = y;
        }
        out.push(Segment::new(
            Point::new(layer, x, start),
            Point::new(layer, x, prev + 1),
        ));
    }
    out.sort_by_key(|s| (s.a.layer, s.a.x, s.a.y, s.b.x, s.b.y));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlaceOptions};
    use secflow_netlist::GateKind;

    fn small_netlist() -> Netlist {
        let mut nl = Netlist::new("small");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let w1 = nl.add_net("w1");
        let w2 = nl.add_net("w2");
        let y = nl.add_net("y");
        nl.add_gate("g0", "AND2", GateKind::Comb, vec![a, b], vec![w1]);
        nl.add_gate("g1", "OR2", GateKind::Comb, vec![w1, c], vec![w2]);
        nl.add_gate("g2", "INV", GateKind::Comb, vec![w2], vec![y]);
        nl.mark_output(y);
        nl
    }

    /// Checks that every routed net forms a connected tree touching
    /// all its pins.
    fn check_connectivity(nl: &Netlist, lib: &Library, d: &RoutedDesign) {
        use std::collections::HashSet;
        for rn in &d.nets {
            // Expand segments back to points.
            let mut pts: HashSet<Point> = HashSet::new();
            for s in &rn.segments {
                if s.is_via() {
                    pts.insert(s.a);
                    pts.insert(s.b);
                } else if is_horizontal(s.a.layer) {
                    let (x0, x1) = (s.a.x.min(s.b.x), s.a.x.max(s.b.x));
                    for x in x0..=x1 {
                        pts.insert(Point::new(s.a.layer, x, s.a.y));
                    }
                } else {
                    let (y0, y1) = (s.a.y.min(s.b.y), s.a.y.max(s.b.y));
                    for y in y0..=y1 {
                        pts.insert(Point::new(s.a.layer, s.a.x, y));
                    }
                }
            }
            // All pins present on at least one layer.
            for (x, y) in d.placed.net_pins(nl, lib, rn.net) {
                assert!(
                    pts.contains(&Point::new(LAYER_H, x, y))
                        || pts.contains(&Point::new(LAYER_V, x, y)),
                    "pin ({x},{y}) of net {} not covered",
                    nl.net(rn.net).name
                );
            }
            // Connectivity: BFS over adjacency within the point set.
            let start = *pts.iter().next().expect("non-empty route");
            let mut seen = HashSet::from([start]);
            let mut stack = vec![start];
            while let Some(p) = stack.pop() {
                let mut neigh = vec![Point::new(p.layer + 1, p.x, p.y)];
                if p.layer > 0 {
                    neigh.push(Point::new(p.layer - 1, p.x, p.y));
                }
                if is_horizontal(p.layer) {
                    neigh.push(Point::new(p.layer, p.x - 1, p.y));
                    neigh.push(Point::new(p.layer, p.x + 1, p.y));
                } else {
                    neigh.push(Point::new(p.layer, p.x, p.y - 1));
                    neigh.push(Point::new(p.layer, p.x, p.y + 1));
                }
                for q in neigh {
                    if pts.contains(&q) && seen.insert(q) {
                        stack.push(q);
                    }
                }
            }
            assert_eq!(seen.len(), pts.len(), "disconnected route");
        }
    }

    /// No two different nets may share a grid node.
    fn check_no_shorts(d: &RoutedDesign) {
        use std::collections::HashMap;
        let mut owner: HashMap<Point, NetId> = HashMap::new();
        for rn in &d.nets {
            for s in &rn.segments {
                let pts: Vec<Point> = if s.is_via() {
                    vec![s.a, s.b]
                } else if is_horizontal(s.a.layer) {
                    let (x0, x1) = (s.a.x.min(s.b.x), s.a.x.max(s.b.x));
                    (x0..=x1).map(|x| Point::new(s.a.layer, x, s.a.y)).collect()
                } else {
                    let (y0, y1) = (s.a.y.min(s.b.y), s.a.y.max(s.b.y));
                    (y0..=y1).map(|y| Point::new(s.a.layer, s.a.x, y)).collect()
                };
                for p in pts {
                    if let Some(&o) = owner.get(&p) {
                        assert_eq!(o, rn.net, "short at {p}");
                    } else {
                        owner.insert(p, rn.net);
                    }
                }
            }
        }
    }

    #[test]
    fn routes_small_design() {
        let nl = small_netlist();
        let lib = Library::lib180();
        let placed = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        let routed = route(&nl, &lib, &placed, &RouteOptions::default()).unwrap();
        assert!(!routed.nets.is_empty());
        check_connectivity(&nl, &lib, &routed);
        check_no_shorts(&routed);
        assert!(routed.total_wirelength() > 0);
    }

    #[test]
    fn routing_is_deterministic() {
        let nl = small_netlist();
        let lib = Library::lib180();
        let placed = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        let a = route(&nl, &lib, &placed, &RouteOptions::default()).unwrap();
        let b = route(&nl, &lib, &placed, &RouteOptions::default()).unwrap();
        assert_eq!(a.nets, b.nets);
    }

    #[test]
    fn congestion_negotiation_resolves_crossing_nets() {
        // Many nets forced through the same region.
        let mut nl = Netlist::new("cross");
        let mut outs = Vec::new();
        for i in 0..6 {
            let a = nl.add_input(format!("a{i}"));
            let y = nl.add_net(format!("y{i}"));
            nl.add_gate(format!("g{i}"), "BUF", GateKind::Comb, vec![a], vec![y]);
            outs.push(y);
        }
        for y in outs {
            nl.mark_output(y);
        }
        let lib = Library::lib180();
        let placed = place(&nl, &lib, &PlaceOptions::default()).unwrap();
        let routed = route(&nl, &lib, &placed, &RouteOptions::default()).unwrap();
        check_no_shorts(&routed);
        check_connectivity(&nl, &lib, &routed);
    }

    #[test]
    fn merge_produces_maximal_segments() {
        let e = |x0: i32, x1: i32| (Point::new(LAYER_H, x0, 3), Point::new(LAYER_H, x1, 3));
        let segs = merge_edges(&[e(0, 1), e(1, 2), e(2, 3), e(5, 6)]);
        let wires: Vec<_> = segs.iter().filter(|s| !s.is_via()).collect();
        assert_eq!(wires.len(), 2);
        assert!(wires.iter().any(|s| s.len() == 3));
        assert!(wires.iter().any(|s| s.len() == 1));
    }
}
